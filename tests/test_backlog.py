"""Tests for the Backlog manager (standalone API and listener behaviour)."""

from __future__ import annotations

import pytest

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.records import FromRecord, INFINITY, ToRecord
from repro.fsim.blockdev import MemoryBackend


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BacklogConfig(partition_size_blocks=0)
        with pytest.raises(ValueError):
            BacklogConfig(run_bloom_bits=0)
        with pytest.raises(ValueError):
            BacklogConfig(cache_bytes=-1)
        with pytest.raises(ValueError):
            BacklogConfig(maintenance_interval_cps=0)


class TestStandaloneUpdates:
    def test_add_then_query_from_write_store(self):
        backlog = Backlog()
        backlog.add_reference(block=100, inode=2, offset=0)
        refs = backlog.query(100)
        assert len(refs) == 1
        assert refs[0].inode == 2
        assert refs[0].is_live
        assert backlog.pending_updates() == 1

    def test_checkpoint_flushes_and_queries_still_work(self):
        backlog = Backlog()
        backlog.add_reference(100, 2, 0)
        backlog.add_reference(101, 2, 1)
        cp = backlog.checkpoint()
        assert cp == 1
        assert backlog.current_cp == 2
        assert backlog.pending_updates() == 0
        assert backlog.database_size_bytes() > 0
        assert {ref.block for ref in backlog.query_range(100, 2)} == {100, 101}

    def test_remove_reference_closes_lifetime(self):
        backlog = Backlog()
        backlog.add_reference(100, 2, 0)
        backlog.checkpoint()       # CP 1
        backlog.remove_reference(100, 2, 0)
        backlog.checkpoint()       # CP 2
        refs = backlog.query(100)
        assert refs[0].ranges == ((1, 2),)
        assert not refs[0].is_live

    def test_paper_section_4_1_example_via_api(self):
        """Inode 2: two blocks created at CP 4, truncated to one at CP 7."""
        backlog = Backlog()
        backlog.current_cp = 4
        backlog.add_reference(100, 2, 0)
        backlog.add_reference(101, 2, 1)
        for _ in range(4, 7):
            backlog.checkpoint()
        assert backlog.current_cp == 7
        backlog.remove_reference(101, 2, 1)
        backlog.checkpoint()
        ref_100 = backlog.query(100)[0]
        ref_101 = backlog.query(101)[0]
        assert ref_100.ranges == ((4, INFINITY),)
        assert ref_101.ranges == ((4, 7),)


class TestProactivePruning:
    def test_add_remove_within_cp_never_persists(self):
        backlog = Backlog()
        backlog.add_reference(50, 1, 0)
        backlog.remove_reference(50, 1, 0)
        assert backlog.pending_updates() == 0
        assert backlog.stats.pruned_pairs == 1
        backlog.checkpoint()
        assert backlog.query(50) == []

    def test_remove_then_readd_within_cp_restores_single_lifetime(self):
        """A reference removed and re-added in the same CP keeps one record."""
        backlog = Backlog()
        backlog.current_cp = 3
        backlog.add_reference(70, 1, 0)
        backlog.checkpoint()   # CP 3 -> reference live since CP 3
        backlog.current_cp = 4
        backlog.remove_reference(70, 1, 0)
        backlog.add_reference(70, 1, 0)      # re-allocated within CP 4
        backlog.checkpoint()
        refs = backlog.query(70)
        assert refs[0].ranges == ((3, INFINITY),)

    def test_pruning_can_be_disabled(self):
        backlog = Backlog(config=BacklogConfig(proactive_pruning=False))
        backlog.add_reference(50, 1, 0)
        backlog.remove_reference(50, 1, 0)
        assert backlog.pending_updates() == 2
        assert backlog.stats.pruned_pairs == 0


class TestFlushBehaviour:
    def test_no_disk_reads_during_normal_operation(self):
        """Updates and flushes never read from disk (§4, §5.1)."""
        backend = MemoryBackend()
        backlog = Backlog(backend=backend)
        for cp in range(5):
            for i in range(200):
                backlog.add_reference(block=cp * 200 + i, inode=1, offset=i)
            backlog.checkpoint()
        assert backend.stats.pages_written > 0
        # The only reads are the header-page reads that open each new run.
        assert backend.stats.pages_read <= backend.stats.files_created * 2

    def test_checkpoint_stats_recorded(self):
        backlog = Backlog()
        backlog.add_reference(1, 1, 0)
        backlog.checkpoint()
        assert len(backlog.stats.checkpoints) == 1
        cp_stats = backlog.stats.checkpoints[0]
        assert cp_stats.block_ops == 1
        assert cp_stats.persistent_ops == 1
        assert cp_stats.pages_written > 0
        assert backlog.stats.writes_per_block_op > 0
        assert backlog.stats.microseconds_per_block_op > 0
        series = backlog.stats.overhead_series()
        assert series["cp"] == [1]

    def test_empty_checkpoint_writes_nothing(self):
        backend = MemoryBackend()
        backlog = Backlog(backend=backend)
        backlog.checkpoint()
        assert backend.stats.pages_written == 0
        assert backlog.stats.checkpoints[0].pages_written == 0

    def test_runs_partitioned_by_block(self):
        backlog = Backlog(config=BacklogConfig(partition_size_blocks=100))
        backlog.add_reference(5, 1, 0)
        backlog.add_reference(250, 1, 1)
        backlog.checkpoint()
        assert backlog.run_manager.partitions() == [0, 2]

    def test_automatic_maintenance_interval(self):
        backlog = Backlog(config=BacklogConfig(maintenance_interval_cps=2))
        for cp in range(4):
            backlog.add_reference(cp, 1, cp)
            backlog.checkpoint()
        assert len(backlog.stats.maintenance_runs) == 2


class TestClonesAndRelocation:
    def test_register_clone_affects_queries(self):
        backlog = Backlog()
        backlog.add_reference(10, 1, 0, line=0)
        backlog.checkpoint()   # CP 1
        backlog.register_clone(new_line=1, parent_line=0, parent_version=1)
        refs = backlog.query(10)
        lines = {ref.line for ref in refs}
        assert lines == {0, 1}

    def test_duplicate_clone_registration_rejected(self):
        backlog = Backlog()
        backlog.register_clone(1, 0, 1)
        with pytest.raises(ValueError):
            backlog.register_clone(1, 0, 2)

    def test_relocate_block_suppresses_old_references(self):
        backlog = Backlog()
        backlog.add_reference(10, 1, 0)
        backlog.checkpoint()
        suppressed = backlog.relocate_block(10)
        assert suppressed == 1
        assert backlog.query(10) == []
        # After maintenance the suppression is folded in and the vector cleared.
        backlog.maintain()
        assert backlog.query(10) == []
        assert len(backlog.deletion_vector) == 0

    def test_zombie_tracking(self):
        backlog = Backlog()
        backlog.on_snapshot_deleted(0, 5, True, 6)
        assert (0, 5) in backlog.zombies
        backlog.on_snapshot_deleted(0, 5, False, 7)
        assert (0, 5) not in backlog.zombies


class TestAccounting:
    def test_space_overhead(self):
        backlog = Backlog()
        for i in range(100):
            backlog.add_reference(i, 1, i)
        backlog.checkpoint()
        assert backlog.space_overhead(0) == 0.0
        overhead = backlog.space_overhead(100 * 4096)
        assert 0.0 < overhead < 1.0

    def test_memory_footprint(self):
        backlog = Backlog()
        backlog.add_reference(1, 1, 0)
        assert backlog.memory_footprint_bytes() > 0

    def test_timing_can_be_disabled(self):
        backlog = Backlog(config=BacklogConfig(track_timing=False))
        backlog.add_reference(1, 1, 0)
        backlog.checkpoint()
        assert backlog.stats.update_seconds == 0.0
