"""Tests for snapshot lines, retention, clones and zombies."""

from __future__ import annotations

import pytest

from repro.fsim.inode import Inode
from repro.fsim.snapshots import SnapshotId, SnapshotManager, SnapshotPolicy


def _inodes(*numbers):
    return {n: Inode(number=n, blocks={0: n * 100}) for n in numbers}


class TestSnapshotPolicy:
    def test_classification(self):
        policy = SnapshotPolicy(cps_per_hour=10, cps_per_night=100)
        assert policy.classify(5) == "cp"
        assert policy.classify(30) == "hourly"
        assert policy.classify(200) == "nightly"

    def test_disabled_promotions(self):
        policy = SnapshotPolicy(cps_per_hour=0, cps_per_night=0)
        assert policy.classify(100) == "cp"


class TestCaptureAndVersions:
    def test_capture_and_lookup(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        snap = manager.capture(0, 5, _inodes(2, 3))
        assert manager.exists((0, 5))
        assert manager.get(SnapshotId(0, 5)) is snap
        assert manager.versions(0) == [5]
        assert snap.total_block_references() == 2

    def test_capture_unknown_line_rejected(self):
        manager = SnapshotManager()
        with pytest.raises(KeyError):
            manager.capture(7, 1, {})

    def test_retained_versions_include_live_cp(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        manager.capture(0, 3, _inodes(2))
        assert manager.retained_versions(0, current_cp=9) == [3, 9]
        assert manager.all_retained_versions(9) == [3, 9]


class TestRetention:
    def test_retention_keeps_recent_and_promoted(self):
        policy = SnapshotPolicy(recent_cps=2, hourly_retained=2, nightly_retained=1,
                                cps_per_hour=5, cps_per_night=20)
        manager = SnapshotManager(policy)
        manager.register_line(0, None)
        for cp in range(1, 26):
            manager.capture(0, cp, _inodes(2))
            manager.apply_retention(0, cp)
        versions = manager.versions(0)
        assert 24 in versions and 25 in versions      # recent CPs
        assert 20 in versions                          # nightly (and hourly) promotion
        assert all(v % 5 == 0 or v > 23 for v in versions)

    def test_retention_never_deletes_cloned_snapshots(self):
        manager = SnapshotManager(SnapshotPolicy(recent_cps=1, cps_per_hour=0, cps_per_night=0))
        manager.register_line(0, None)
        manager.capture(0, 1, _inodes(2))
        manager.new_line(SnapshotId(0, 1))
        for cp in range(2, 6):
            manager.capture(0, cp, _inodes(2))
            manager.apply_retention(0, cp)
        assert 1 in manager.versions(0)


class TestClonesAndZombies:
    def test_new_line_and_parentage(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        manager.capture(0, 4, _inodes(2))
        line = manager.new_line(SnapshotId(0, 4))
        assert line == 1
        assert manager.parent_of(line) == SnapshotId(0, 4)
        assert manager.clones_of(SnapshotId(0, 4)) == [1]
        assert manager.clone_points(0) == [(1, SnapshotId(0, 4))]

    def test_clone_of_unknown_snapshot_rejected(self):
        manager = SnapshotManager()
        with pytest.raises(KeyError):
            manager.new_line(SnapshotId(0, 99))

    def test_delete_cloned_snapshot_becomes_zombie(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        manager.capture(0, 4, _inodes(2))
        manager.new_line(SnapshotId(0, 4))
        assert manager.delete(SnapshotId(0, 4)) is True
        assert manager.is_zombie(SnapshotId(0, 4))
        assert manager.zombies() == [SnapshotId(0, 4)]
        # Zombie versions still count as retained (their backrefs must survive).
        assert 4 in manager.retained_versions(0)
        # ... but they are not reported as plainly deleted either.
        assert manager.deleted_versions(0) == []

    def test_delete_uncloned_snapshot(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        manager.capture(0, 4, _inodes(2))
        assert manager.delete(SnapshotId(0, 4)) is False
        assert manager.deleted_versions(0) == [4]
        with pytest.raises(KeyError):
            manager.delete(SnapshotId(0, 4))

    def test_drop_dead_zombies(self):
        manager = SnapshotManager()
        manager.register_line(0, None)
        manager.capture(0, 4, _inodes(2))
        clone_line = manager.new_line(SnapshotId(0, 4))
        manager.delete(SnapshotId(0, 4))
        # While the clone line is alive, the zombie stays.
        assert manager.drop_dead_zombies(live_lines=[0, clone_line]) == []
        # Once the clone line is gone, the zombie can be forgotten.
        assert manager.drop_dead_zombies(live_lines=[0]) == [SnapshotId(0, 4)]
        assert manager.zombies() == []
