"""Crash-injection tests for the streaming compactor.

The durability story (§5.4) requires that a compaction interrupted at any
point leaves the database recoverable: the catalogue swap happens only after
every output page is on disk, so a crash mid-write leaves the old runs fully
intact plus, at worst, unregistered partial output files.  Recovery must
skip (and clean up) those partial files, answer every query exactly as
before the crash, and a re-run of compaction must succeed.

The fault is injected through a ``PageFile`` wrapper that raises after a
configurable number of page writes, so the test can interrupt the streaming
compactor after *every single* write position it ever performs.
"""

from __future__ import annotations

import copy
import threading
from typing import Dict, List, Optional

import pytest

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.lsm import parse_run_name
from repro.core.read_store import ReadStoreReader
from repro.core.recovery import recover_backlog
from repro.fsim.blockdev import MemoryBackend, PageFile, StorageBackend


class SimulatedCrash(RuntimeError):
    """Raised by the fault injector in place of a power failure."""


class _FaultPageFile(PageFile):
    """Delegates to a real page file, crashing when the write budget runs out."""

    def __init__(self, backend: "FaultInjectingBackend", inner: PageFile) -> None:
        super().__init__(backend, inner.name)
        self._inner = inner

    def _append(self, data: bytes) -> int:
        self._backend.consume_write_budget()
        return self._inner._append(data)

    def _read(self, index: int) -> bytes:
        return self._inner._read(index)

    def _num_pages(self) -> int:
        return self._inner._num_pages()


class FaultInjectingBackend(StorageBackend):
    """Wraps a backend; every page write decrements an optional crash budget.

    The budget decrement is locked: the parallel-compaction variants drive
    page writes from several maintenance workers at once, and the budget
    must fail exactly the (N+1)-th write however the workers interleave.
    """

    def __init__(self, inner: StorageBackend) -> None:
        super().__init__()
        self._inner = inner
        self.stats = inner.stats  # share accounting with the wrapped backend
        self.writes_until_crash: Optional[int] = None
        self._budget_lock = threading.Lock()

    def arm(self, writes_until_crash: int) -> None:
        self.writes_until_crash = writes_until_crash

    def disarm(self) -> None:
        self.writes_until_crash = None

    def consume_write_budget(self) -> None:
        with self._budget_lock:
            if self.writes_until_crash is not None:
                if self.writes_until_crash <= 0:
                    raise SimulatedCrash("page write failed")
                self.writes_until_crash -= 1

    def create(self, name: str) -> PageFile:
        return _FaultPageFile(self, self._inner.create(name))

    def open(self, name: str) -> PageFile:
        return _FaultPageFile(self, self._inner.open(name))

    def delete(self, name: str) -> None:
        self._inner.delete(name)

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def list_files(self) -> List[str]:
        return self._inner.list_files()


def _build_workload(backend: StorageBackend) -> Backlog:
    """Several checkpoints of adds/removes across two partitions, no compaction."""
    config = BacklogConfig(partition_size_blocks=32)
    backlog = Backlog(backend=backend, config=config)
    for cp in range(3):
        for i in range(25):
            block = (i * 5 + cp) % 60
            backlog.add_reference(block=block, inode=1 + i % 3, offset=cp * 25 + i)
        if cp:
            backlog.remove_reference(block=(cp * 5) % 60, inode=1, offset=(cp - 1) * 25)
        backlog.checkpoint()
    return backlog


def _answers(backlog: Backlog, num_blocks: int = 60) -> Dict[int, list]:
    return {block: backlog.query(block) for block in range(num_blocks)}


def _assert_no_partial_runs(backend: StorageBackend) -> None:
    """Every run file the catalogue could ever see must open cleanly."""
    for name in backend.list_files():
        if parse_run_name(name) is None:
            continue
        ReadStoreReader(backend, name)  # raises on truncated/empty files


def test_compaction_crash_at_every_write_position():
    """Interrupt the streaming compactor after each page write, then recover."""
    seed_backend = MemoryBackend()
    seed_backlog = _build_workload(seed_backend)
    baseline = _answers(seed_backlog)
    pristine_files = copy.deepcopy(seed_backend._files)

    # Measure how many pages an uninterrupted compaction writes in total.
    probe = copy.deepcopy(seed_backend)
    writes_before = probe.stats.pages_written
    recover_backlog(probe, config=BacklogConfig(partition_size_blocks=32)).maintain()
    total_writes = probe.stats.pages_written - writes_before
    assert total_writes > 4  # the workload must exercise several positions

    config = BacklogConfig(partition_size_blocks=32)
    for crash_after in range(total_writes):
        inner = MemoryBackend()
        inner._files = copy.deepcopy(pristine_files)
        backend = FaultInjectingBackend(inner)

        crashed = recover_backlog(backend, config=config)
        backend.arm(crash_after)
        with pytest.raises(SimulatedCrash):
            crashed.maintain()
        backend.disarm()

        # Restart: the partial output must be invisible (and cleaned up),
        # and every answer must match the pre-crash database.
        recovered = recover_backlog(backend, config=config)
        _assert_no_partial_runs(backend)
        assert _answers(recovered) == baseline

        # Re-running maintenance must now succeed and change no answer.
        recovered.maintain()
        assert recovered.run_manager.level0_run_count() == 0
        assert _answers(recovered) == baseline


def test_parallel_compaction_crash_at_every_write_position():
    """Interrupt a 4-worker compaction after each page write, then recover.

    With several maintenance workers the crash lands in one worker while its
    siblings may be anywhere -- mid-run, finished, or not yet started.  The
    executor waits for every worker to settle before re-raising, so by the
    time ``maintain()`` fails no thread is still writing; whatever mix of
    partial output files, complete-but-superseded runs and already-replaced
    partitions is on disk, recovery must hide it and answer exactly as
    before the crash.
    """
    seed_backend = MemoryBackend()
    seed_backlog = _build_workload(seed_backend)
    baseline = _answers(seed_backlog)
    pristine_files = copy.deepcopy(seed_backend._files)

    config = BacklogConfig(partition_size_blocks=32, maintenance_workers=4)

    # Measure the total page writes of one (serial) uninterrupted compaction;
    # the parallel pass writes the same pages, only interleaved.
    probe = copy.deepcopy(seed_backend)
    writes_before = probe.stats.pages_written
    recover_backlog(probe, config=BacklogConfig(partition_size_blocks=32)).maintain()
    total_writes = probe.stats.pages_written - writes_before
    assert total_writes > 4

    for crash_after in range(total_writes):
        inner = MemoryBackend()
        inner._files = copy.deepcopy(pristine_files)
        backend = FaultInjectingBackend(inner)

        crashed = recover_backlog(backend, config=config)
        backend.arm(crash_after)
        with pytest.raises(SimulatedCrash):
            crashed.maintain()
        backend.disarm()
        crashed.close()

        recovered = recover_backlog(backend, config=config)
        _assert_no_partial_runs(backend)
        assert _answers(recovered) == baseline

        recovered.maintain()
        assert recovered.run_manager.level0_run_count() == 0
        assert _answers(recovered) == baseline
        recovered.close()


def test_partial_run_file_removed_on_recovery():
    """A crash leaves an unregistered partial file; recovery deletes it."""
    inner = MemoryBackend()
    backend = FaultInjectingBackend(inner)
    backlog = _build_workload(backend)
    files_before_crash = set(backend.list_files())

    backend.arm(2)  # let two pages through, then fail mid-run
    with pytest.raises(SimulatedCrash):
        backlog.maintain()
    backend.disarm()

    leftovers = set(backend.list_files()) - files_before_crash
    assert leftovers, "the crash should have left a partial output file"

    recover_backlog(backend, config=BacklogConfig(partition_size_blocks=32))
    assert set(backend.list_files()) == files_before_crash


def test_crash_before_first_page_leaves_empty_file():
    """Budget 0: the file exists with zero pages and recovery still works."""
    inner = MemoryBackend()
    backend = FaultInjectingBackend(inner)
    backlog = _build_workload(backend)
    baseline = _answers(backlog)

    backend.arm(0)
    with pytest.raises(SimulatedCrash):
        backlog.maintain()
    backend.disarm()

    recovered = recover_backlog(backend, config=BacklogConfig(partition_size_blocks=32))
    _assert_no_partial_runs(backend)
    assert _answers(recovered) == baseline
    recovered.maintain()
    assert _answers(recovered) == baseline
