"""Tests for the verification utility itself."""

from __future__ import annotations

from repro.core.records import FromRecord
from repro.core.verify import Mismatch, verify_backlog
from tests.conftest import build_system


class TestVerification:
    def test_clean_system_verifies(self, system):
        fs, backlog = system
        for _ in range(5):
            fs.create_file(num_blocks=3)
        fs.take_consistency_point()
        report = verify_backlog(fs, backlog)
        assert report.ok
        assert report.references_checked > 0
        assert "OK" in report.summary()

    def test_unflushed_updates_are_still_visible(self, system):
        fs, backlog = system
        fs.create_file(num_blocks=3)
        # No consistency point taken: records only exist in the write stores.
        report = verify_backlog(fs, backlog)
        assert report.ok

    def test_detects_missing_references(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=2)
        fs.take_consistency_point()
        # Sabotage: hide one block's records from the database.
        block = fs.volume().inodes[inode].physical_block(0)
        backlog.deletion_vector.suppress(block, inode, 0, 0)
        report = verify_backlog(fs, backlog)
        assert not report.ok
        assert any(m.kind == "missing" and m.block == block for m in report.mismatches)
        assert "mismatches" in report.summary()

    def test_detects_spurious_references(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=1)
        fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(0)
        # Sabotage: claim another inode also owns the block.
        backlog.ws_from.insert(FromRecord(block, 999, 0, 0, 1))
        report = verify_backlog(fs, backlog)
        assert any(m.kind == "spurious" and m.inode == 999 for m in report.mismatches)

    def test_spurious_check_can_be_disabled(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=1)
        fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(0)
        backlog.ws_from.insert(FromRecord(block, 999, 0, 0, 1))
        report = verify_backlog(fs, backlog, check_spurious=False)
        assert report.ok

    def test_mismatch_str(self):
        mismatch = Mismatch("missing", 5, 2, 0, 0, 7)
        text = str(mismatch)
        assert "missing" in text and "block 5" in text

    def test_verification_covers_snapshots_and_clones(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=3)
        cp = fs.take_consistency_point()
        clone = fs.create_clone(0, cp)
        fs.write(inode, 0, 1, line=clone)
        fs.write(inode, 1, 1, line=0)
        fs.take_consistency_point()
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:5]
        assert report.blocks_checked >= 3
