"""Tests for horizontal partitioning by physical block number."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import Partitioner
from repro.core.records import FromRecord


class TestPartitionOf:
    def test_default_partition_size(self):
        partitioner = Partitioner()
        assert partitioner.partition_of(0) == 0
        assert partitioner.partition_of((1 << 20) - 1) == 0
        assert partitioner.partition_of(1 << 20) == 1

    def test_custom_size(self):
        partitioner = Partitioner(partition_size_blocks=100)
        assert partitioner.partition_of(99) == 0
        assert partitioner.partition_of(100) == 1
        assert partitioner.partition_of(1234) == 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Partitioner(partition_size_blocks=0)
        with pytest.raises(ValueError):
            Partitioner().partition_of(-1)

    def test_block_range_roundtrip(self):
        partitioner = Partitioner(partition_size_blocks=50)
        first, last = partitioner.block_range(3)
        assert (first, last) == (150, 200)
        assert partitioner.partition_of(first) == 3
        assert partitioner.partition_of(last - 1) == 3


class TestRangeQueries:
    def test_partitions_for_range(self):
        partitioner = Partitioner(partition_size_blocks=100)
        assert partitioner.partitions_for_range(10, 5) == [0]
        assert partitioner.partitions_for_range(95, 10) == [0, 1]
        assert partitioner.partitions_for_range(95, 300) == [0, 1, 2, 3]
        assert partitioner.partitions_for_range(10, 0) == []


class TestSplitSortedRecords:
    def test_groups_consecutive_partitions(self):
        partitioner = Partitioner(partition_size_blocks=10)
        records = [FromRecord(b, 1, 0, 0, 1) for b in [1, 2, 9, 10, 25, 26]]
        groups = list(partitioner.split_sorted_records(records))
        assert [(partition, [r.block for r in bucket]) for partition, bucket in groups] == [
            (0, [1, 2, 9]),
            (1, [10]),
            (2, [25, 26]),
        ]

    def test_empty_input(self):
        partitioner = Partitioner()
        assert list(partitioner.split_sorted_records([])) == []

    def test_records_straddling_many_boundaries(self):
        """One record per partition across many partitions, plus boundary hits."""
        partitioner = Partitioner(partition_size_blocks=10)
        blocks = [0, 9, 10, 19, 20, 30, 40, 50, 59, 60]
        records = [FromRecord(b, 1, 0, 0, 1) for b in blocks]
        groups = list(partitioner.split_sorted_records(records))
        assert [(p, [r.block for r in bucket]) for p, bucket in groups] == [
            (0, [0, 9]), (1, [10, 19]), (2, [20]), (3, [30]),
            (4, [40]), (5, [50, 59]), (6, [60]),
        ]

    def test_gap_of_multiple_empty_partitions_yields_no_empty_buckets(self):
        """A >1-partition gap between records must not emit empty buckets."""
        partitioner = Partitioner(partition_size_blocks=10)
        records = [FromRecord(b, 1, 0, 0, 1) for b in [5, 95]]
        groups = list(partitioner.split_sorted_records(records))
        assert [(p, [r.block for r in bucket]) for p, bucket in groups] == [
            (0, [5]), (9, [95]),
        ]
        assert all(bucket for _, bucket in groups)

    def test_single_partition_far_from_origin(self):
        partitioner = Partitioner(partition_size_blocks=100)
        records = [FromRecord(b, 1, 0, 0, 1) for b in [1234, 1250, 1299]]
        groups = list(partitioner.split_sorted_records(records))
        assert [(p, len(bucket)) for p, bucket in groups] == [(12, 3)]

    def test_iterator_input_matches_sequence_input(self):
        """The bisect fast path and the scan fallback must agree."""
        partitioner = Partitioner(partition_size_blocks=7)
        blocks = [0, 1, 6, 7, 13, 14, 15, 49, 50, 91]
        records = [FromRecord(b, 1, 0, 0, 1) for b in blocks]
        from_list = list(partitioner.split_sorted_records(records))
        from_iterator = list(partitioner.split_sorted_records(iter(records)))
        assert from_iterator == from_list

    def test_negative_block_rejected(self):
        partitioner = Partitioner(partition_size_blocks=10)
        records = [FromRecord(-1, 1, 0, 0, 1)]
        with pytest.raises(ValueError):
            list(partitioner.split_sorted_records(records))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 5_000), max_size=200), st.integers(1, 500))
def test_split_preserves_records_and_grouping(blocks, partition_size):
    """Property: splitting loses nothing and every record lands in its partition."""
    partitioner = Partitioner(partition_size_blocks=partition_size)
    records = [FromRecord(b, 1, 0, 0, 1) for b in sorted(blocks)]
    groups = list(partitioner.split_sorted_records(records))
    recombined = [record for _, bucket in groups for record in bucket]
    assert recombined == records
    for partition, bucket in groups:
        assert bucket, "empty partitions must never be yielded"
        assert all(partitioner.partition_of(r.block) == partition for r in bucket)
    # Partitions ascend strictly: each one appears at most once.
    partitions = [partition for partition, _ in groups]
    assert partitions == sorted(set(partitions))
    # The bisect fast path (sequence input) and the streaming scan fallback
    # (iterator input) must produce identical groupings.
    assert list(partitioner.split_sorted_records(iter(records))) == groups
