"""The documentation suite stays executable and internally consistent.

Wires ``tools/check_docs.py`` into the tier-1 suite: every ``>>>`` example
in README.md and docs/ARCHITECTURE.md must run (the same check CI's docs
job performs with ``python -m doctest``), and every intra-repo markdown
link must resolve to an existing file.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402  (needs the tools/ path above)

DOCUMENTS = [os.path.join(REPO_ROOT, name) for name in check_docs.DEFAULT_DOCUMENTS]


@pytest.mark.parametrize("document", DOCUMENTS, ids=check_docs.DEFAULT_DOCUMENTS)
def test_document_exists(document):
    assert os.path.isfile(document)


@pytest.mark.parametrize("document", DOCUMENTS, ids=check_docs.DEFAULT_DOCUMENTS)
def test_doctest_examples_run(document):
    assert check_docs.check_doctests(document) == []


@pytest.mark.parametrize("document", DOCUMENTS, ids=check_docs.DEFAULT_DOCUMENTS)
def test_intra_repo_links_resolve(document):
    assert check_docs.check_links(document) == []


@pytest.mark.parametrize("document", DOCUMENTS, ids=check_docs.DEFAULT_DOCUMENTS)
def test_documents_have_examples_and_links(document):
    """Guard against docs silently losing their executable examples."""
    assert check_docs.iter_links(document), "expected intra-repo links"


def test_checker_cli_passes_on_the_repo():
    """The exact command CI runs must succeed from a clean environment."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_docs.py")],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr


def test_checker_flags_dead_links(tmp_path):
    document = tmp_path / "doc.md"
    document.write_text(
        "[ok](doc.md) and [dead](missing/file.py)\n\n"
        "```python\n>>> 1 + 1\n2\n\n```\n",
        encoding="utf-8",
    )
    problems = check_docs.check_links(str(document))
    assert len(problems) == 1 and "missing/file.py" in problems[0]
    assert check_docs.check_doctests(str(document)) == []


def test_checker_flags_broken_examples(tmp_path):
    document = tmp_path / "doc.md"
    document.write_text("```python\n>>> 1 + 1\n3\n\n```\n", encoding="utf-8")
    problems = check_docs.check_doctests(str(document))
    assert problems and "failed" in problems[0]
