"""Integration and property-based tests across the whole stack.

These tests exercise the complete pipeline -- file system, Backlog, flushes,
compaction, clones, snapshots -- and check the single invariant the paper's
own verification tool checks: the back references reconstructed by walking
the file system tree always agree with the database.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import BacklogConfig
from repro.core.verify import verify_backlog
from repro.fsim.dedup import DedupConfig
from tests.conftest import build_system


def _churn(fs, rng, operations, line=0):
    """Apply random file operations to one volume."""
    for _ in range(operations):
        files = fs.list_files(line)
        roll = rng.random()
        if roll < 0.2 or not files:
            fs.create_file(num_blocks=rng.randint(1, 8), line=line)
            continue
        inode = rng.choice(files)
        size = fs.file_size(inode, line=line)
        if roll < 0.3 and len(files) > 3:
            fs.delete_file(inode, line=line)
        elif roll < 0.4 and size > 1:
            fs.truncate(inode, rng.randrange(size), line=line)
        elif size > 0:
            fs.write(inode, rng.randrange(size), rng.randint(1, 3), line=line)
        else:
            fs.write(inode, 0, 1, line=line)


class TestEndToEnd:
    def test_long_run_with_clones_and_maintenance(self):
        fs, backlog = build_system()
        rng = random.Random(5)
        clone_lines = []
        for round_number in range(8):
            _churn(fs, rng, 150)
            for line in clone_lines:
                _churn(fs, rng, 20, line=line)
            cp = fs.take_consistency_point()
            if round_number in (2, 5) and len(clone_lines) < 2:
                clone_lines.append(fs.create_clone(0, cp))
            if round_number == 4:
                backlog.maintain()
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]
        backlog.maintain()
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]

    def test_clone_deletion_and_zombies(self):
        fs, backlog = build_system()
        rng = random.Random(6)
        _churn(fs, rng, 100)
        cp = fs.take_consistency_point()
        clone = fs.create_clone(0, cp)
        _churn(fs, rng, 50, line=clone)
        fs.take_consistency_point()
        # Delete the cloned-from snapshot: it becomes a zombie and must not
        # break queries for the clone.
        fs.delete_snapshot(0, cp)
        fs.take_consistency_point()
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]
        backlog.maintain()
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]

    def test_small_partitions_and_frequent_maintenance(self):
        fs, backlog = build_system(
            backlog_config=BacklogConfig(partition_size_blocks=64,
                                         maintenance_interval_cps=2),
        )
        rng = random.Random(7)
        for _ in range(6):
            _churn(fs, rng, 100)
            fs.take_consistency_point()
        assert len(backlog.stats.maintenance_runs) >= 2
        assert len(backlog.run_manager.partitions()) >= 2
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]

    def test_heavy_dedup_workload(self):
        fs, backlog = build_system(dedup=DedupConfig(duplicate_fraction=0.5))
        rng = random.Random(8)
        for _ in range(4):
            _churn(fs, rng, 150)
            fs.take_consistency_point()
        # Dedup produced shared blocks with multiple owners.
        histogram = fs.allocator.refcount_histogram()
        assert any(count > 1 for count in histogram)
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]

    def test_relocation_workflow(self):
        """The defragmentation use case: query, move, update, suppress.

        No snapshot is taken before the move, so no retained image still
        points at the old physical block -- which is the state a relocation
        utility leaves behind after updating every pointer it found.
        """
        fs, backlog = build_system(dedup=None)
        inode = fs.create_file(num_blocks=8)
        victim = fs.volume().inodes[inode].physical_block(3)
        owners = backlog.query(victim)
        assert owners and owners[0].inode == inode
        # "Move" the block: the file system rewrites the pointer (COW) and the
        # old block's stale records are suppressed.
        fs.write(inode, 3, 1)
        backlog.relocate_block(victim)
        fs.take_consistency_point()
        assert backlog.query(victim) == []
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:10]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(
    seed=st.integers(0, 10_000),
    rounds=st.integers(1, 4),
    ops_per_round=st.integers(20, 120),
    with_clone=st.booleans(),
    maintain=st.booleans(),
)
def test_database_always_matches_filesystem(seed, rounds, ops_per_round, with_clone, maintain):
    """Property: after any random op sequence, Backlog matches the FS tree."""
    fs, backlog = build_system()
    rng = random.Random(seed)
    clone_line = None
    for round_number in range(rounds):
        _churn(fs, rng, ops_per_round)
        if clone_line is not None:
            _churn(fs, rng, ops_per_round // 4, line=clone_line)
        cp = fs.take_consistency_point()
        if with_clone and clone_line is None:
            clone_line = fs.create_clone(0, cp)
    if maintain:
        backlog.maintain()
    report = verify_backlog(fs, backlog)
    assert report.ok, report.mismatches[:10]
