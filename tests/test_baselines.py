"""Tests for the baseline back-reference implementations."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import BruteForceQuerier
from repro.baselines.btrfs_refs import BtrfsStyleBackReferences
from repro.baselines.naive import NaiveBackReferences
from repro.core.records import INFINITY
from repro.fsim.filesystem import FileSystem, FileSystemConfig
from tests.conftest import build_system


def _fs_with(listener):
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False, dedup=None),
                    listeners=[listener])
    return fs


class TestNaiveBaseline:
    def test_tracks_live_references(self):
        naive = NaiveBackReferences()
        fs = _fs_with(naive)
        inode = fs.create_file(num_blocks=3)
        block = fs.volume().inodes[inode].physical_block(1)
        records = naive.query(block)
        assert len(records) == 1
        assert records[0].inode == inode and records[0].is_live

    def test_removal_closes_record_in_place(self):
        naive = NaiveBackReferences()
        fs = _fs_with(naive)
        inode = fs.create_file(num_blocks=1)
        block = fs.volume().inodes[inode].physical_block(0)
        fs.take_consistency_point()
        fs.delete_file(inode)
        records = naive.query(block)
        assert records[0].to_cp != INFINITY

    def test_every_operation_costs_io(self):
        """The naive design reads and writes the table on every block op (§4.1)."""
        naive = NaiveBackReferences()
        fs = _fs_with(naive)
        fs.create_file(num_blocks=100)
        assert naive.stats.references_added == 100
        assert naive.stats.pages_written >= 100
        assert naive.stats.writes_per_block_op >= 1.0
        assert naive.stats.microseconds_per_block_op > 0

    def test_io_per_op_far_exceeds_backlog(self):
        """Backlog's headline claim: ~0.01 writes/op vs ~1 write/op naively."""
        naive = NaiveBackReferences()
        naive_fs = _fs_with(naive)
        fs, backlog = build_system(dedup=None)
        for target in (naive_fs, fs):
            for _ in range(20):
                target.create_file(num_blocks=32)
            target.take_consistency_point()
        assert backlog.stats.writes_per_block_op < 0.2
        assert naive.stats.writes_per_block_op > 10 * backlog.stats.writes_per_block_op

    def test_clone_duplicates_records(self):
        naive = NaiveBackReferences()
        fs = _fs_with(naive)
        fs.create_file(num_blocks=5)
        fs.take_consistency_point()
        before = naive.record_count()
        fs.create_clone(0)
        assert naive.record_count() > before

    def test_table_grows_without_bound(self):
        naive = NaiveBackReferences()
        fs = _fs_with(naive)
        inode = fs.create_file(num_blocks=1)
        size_after_create = naive.table_size_bytes()
        for _ in range(50):
            fs.write(inode, 0, 1)
        assert naive.table_size_bytes() > size_after_create


class TestBtrfsStyleBaseline:
    def test_refcounted_owners(self):
        btrfs = BtrfsStyleBackReferences()
        fs = _fs_with(btrfs)
        inode = fs.create_file(num_blocks=2)
        block = fs.volume().inodes[inode].physical_block(0)
        assert btrfs.query(block) == [(inode, 0, 0)]
        assert btrfs.refcount(block) == 1
        fs.delete_file(inode)
        assert btrfs.refcount(block) == 0

    def test_updates_buffered_until_commit(self):
        btrfs = BtrfsStyleBackReferences()
        fs = _fs_with(btrfs)
        fs.create_file(num_blocks=50)
        assert btrfs.stats.pages_written == 0     # nothing until the commit
        fs.take_consistency_point()
        assert btrfs.stats.pages_written > 0

    def test_commit_cost_scales_sublinearly_with_locality(self):
        """Many ops on nearby blocks dirty few leaves; scattered ops dirty more."""
        clustered = BtrfsStyleBackReferences()
        for block in range(500):
            clustered.on_reference_added(block, 1, block, 0, 1)
        clustered.on_consistency_point(1)

        scattered = BtrfsStyleBackReferences()
        for index in range(500):
            scattered.on_reference_added(index * 1000, 1, index, 0, 1)
        scattered.on_consistency_point(1)
        assert clustered.stats.pages_written < scattered.stats.pages_written

    def test_clone_is_free(self):
        btrfs = BtrfsStyleBackReferences()
        fs = _fs_with(btrfs)
        fs.create_file(num_blocks=5)
        fs.take_consistency_point()
        writes_before = btrfs.stats.pages_written
        fs.create_clone(0)
        assert btrfs.stats.pages_written == writes_before

    def test_record_count_and_size(self):
        btrfs = BtrfsStyleBackReferences()
        fs = _fs_with(btrfs)
        fs.create_file(num_blocks=4)
        fs.take_consistency_point()
        assert btrfs.record_count() == 4
        assert btrfs.table_size_bytes() > 0


class TestBruteForceQuerier:
    def test_finds_live_and_snapshot_owners(self, system):
        fs, _ = system
        inode = fs.create_file(num_blocks=2)
        cp = fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(0)
        querier = BruteForceQuerier(fs)
        owners = querier.query_block(block)
        versions = {version for *_, version in owners}
        assert cp in versions and fs.global_cp in versions
        assert all(owner[1] == inode for owner in owners)

    def test_range_query_and_stats(self, system):
        fs, _ = system
        fs.create_file(num_blocks=10)
        fs.take_consistency_point()
        querier = BruteForceQuerier(fs)
        results = querier.query_range(0, 5)
        assert {r[0] for r in results} <= set(range(5))
        assert querier.stats.queries == 1
        assert querier.stats.pointers_examined >= 10
        assert querier.stats.meta_pages_read > 0
        assert querier.stats.seconds_per_query >= 0

    def test_owners_summary_groups_versions(self, system):
        fs, _ = system
        inode = fs.create_file(num_blocks=1)
        fs.take_consistency_point()
        fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(0)
        summary = BruteForceQuerier(fs).owners_summary(block)
        (key, versions), = summary.items()
        assert key[1] == inode
        assert len(versions) >= 2

    def test_agrees_with_backlog_on_live_owners(self, system):
        fs, backlog = system
        for _ in range(5):
            fs.create_file(num_blocks=4)
        fs.take_consistency_point()
        querier = BruteForceQuerier(fs)
        for block, *_ in list(fs.iter_live_references())[:10]:
            brute = {(i, off, line) for _, i, off, line, v in querier.query_block(block)
                     if v == fs.global_cp}
            backlog_live = {(r.inode, r.offset, r.line) for r in backlog.live_owners(block)}
            assert brute == backlog_live
