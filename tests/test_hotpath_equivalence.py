"""Equivalence tests for the hot-path rework.

The memtable :class:`WriteStore` must be observationally identical to the
retained red-black-tree back end (:class:`RBTreeWriteStore`): identical flush
order, range-query results and pruning behaviour for any operation sequence.
The Bloom filter must round-trip through both serialization format versions
and keep its no-false-negative guarantee through the version-2 stride-based
range probes.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import (
    BloomFilter,
    FORMAT_V1,
    FORMAT_V2,
    STRIDE_SHIFT,
)
from repro.core.records import FromRecord
from repro.core.write_store import RBTreeWriteStore, WriteStore


# ----------------------------------------------------- write-store equivalence

_record_fields = st.tuples(
    st.integers(0, 40), st.integers(1, 8), st.integers(0, 8),
    st.integers(0, 2), st.integers(1, 12),
)

# An op is (kind, payload): insert/remove carry record fields, flush/prune
# probe states shared by both back ends.
_op = st.one_of(
    st.tuples(st.just("insert"), _record_fields),
    st.tuples(st.just("remove"), _record_fields),
    st.tuples(st.just("prune"), _record_fields),
    st.tuples(st.just("flush"), st.none()),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=150), st.integers(0, 40), st.integers(1, 10))
def test_memtable_matches_rbtree_store(ops, probe_block, probe_width):
    """Property: both back ends agree on every observable behaviour."""
    new_store = WriteStore("from")
    old_store = RBTreeWriteStore("from")

    for kind, payload in ops:
        if kind == "insert":
            record = FromRecord(*payload)
            new_store.insert(record)
            old_store.insert(record)
        elif kind == "remove":
            record = FromRecord(*payload)
            assert new_store.remove(record) == old_store.remove(record)
        elif kind == "prune":
            assert (new_store.remove_key(*payload)
                    == old_store.remove_key(*payload))
        else:  # flush: drain in sorted order and start over
            assert list(new_store) == list(old_store)
            new_store.clear()
            old_store.clear()
            assert len(new_store) == len(old_store) == 0

        # Invariants checked after every op keep shrunk failures small.
        assert len(new_store) == len(old_store)

    assert list(new_store) == list(old_store)
    assert new_store.sorted_records() == old_store.sorted_records()
    assert new_store.distinct_blocks() == old_store.distinct_blocks()
    assert (new_store.records_for_block_range(probe_block, probe_width)
            == old_store.records_for_block_range(probe_block, probe_width))
    assert (new_store.records_for_block(probe_block)
            == old_store.records_for_block(probe_block))
    for kind, payload in ops:
        if kind in ("insert", "remove", "prune"):
            assert new_store.contains(*payload) == old_store.contains(*payload)
            assert new_store.find(*payload) == old_store.find(*payload)


def test_memtable_interleaved_queries_resort():
    """The sort-on-demand snapshot must stay correct across mutations."""
    store = WriteStore("from")
    store.insert(FromRecord(5, 1, 0, 0, 1))
    assert [r.block for r in store] == [5]
    store.insert(FromRecord(2, 1, 0, 0, 1))  # dirties the snapshot
    assert [r.block for r in store] == [2, 5]
    store.remove_key(5, 1, 0, 0, 1)
    assert [r.block for r in store.records_for_block_range(0, 10)] == [2]


# ------------------------------------------------------ bloom format versions

class TestBloomFormatVersions:
    def test_v2_roundtrip_preserves_everything(self):
        bloom = BloomFilter(8192, num_hashes=4)
        bloom.add_many([1, 5, 9, 1000, 123456])
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.hash_version == FORMAT_V2
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        assert restored.num_items == bloom.num_items
        for item in [1, 5, 9, 1000, 123456]:
            assert restored.might_contain(item)
            # stride keys survive serialization: range probes stay FN-free
            assert restored.might_contain_range(max(0, item - 50), 120)

    def test_v1_roundtrip_uses_legacy_layout(self):
        bloom = BloomFilter(8192, num_hashes=4, hash_version=FORMAT_V1)
        bloom.add_many([3, 77, 4096])
        blob = bloom.to_bytes()
        # Legacy layout: header is exactly <QQQ> starting with num_bits.
        num_bits, num_hashes, num_items = struct.unpack_from("<QQQ", blob, 0)
        assert (num_bits, num_hashes, num_items) == (8192, 4, 3)
        restored = BloomFilter.from_bytes(blob)
        assert restored.hash_version == FORMAT_V1
        assert all(restored.might_contain(i) for i in [3, 77, 4096])
        # And a second round trip is stable.
        assert BloomFilter.from_bytes(restored.to_bytes()).to_bytes() == blob

    def test_cross_version_filters_disagree_only_in_bits(self):
        """Same keys, both versions: membership holds in each."""
        items = list(range(0, 512, 7))
        for version in (FORMAT_V1, FORMAT_V2):
            bloom = BloomFilter(4096, hash_version=version)
            bloom.add_many(items)
            assert all(bloom.might_contain(i) for i in items)

    def test_trailing_page_padding_tolerated(self):
        bloom = BloomFilter(1024)
        bloom.add(42)
        padded = bloom.to_bytes() + b"\x00" * 4096
        assert BloomFilter.from_bytes(padded).might_contain(42)


class TestBloomCorruptInput:
    def test_short_blob_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x01\x02")

    def test_non_power_of_two_bits_rejected(self):
        blob = struct.pack("<QQQ", 1000, 4, 1) + b"\x00" * 125
        with pytest.raises(ValueError, match="power of two"):
            BloomFilter.from_bytes(blob)

    def test_implausible_hash_count_rejected(self):
        blob = struct.pack("<QQQ", 1024, 10_000, 1) + b"\x00" * 128
        with pytest.raises(ValueError, match="num_hashes"):
            BloomFilter.from_bytes(blob)

    def test_truncated_payload_rejected(self):
        bloom = BloomFilter(8192)
        bloom.add(7)
        with pytest.raises(ValueError, match="truncated"):
            BloomFilter.from_bytes(bloom.to_bytes()[:-100])

    def test_unknown_version_rejected(self):
        good = BloomFilter(1024).to_bytes()
        (magic,) = struct.unpack_from("<Q", good, 0)
        bad = struct.pack("<Q", (magic & ~0xFF) | 0x63) + good[8:]
        with pytest.raises(ValueError, match="version"):
            BloomFilter.from_bytes(bad)

    def test_constructor_rejects_unknown_hash_version(self):
        with pytest.raises(ValueError):
            BloomFilter(1024, hash_version=3)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 1 << 20), min_size=1, max_size=150),
       st.integers(0, 1 << 20), st.integers(1, 256))
def test_v2_range_probe_has_no_false_negatives(blocks, first, width):
    """Property: stride-based range probes never miss an inserted block."""
    bloom = BloomFilter(32 * 1024)
    bloom.add_many(sorted(blocks))
    if any(first <= block < first + width for block in blocks):
        assert bloom.might_contain_range(first, width)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 1 << 20), min_size=1, max_size=100))
def test_v2_range_probe_survives_halving(blocks):
    bloom = BloomFilter(32 * 1024)
    bloom.add_many(sorted(blocks))
    bloom.shrink_to(4 * 1024)
    for block in blocks:
        start = max(0, block - (1 << STRIDE_SHIFT))
        assert bloom.might_contain_range(start, 3 << STRIDE_SHIFT)
