"""Tests for the simulated storage backends and I/O accounting."""

from __future__ import annotations

import pytest

from repro.fsim.blockdev import (
    DeviceModel,
    DiskBackend,
    IOStats,
    MemoryBackend,
    PAGE_SIZE,
)


class TestIOStats:
    def test_snapshot_and_delta(self):
        stats = IOStats()
        stats.pages_written = 10
        snap = stats.snapshot()
        stats.pages_written = 25
        stats.pages_read = 3
        delta = stats.delta(snap)
        assert delta.pages_written == 15
        assert delta.pages_read == 3
        assert delta.bytes_written == 15 * PAGE_SIZE

    def test_reset(self):
        stats = IOStats(pages_written=5, pages_read=5)
        stats.reset()
        assert stats.pages_written == 0 and stats.pages_read == 0


class TestDeviceModel:
    def test_costs_scale_with_pages(self):
        model = DeviceModel()
        assert model.write_cost(0) == 0.0
        assert model.write_cost(100) > model.write_cost(10)
        assert model.read_cost(100) > 0.0
        # More seeks cost more for the same data volume.
        assert model.write_cost(100, sequential_runs=10) > model.write_cost(100, sequential_runs=1)


class _BackendContract:
    """Shared test body run against both backends."""

    def make_backend(self):
        raise NotImplementedError

    def test_create_write_read(self):
        backend = self.make_backend()
        page_file = backend.create("runs/a")
        index = page_file.append_page(b"hello")
        assert index == 0
        assert page_file.num_pages == 1
        data = page_file.read_page(0)
        assert data[:5] == b"hello"
        assert len(data) == PAGE_SIZE
        assert backend.stats.pages_written == 1
        assert backend.stats.pages_read == 1

    def test_oversized_page_rejected(self):
        backend = self.make_backend()
        page_file = backend.create("big")
        with pytest.raises(ValueError):
            page_file.append_page(b"x" * (PAGE_SIZE + 1))

    def test_read_out_of_range(self):
        backend = self.make_backend()
        page_file = backend.create("small")
        page_file.append_page(b"data")
        with pytest.raises(IndexError):
            page_file.read_page(1)
        with pytest.raises(IndexError):
            page_file.read_page(-1)

    def test_exists_delete_list(self):
        backend = self.make_backend()
        backend.create("one")
        backend.create("two")
        assert backend.exists("one")
        assert sorted(backend.list_files()) == ["one", "two"]
        backend.delete("one")
        assert not backend.exists("one")
        with pytest.raises(FileNotFoundError):
            backend.delete("one")
        with pytest.raises(FileNotFoundError):
            backend.open("one")

    def test_total_pages_and_bytes(self):
        backend = self.make_backend()
        a = backend.create("a")
        a.append_page(b"1")
        a.append_page(b"2")
        b = backend.create("b")
        b.append_page(b"3")
        assert backend.total_pages() == 3
        assert backend.total_bytes() == 3 * PAGE_SIZE


class TestMemoryBackend(_BackendContract):
    def make_backend(self):
        return MemoryBackend()

    def test_create_truncates(self):
        backend = MemoryBackend()
        f = backend.create("x")
        f.append_page(b"1")
        f = backend.create("x")
        assert f.num_pages == 0


class TestDiskBackend(_BackendContract):
    def make_backend(self):
        import tempfile

        return DiskBackend(tempfile.mkdtemp(prefix="backlog-test-"))

    def test_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = DiskBackend(directory)
        page_file = backend.create("p000001/from/L0_0000000001")
        page_file.append_page(b"persisted")
        reopened = DiskBackend(directory)
        assert reopened.exists("p000001/from/L0_0000000001")
        assert reopened.open("p000001/from/L0_0000000001").read_page(0)[:9] == b"persisted"
