"""Tests for the simulated storage backends and I/O accounting."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fsim.blockdev import (
    DeviceModel,
    DiskBackend,
    DiskImageBackend,
    IOStats,
    MemoryBackend,
    PAGE_SIZE,
    _escape_name,
    _unescape_name,
)


class TestIOStats:
    def test_snapshot_and_delta(self):
        stats = IOStats()
        stats.pages_written = 10
        snap = stats.snapshot()
        stats.pages_written = 25
        stats.pages_read = 3
        delta = stats.delta(snap)
        assert delta.pages_written == 15
        assert delta.pages_read == 3
        assert delta.bytes_written == 15 * PAGE_SIZE

    def test_reset(self):
        stats = IOStats(pages_written=5, pages_read=5)
        stats.reset()
        assert stats.pages_written == 0 and stats.pages_read == 0

    def test_read_tally_stack_nests(self):
        """Each scope counts exactly the reads made while it is innermost
        -- nested scopes do not double-charge their parents."""
        stats = IOStats()
        stats.count_pages_read(7)          # no open tally: global only
        stats.push_read_tally()
        stats.count_pages_read(3)
        stats.push_read_tally()            # a nested query on the same thread
        stats.count_pages_read(2)
        assert stats.pop_read_tally() == 2
        stats.count_pages_read(1)
        assert stats.pop_read_tally() == 4  # 3 + 1, not the nested 2
        assert stats.pages_read == 13       # the global counter saw everything

    def test_add_tallied_reads_folds_worker_pages(self):
        """A fan-out worker's count folds into the consumer's open tally
        without touching the global counter (the worker already counted)."""
        stats = IOStats()
        stats.push_read_tally()
        stats.count_pages_read(1)
        stats.add_tallied_reads(5)
        assert stats.pop_read_tally() == 6
        assert stats.pages_read == 1
        stats.add_tallied_reads(5)          # no open tally: a no-op
        assert stats.pages_read == 1

    def test_read_tallies_are_thread_local(self):
        """A tally opened on one thread never sees another thread's reads."""
        stats = IOStats()
        stats.push_read_tally()

        worker_tally = []

        def worker():
            stats.push_read_tally()
            stats.count_pages_read(9)
            worker_tally.append(stats.pop_read_tally())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert worker_tally == [9]
        stats.count_pages_read(2)
        assert stats.pop_read_tally() == 2
        assert stats.pages_read == 11


class TestDeviceModel:
    def test_costs_scale_with_pages(self):
        model = DeviceModel()
        assert model.write_cost(0) == 0.0
        assert model.write_cost(100) > model.write_cost(10)
        assert model.read_cost(100) > 0.0
        # More seeks cost more for the same data volume.
        assert model.write_cost(100, sequential_runs=10) > model.write_cost(100, sequential_runs=1)


class _BackendContract:
    """Shared test body run against both backends."""

    def make_backend(self):
        raise NotImplementedError

    def test_create_write_read(self):
        backend = self.make_backend()
        page_file = backend.create("runs/a")
        index = page_file.append_page(b"hello")
        assert index == 0
        assert page_file.num_pages == 1
        data = page_file.read_page(0)
        assert data[:5] == b"hello"
        assert len(data) == PAGE_SIZE
        assert backend.stats.pages_written == 1
        assert backend.stats.pages_read == 1

    def test_oversized_page_rejected(self):
        backend = self.make_backend()
        page_file = backend.create("big")
        with pytest.raises(ValueError):
            page_file.append_page(b"x" * (PAGE_SIZE + 1))

    def test_read_out_of_range(self):
        backend = self.make_backend()
        page_file = backend.create("small")
        page_file.append_page(b"data")
        with pytest.raises(IndexError):
            page_file.read_page(1)
        with pytest.raises(IndexError):
            page_file.read_page(-1)

    def test_exists_delete_list(self):
        backend = self.make_backend()
        backend.create("one")
        backend.create("two")
        assert backend.exists("one")
        assert sorted(backend.list_files()) == ["one", "two"]
        backend.delete("one")
        assert not backend.exists("one")
        with pytest.raises(FileNotFoundError):
            backend.delete("one")
        with pytest.raises(FileNotFoundError):
            backend.open("one")

    def test_total_pages_and_bytes(self):
        backend = self.make_backend()
        a = backend.create("a")
        a.append_page(b"1")
        a.append_page(b"2")
        b = backend.create("b")
        b.append_page(b"3")
        assert backend.total_pages() == 3
        assert backend.total_bytes() == 3 * PAGE_SIZE


class TestMemoryBackend(_BackendContract):
    def make_backend(self):
        return MemoryBackend()

    def test_create_truncates(self):
        backend = MemoryBackend()
        f = backend.create("x")
        f.append_page(b"1")
        f = backend.create("x")
        assert f.num_pages == 0


class TestDiskBackend(_BackendContract):
    def make_backend(self):
        import tempfile

        return DiskBackend(tempfile.mkdtemp(prefix="backlog-test-"))

    def test_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        backend = DiskBackend(directory)
        page_file = backend.create("p000001/from/L0_0000000001")
        page_file.append_page(b"persisted")
        reopened = DiskBackend(directory)
        assert reopened.exists("p000001/from/L0_0000000001")
        assert reopened.open("p000001/from/L0_0000000001").read_page(0)[:9] == b"persisted"

    def test_appends_are_batched_until_needed(self, tmp_path):
        """A created handle buffers appends; readers force the flush."""
        import os

        backend = DiskBackend(str(tmp_path / "store"))
        page_file = backend.create("p1/from/L0_1")
        for index in range(5):
            page_file.append_page(bytes([index]))
        path = backend._path("p1/from/L0_1")
        assert os.path.getsize(path) == 0          # nothing written yet
        assert page_file.num_pages == 5            # but fully visible
        assert page_file.read_page(3)[0] == 3      # a read flushes the batch
        assert os.path.getsize(path) == 5 * PAGE_SIZE
        page_file.append_page(bytes([5]))
        # open() on another handle observes the still-buffered tail too.
        assert backend.open("p1/from/L0_1").read_page(5)[0] == 5

    def test_close_is_idempotent_and_flushes(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        page_file = backend.create("a")
        page_file.append_page(b"x")
        page_file.close()
        page_file.close()
        assert backend.open("a").read_page(0)[:1] == b"x"


class TestDiskImageBackend(_BackendContract):
    def make_backend(self):
        import tempfile

        return DiskImageBackend(
            tempfile.mktemp(prefix="backlog-test-", suffix=".img"))

    def test_deleted_pages_are_reused(self, tmp_path):
        """The image grows to its high-water mark, then recycles free pages."""
        import os

        backend = DiskImageBackend(str(tmp_path / "store.img"))
        victim = backend.create("victim")
        for index in range(4):
            victim.append_page(bytes([index]))
        high_water = os.path.getsize(backend.image_path)
        backend.delete("victim")
        survivor = backend.create("survivor")
        for index in range(4):
            survivor.append_page(bytes([10 + index]))
        assert os.path.getsize(backend.image_path) == high_water
        assert [survivor.read_page(i)[0] for i in range(4)] == [10, 11, 12, 13]

    def test_create_truncates_and_recycles(self, tmp_path):
        backend = DiskImageBackend(str(tmp_path / "store.img"))
        f = backend.create("x")
        f.append_page(b"1")
        f = backend.create("x")
        assert f.num_pages == 0
        other = backend.create("y")
        other.append_page(b"2")               # reuses x's recycled page
        assert backend.total_pages() == 1


# ------------------------------------------------------- flat-name escaping


class TestNameEscaping:
    """The reversible hierarchical-name escape used by DiskBackend.

    The historical one-way ``name.replace("/", "__")`` corrupted names that
    legitimately contain ``__`` or ``_u`` on the ``list_files`` round trip;
    the property test holds the fixed scheme to exact invertibility over
    exactly the troublesome alphabet.
    """

    @given(st.text(alphabet="abu_/", min_size=0, max_size=40))
    def test_escape_round_trips(self, name):
        assert _unescape_name(_escape_name(name)) == name

    @given(st.text(alphabet="abu_/", min_size=1, max_size=20),
           st.text(alphabet="abu_/", min_size=1, max_size=20))
    def test_escape_is_injective(self, first, second):
        if first != second:
            assert _escape_name(first) != _escape_name(second)

    def test_escaped_names_are_flat(self):
        assert "/" not in _escape_name("p000001/from/L0_0000000001")

    def test_backend_lists_original_names(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "store"))
        nasty = ["p000001/from/L0_0000000001", "a_b", "a__b", "a_u", "u_/u"]
        for name in nasty:
            backend.create(name).append_page(name.encode())
        assert backend.list_files() == sorted(nasty)
        for name in nasty:
            assert backend.exists(name)
            data = backend.open(name).read_page(0)
            assert data[:len(name)] == name.encode()
