"""The cursor query surface: QuerySpec/QueryResult semantics and equivalence.

Three layers of coverage:

* **Unit semantics** -- QuerySpec validation and derivation, resume-token
  round trips, QueryResult's iterator/terminal/limit/resume state machine.
* **Differential equivalence** -- over the same seeded randomized workloads
  the streaming-equivalence suite uses (and hypothesis-chosen specs), every
  filtered/paginated ``select`` must return exactly what post-filtering the
  legacy list surface returns, with the size dispatch both enabled and
  disabled.
* **Resource behaviour** -- pagination across checkpoint/maintenance
  boundaries, and tracemalloc flatness of a paginated whole-device scan
  (the transient working set must not grow with the scanned range).
"""

from __future__ import annotations

import random
import tracemalloc
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.cursor import (
    QueryResult,
    QuerySpec,
    decode_resume_token,
    encode_resume_token,
)
from repro.core.records import ReferenceKey
from repro.fsim.blockdev import MemoryBackend

from test_streaming_equivalence import (
    _all_blocks,
    _fresh_backlog,
    _random_ops,
    _replay,
)


# ------------------------------------------------------------- QuerySpec


class TestQuerySpec:
    def test_defaults_are_a_point_query(self):
        spec = QuerySpec(7)
        assert (spec.first_block, spec.num_blocks) == (7, 1)
        assert spec.is_unfiltered

    @pytest.mark.parametrize("kwargs", [
        dict(first_block=-1),
        dict(first_block=0, num_blocks=0),
        dict(first_block=0, limit=0),
        dict(first_block=0, version_window=(5, 5)),
        dict(first_block=0, version_window=(6, 2)),
        dict(first_block=0, resume_token="not-a-token"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QuerySpec(**kwargs)

    def test_filters_normalise_to_frozensets(self):
        spec = QuerySpec(0, 8, lines=[1, 2, 2], inodes={3})
        assert spec.lines == frozenset({1, 2})
        assert spec.inodes == frozenset({3})
        assert not spec.is_unfiltered

    def test_derivation_helpers(self):
        spec = QuerySpec(10, 4)
        assert spec.at_version(9).version_window == (9, 10)
        assert spec.live().live_only
        assert spec.with_limit(5).limit == 5
        token = encode_resume_token(ReferenceKey(11, 2, 3, 0))
        assert spec.after(token).resume_key == ReferenceKey(11, 2, 3, 0)
        # Derivation never mutates the original.
        assert spec.is_unfiltered

    def test_resume_token_must_fall_inside_the_range(self):
        token = encode_resume_token(ReferenceKey(100, 1, 0, 0))
        with pytest.raises(ValueError, match="outside"):
            QuerySpec(0, 50, resume_token=token)
        assert QuerySpec(0, 101, resume_token=token).resume_key.block == 100


class TestResumeTokens:
    def test_round_trip(self):
        key = ReferenceKey(2**40, 17, 2**33 + 5, 3)
        assert decode_resume_token(encode_resume_token(key)) == key

    @pytest.mark.parametrize("token", ["", "bkq1.", "bkq1.abc", "xxqq.AAAA", None, 42])
    def test_malformed_tokens_raise(self, token):
        with pytest.raises(ValueError):
            decode_resume_token(token)

    def test_tokens_are_url_safe(self):
        token = encode_resume_token(ReferenceKey(2**64 - 1, 2**64 - 1, 0, 255))
        assert token.replace(".", "").replace("-", "").replace("_", "").isalnum()


# --------------------------------------------------------- QueryResult


def _small_backlog() -> Backlog:
    backlog = Backlog(backend=MemoryBackend())
    for i in range(8):
        backlog.add_reference(block=100 + i, inode=7, offset=i)
    backlog.add_reference(block=100, inode=9, offset=0)
    backlog.checkpoint()
    backlog.remove_reference(block=103, inode=7, offset=3)
    backlog.checkpoint()
    return backlog


class TestQueryResult:
    def test_iteration_matches_query_range(self):
        backlog = _small_backlog()
        refs = list(backlog.select(QuerySpec(100, 8)))
        assert refs == backlog.query_range(100, 8)

    def test_all_matches_query_range(self):
        backlog = _small_backlog()
        assert backlog.select(QuerySpec(100, 8)).all() == backlog.query_range(100, 8)

    def test_first_and_close(self):
        backlog = _small_backlog()
        result = backlog.select(QuerySpec(100, 8))
        first = result.first()
        assert first == backlog.query_range(100, 8)[0]
        # The cursor continues after the early exit without replaying.
        rest = list(result)
        assert [first] + rest == backlog.query_range(100, 8)

    def test_first_on_empty_range(self):
        backlog = _small_backlog()
        assert backlog.select(QuerySpec(10**9)).first() is None

    def test_one_or_none(self):
        backlog = _small_backlog()
        assert backlog.select(QuerySpec(101)).one_or_none() is not None
        assert backlog.select(QuerySpec(10**9)).one_or_none() is None
        with pytest.raises(ValueError, match="at most one"):
            backlog.select(QuerySpec(100)).one_or_none()  # two owners share 100

    def test_count_without_materialising(self):
        backlog = _small_backlog()
        assert backlog.select(QuerySpec(100, 8)).count() == len(backlog.query_range(100, 8))

    def test_limit_pages_reassemble_exactly(self):
        backlog = _small_backlog()
        full = backlog.query_range(100, 8)
        for page_size in (1, 2, 3, len(full), len(full) + 5):
            pages: List = []
            token = None
            for _ in range(len(full) + 2):  # bounded loop: must terminate
                result = backlog.select(QuerySpec(100, 8, limit=page_size).after(token))
                page = list(result)
                pages.extend(page)
                assert len(page) <= page_size
                token = result.resume_token
                if token is None:
                    assert result.exhausted or len(page) == page_size
                    break
            assert token is None
            assert pages == full

    def test_resume_token_none_when_exhausted(self):
        backlog = _small_backlog()
        result = backlog.select(QuerySpec(100, 8))
        result.all()
        assert result.exhausted
        assert result.resume_token is None

    def test_limit_rebuild_before_iteration_only(self):
        backlog = _small_backlog()
        result = backlog.select(QuerySpec(100, 8))
        limited = result.limit(2)
        assert isinstance(limited, QueryResult)
        assert len(list(limited)) == 2
        with pytest.raises(RuntimeError):
            limited.limit(1)

    def test_select_accepts_keyword_fields(self):
        backlog = _small_backlog()
        assert backlog.select(first_block=100, num_blocks=8).all() == \
            backlog.query_range(100, 8)
        with pytest.raises(TypeError):
            backlog.select(QuerySpec(100), first_block=100)

    def test_cursor_stats_accounting(self):
        backlog = _small_backlog()
        stats = backlog.query_stats
        stats.reset()
        backlog.select(QuerySpec(100, 8, limit=3)).all()
        assert stats.cursors_opened == 1
        assert stats.queries == 1
        assert stats.back_references_returned == 3
        # The unfiltered .all() fast path is the legacy list query: it counts
        # as a query but not as a cursor.
        backlog.select(QuerySpec(100, 8)).all()
        assert stats.cursors_opened == 1
        assert stats.queries == 2

    def test_reopened_cursor_counts_as_one_query(self):
        backlog = _small_backlog()
        stats = backlog.query_stats
        stats.reset()
        result = backlog.select(QuerySpec(100, 8))
        result.first()          # releases the pipeline early
        remaining = list(result)  # transparently reopens and continues
        assert remaining
        assert stats.cursors_opened == 1
        assert stats.queries == 1
        assert stats.narrow_fast_path_queries <= stats.queries
        assert stats.back_references_returned == 1 + len(remaining)

    def test_consumer_think_time_is_not_charged_to_query_stats(self):
        import time as _time

        backlog = _small_backlog()
        stats = backlog.query_stats
        stats.reset()
        result = backlog.select(QuerySpec(100, 8, lines={0}))  # force the cursor path
        next(iter(result))
        _time.sleep(0.05)       # consumer thinks while the cursor is open...
        result.close()          # ...then abandons it
        assert stats.seconds < 0.05, stats.seconds


# ------------------------------------------------- filter equivalence


def _legacy_filtered(backlog: Backlog, spec: QuerySpec) -> List:
    """The pre-cursor way to answer a filtered query: post-filter the list."""
    refs = backlog.query_range(spec.first_block, spec.num_blocks)
    if spec.resume_token is not None:
        key = spec.resume_key
        refs = [r for r in refs if (r.block, r.inode, r.offset, r.line) > tuple(key)]
    if spec.inodes is not None:
        refs = [r for r in refs if r.inode in spec.inodes]
    if spec.lines is not None:
        refs = [r for r in refs if r.line in spec.lines]
    if spec.live_only:
        refs = [r for r in refs if r.is_live]
    if spec.version_window is not None:
        lo, hi = spec.version_window
        refs = [r for r in refs
                if any(start < hi and lo < stop for start, stop in r.ranges)]
    if spec.limit is not None:
        refs = refs[:spec.limit]
    return refs


@pytest.mark.parametrize("narrow_dispatch_max_runs", [0, 2], ids=["streaming", "dispatched"])
@pytest.mark.parametrize("seed", [1, 23])
def test_select_matches_legacy_post_filtering(seed, narrow_dispatch_max_runs):
    """Every filter combination answers exactly like the legacy surface."""
    ops = _random_ops(seed)
    backlog, authority = _fresh_backlog(
        streaming_compaction=True, narrow_dispatch_max_runs=narrow_dispatch_max_runs)
    _replay(backlog, authority, ops)

    blocks = _all_blocks(ops)
    top = max(blocks) + 2
    current_cp = backlog.current_cp
    specs = [
        QuerySpec(0, top),
        QuerySpec(0, top).live(),
        QuerySpec(0, top).at_version(max(1, current_cp // 2)),
        QuerySpec(0, top, lines={0, 1}),
        QuerySpec(0, top, inodes={1, 3}),
        QuerySpec(0, top, inodes={2}, lines={0}, live_only=True),
        QuerySpec(0, top, limit=5),
        QuerySpec(blocks[len(blocks) // 2], top - blocks[len(blocks) // 2], limit=3,
                  inodes={1, 2, 4}),
    ]
    for block in blocks[::7]:
        specs.append(QuerySpec(block).live())
        specs.append(QuerySpec(block).at_version(max(1, current_cp - 1)))

    def check():
        for spec in specs:
            assert backlog.select(spec).all() == _legacy_filtered(backlog, spec), spec

    check()                 # mixed run + write-store state
    backlog.maintain()
    check()                 # compacted (Combined pass-through) state


@settings(max_examples=40, deadline=None)
@given(
    seed=st.sampled_from([5, 31]),
    first=st.integers(0, 120),
    width=st.integers(1, 160),
    page_size=st.integers(1, 9),
    live_only=st.booleans(),
    inode=st.one_of(st.none(), st.integers(1, 4)),
    version=st.one_of(st.none(), st.integers(1, 9)),
)
def test_hypothesis_pagination_equivalence(seed, first, width, page_size,
                                           live_only, inode, version):
    """Property: any paginated, filtered scan reassembles the legacy answer."""
    backlog, authority = _BACKLOGS[seed]
    spec = QuerySpec(
        first, width,
        live_only=live_only,
        inodes=None if inode is None else frozenset({inode}),
    )
    if version is not None:
        spec = spec.at_version(version)
    expected = _legacy_filtered(backlog, spec)

    pages: List = []
    token = None
    while True:
        result = backlog.select(spec.with_limit(page_size).after(token))
        pages.extend(result)
        token = result.resume_token
        if token is None:
            break
    assert pages == expected


#: Hypothesis shares prebuilt instances: workload replay dominates runtime.
_BACKLOGS = {}
for _seed in (5, 31):
    _bl, _auth = _fresh_backlog(streaming_compaction=True)
    _replay(_bl, _auth, _random_ops(_seed))
    if _seed == 31:
        _bl.maintain()
    _BACKLOGS[_seed] = (_bl, _auth)


# ------------------------------------- resumption across database change


@pytest.mark.parametrize("seed", [9, 47])
def test_pagination_resumes_across_checkpoint_and_maintenance(seed):
    """A resume token stays valid across flushes and compactions.

    Tokens are positional, so pages fetched after a checkpoint or a
    maintenance pass must continue exactly where the scan stopped, over the
    re-laid-out (but observationally identical) database.
    """
    ops = _random_ops(seed)
    backlog, authority = _fresh_backlog(streaming_compaction=True)
    _replay(backlog, authority, ops)

    top = max(_all_blocks(ops)) + 2
    expected = backlog.query_range(0, top)
    assert len(expected) > 6, "workload too small to paginate meaningfully"

    spec = QuerySpec(0, top, limit=max(2, len(expected) // 5))
    pages: List = []
    token = None
    boundary_actions = iter([
        lambda: backlog.checkpoint(),       # flush (empty write stores: no-op data change)
        lambda: backlog.maintain(),         # full compaction between pages
        lambda: None,
    ])
    while True:
        result = backlog.select(spec.after(token))
        pages.extend(result)
        token = result.resume_token
        if token is None:
            break
        next(boundary_actions, lambda: None)()
    assert pages == expected


def test_resume_skips_additions_before_the_cursor():
    """New references sorting before the token are (by contract) not revisited."""
    backlog = Backlog(backend=MemoryBackend())
    for block in (10, 20, 30):
        backlog.add_reference(block=block, inode=1, offset=0)
    backlog.checkpoint()

    result = backlog.select(QuerySpec(0, 100, limit=2))
    first_page = [ref.block for ref in result]
    assert first_page == [10, 20]
    token = result.resume_token

    backlog.add_reference(block=15, inode=1, offset=5)   # sorts before the cursor
    backlog.add_reference(block=40, inode=1, offset=6)   # sorts after the cursor
    backlog.checkpoint()

    rest = [ref.block for ref in backlog.select(QuerySpec(0, 100).after(token))]
    assert rest == [30, 40]


# ----------------------------------------------------- resource behaviour


def _wide_backlog(device_blocks: int, refs: int) -> Backlog:
    config = BacklogConfig(partition_size_blocks=device_blocks // 8, track_timing=False)
    backlog = Backlog(backend=MemoryBackend(), config=config)
    rng = random.Random(4)
    for cp in range(4):
        for i in range(refs // 4):
            backlog.add_reference(block=rng.randrange(device_blocks),
                                  inode=1 + i % 32, offset=cp * refs + i)
        backlog.checkpoint()
    return backlog


def test_paginated_scan_memory_is_flat_in_range_width():
    """tracemalloc: a paginated scan's transient set must not track the range."""
    device = 1 << 14
    backlog = _wide_backlog(device, refs=6000)

    def scan_transient(width: int) -> int:
        backlog.clear_caches()
        tracemalloc.start()
        token = None
        while True:
            result = backlog.select(QuerySpec(0, width, limit=64).after(token))
            for _ in result:
                pass
            token = result.resume_token
            if token is None:
                break
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak - current

    half = scan_transient(device // 2)
    full = scan_transient(device)
    assert full <= half * 1.5, (half, full)

    # The materialised whole-device answer, by contrast, tracks the width.
    def materialised_transient(width: int) -> int:
        backlog.clear_caches()
        tracemalloc.start()
        backlog.query_range(0, width)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak - current

    assert materialised_transient(device) >= 1.5 * materialised_transient(device // 2)


def test_first_reads_less_than_full_scan():
    """.first() on a wide range must not read the whole device's pages."""
    device = 1 << 14
    backlog = _wide_backlog(device, refs=6000)

    stats = backlog.query_stats
    backlog.clear_caches()
    stats.reset()
    assert backlog.select(QuerySpec(0, device)).first() is not None
    first_reads = stats.pages_read

    backlog.clear_caches()
    stats.reset()
    backlog.query_range(0, device)
    full_reads = stats.pages_read
    assert first_reads * 4 <= full_reads, (first_reads, full_reads)


def test_relocate_block_suppresses_through_the_cursor():
    """relocate_block must stream and suppress every owner identity."""
    backlog = Backlog(backend=MemoryBackend())
    for inode in (1, 2, 3):
        backlog.add_reference(block=55, inode=inode, offset=0)
    backlog.add_reference(block=56, inode=9, offset=0)
    backlog.checkpoint()

    assert backlog.relocate_block(55) == 3
    assert backlog.query(55) == []
    assert [ref.inode for ref in backlog.query(56)] == [9]
