"""Tests for version masking and the version authorities."""

from __future__ import annotations

import pytest

from repro.core.masking import (
    AllVersionsAuthority,
    ExplicitVersionAuthority,
    SnapshotManagerAuthority,
    mask_records,
)
from repro.core.records import CombinedRecord, INFINITY
from tests.conftest import build_system


class TestAllVersionsAuthority:
    def test_everything_valid(self):
        authority = AllVersionsAuthority()
        assert authority.valid_versions(0) is None
        records = [CombinedRecord(1, 1, 0, 0, 5, 6)]
        assert mask_records(records, authority) == records


class TestExplicitVersionAuthority:
    def test_live_line_includes_current_cp(self):
        authority = ExplicitVersionAuthority()
        authority.set_current_cp(9)
        assert authority.valid_versions(0) == [9]

    def test_snapshots_and_removal(self):
        authority = ExplicitVersionAuthority()
        authority.set_current_cp(10)
        authority.add_snapshot(0, 3)
        authority.add_snapshot(0, 7)
        assert authority.valid_versions(0) == [3, 7, 10]
        authority.remove_snapshot(0, 3)
        assert authority.valid_versions(0) == [7, 10]

    def test_non_live_line(self):
        authority = ExplicitVersionAuthority()
        authority.add_snapshot(5, 2)
        assert authority.valid_versions(5) == [2]
        authority.add_line(5)
        authority.set_current_cp(4)
        assert authority.valid_versions(5) == [2, 4]
        authority.remove_line(5)
        assert authority.valid_versions(5) == [2]


class TestMaskRecords:
    def test_drops_fully_deleted_lifetimes(self):
        authority = ExplicitVersionAuthority()
        authority.set_current_cp(100)
        authority.add_snapshot(0, 50)
        records = [
            CombinedRecord(1, 1, 0, 0, 10, 20),    # dead: no retained version inside
            CombinedRecord(2, 1, 0, 0, 40, 60),    # covers snapshot 50
            CombinedRecord(3, 1, 0, 0, 90, INFINITY),  # live
        ]
        masked = mask_records(records, authority)
        assert [r.block for r in masked] == [2, 3]

    def test_mask_is_per_line(self):
        authority = ExplicitVersionAuthority()
        authority.set_current_cp(100)
        authority.add_snapshot(1, 15)
        records = [
            CombinedRecord(1, 1, 0, 1, 10, 20),
            CombinedRecord(1, 1, 0, 2, 10, 20),
        ]
        masked = mask_records(records, authority)
        assert [r.line for r in masked] == [1]


class TestSnapshotManagerAuthority:
    def test_reflects_filesystem_snapshots(self):
        fs, backlog = build_system()
        authority = SnapshotManagerAuthority(fs)
        fs.create_file(num_blocks=2)
        cp1 = fs.take_consistency_point()
        cp2 = fs.take_consistency_point()
        valid = authority.valid_versions(0)
        assert cp1 in valid and cp2 in valid
        assert fs.global_cp in valid  # the live file system

    def test_unknown_line_has_no_live_cp(self):
        fs, _ = build_system()
        authority = SnapshotManagerAuthority(fs)
        assert authority.valid_versions(42) == []

    def test_deleted_snapshot_disappears(self):
        fs, _ = build_system()
        authority = SnapshotManagerAuthority(fs)
        fs.create_file(num_blocks=1)
        cp = fs.take_consistency_point()
        assert cp in authority.valid_versions(0)
        fs.delete_snapshot(0, cp)
        assert cp not in authority.valid_versions(0)
