"""Tests for the Bloom filters guarding read-store runs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter, COMBINED_FILTER_BITS, DEFAULT_FILTER_BITS


class TestBasics:
    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(1024)
        assert not bloom.might_contain(42)
        assert bloom.num_items == 0
        assert bloom.expected_false_positive_rate() == 0.0

    def test_added_items_always_found(self):
        bloom = BloomFilter(4096)
        for block in range(100):
            bloom.add(block * 7)
        for block in range(100):
            assert bloom.might_contain(block * 7)

    def test_add_all(self):
        bloom = BloomFilter(4096)
        bloom.add_all(range(50))
        assert all(bloom.might_contain(b) for b in range(50))
        assert bloom.num_items == 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(1024, num_hashes=0)

    def test_size_rounded_to_power_of_two(self):
        bloom = BloomFilter(1000)
        assert bloom.num_bits == 1024

    def test_default_sizes_match_paper(self):
        """32 KB default filters, 1 MB cap for the Combined store (§5.1)."""
        assert DEFAULT_FILTER_BITS == 32 * 1024 * 8
        assert COMBINED_FILTER_BITS == 1024 * 1024 * 8


class TestFalsePositiveRate:
    def test_paper_configuration_false_positive_rate(self):
        """32 KB filter, 4 hashes, 32 000 items: expected FP rate around 2.4 %."""
        bloom = BloomFilter(DEFAULT_FILTER_BITS, num_hashes=4)
        for block in range(32_000):
            bloom.add(block)
        rate = bloom.expected_false_positive_rate()
        assert 0.01 < rate < 0.05
        # Measure empirically on blocks never inserted.
        false_positives = sum(
            1 for block in range(1_000_000, 1_010_000) if bloom.might_contain(block)
        )
        assert false_positives / 10_000 < 0.06

    def test_fill_ratio_increases(self):
        bloom = BloomFilter(4096)
        assert bloom.fill_ratio() == 0.0
        bloom.add_all(range(100))
        assert bloom.fill_ratio() > 0.0


class TestRange:
    def test_range_query(self):
        bloom = BloomFilter(8192)
        bloom.add(500)
        assert bloom.might_contain_range(490, 20)
        assert not bloom.might_contain_range(0, 0)

    def test_wide_range_short_circuits(self):
        bloom = BloomFilter(8192)
        assert bloom.might_contain_range(0, 1000)  # wider than 256: always True


class TestShrinking:
    def test_halving_preserves_membership(self):
        bloom = BloomFilter(64 * 1024)
        items = [i * 13 for i in range(200)]
        bloom.add_all(items)
        bloom.shrink_to(8 * 1024)
        assert bloom.num_bits == 8 * 1024
        assert all(bloom.might_contain(i) for i in items)

    def test_shrink_to_fit_small_run(self):
        bloom = BloomFilter(DEFAULT_FILTER_BITS)
        bloom.add_all(range(10))
        bloom.shrink_to_fit()
        assert bloom.num_bits < DEFAULT_FILTER_BITS
        assert all(bloom.might_contain(i) for i in range(10))

    def test_shrink_invalid_target(self):
        bloom = BloomFilter(1024)
        with pytest.raises(ValueError):
            bloom.shrink_to(0)


class TestSerialization:
    def test_roundtrip(self):
        bloom = BloomFilter(4096, num_hashes=4)
        bloom.add_all([1, 5, 9, 1000, 123456])
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        assert restored.num_items == bloom.num_items
        for item in [1, 5, 9, 1000, 123456]:
            assert restored.might_contain(item)

    def test_size_bytes(self):
        bloom = BloomFilter(8 * 1024)
        assert bloom.size_bytes == 1024


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=2**48), max_size=200),
       st.integers(min_value=8, max_value=16))
def test_no_false_negatives_property(blocks, log_bits):
    """Property: a Bloom filter never reports an inserted block as absent."""
    bloom = BloomFilter(1 << log_bits)
    bloom.add_all(blocks)
    assert all(bloom.might_contain(b) for b in blocks)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=100))
def test_no_false_negatives_after_halving(blocks):
    """Property: halving the filter preserves the no-false-negative guarantee."""
    bloom = BloomFilter(32 * 1024)
    bloom.add_all(blocks)
    bloom.shrink_to(2 * 1024)
    assert all(bloom.might_contain(b) for b in blocks)
