"""Differential tests locking the columnar row pipeline to the tuple path.

The columnar rework keeps the legacy NamedTuple pipeline as first-class
code behind ``BacklogConfig(columnar_pipeline=False)``, so every layer can
be driven side by side with the packed-row one:

* slab primitives in :mod:`repro.core.records` (``pack_row`` /
  ``records_to_rows`` round trips, memcmp order, :class:`RecordBlock`
  bisect and zero-copy slicing) via hypothesis properties;
* :func:`repro.core.columnar.scan_rows_bulk` against the cursor generator
  chain ``fold_rows_for_query(join_rows_for_query(...))`` on generated
  tables with clones and snapshots;
* whole Backlogs over seeded clone/snapshot/relocation workloads across
  all three storage backends and worker counts, asserting identical
  answers, identical pagination page contents and resume tokens, and
  *exactly* equal ``pages_read``;
* sharded clusters at 1 and 3 shards over the same replayed workload;
* the version-2 ``QUERY_PAGE`` wire codec: pack/unpack identity, v2
  frames decoding into the v1 reply dict shape, v1 pickle frames from old
  peers still decodable, and malformed bodies rejected loudly.
"""

from __future__ import annotations

import bisect
import pickle
import random
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backlog import Backlog
from repro.core.columnar import (
    fold_rows_for_query,
    join_rows_for_query,
    scan_rows_bulk,
)
from repro.core.config import BacklogConfig
from repro.core.cursor import QuerySpec
from repro.core.inheritance import CloneGraph
from repro.core.masking import ExplicitVersionAuthority
from repro.core.records import (
    BackReference,
    CombinedRecord,
    FromRecord,
    RecordBlock,
    ToRecord,
    pack_key_prefix,
    pack_row,
    records_to_rows,
    rows_from_le_payload,
    rows_to_le_bytes,
    rows_to_records,
    unpack_row,
)
from repro.cluster.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    QUERY_PAGE_VERSION,
    Opcode,
    ProtocolError,
    QueryPage,
    _HEADER,
    decode_frame,
    encode_frame,
    pack_back_references,
    unpack_back_references,
)

from test_streaming_equivalence import _random_ops, _replay

# ------------------------------------------------------------ slab layer


_from_records = st.lists(
    st.builds(FromRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(1, 15)),
    max_size=60,
)
_to_records = st.lists(
    st.builds(ToRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(1, 15)),
    max_size=60,
)
_combined_records = st.lists(
    st.builds(CombinedRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(0, 10),
              st.integers(11, 20)),
    max_size=30,
)


@settings(max_examples=120, deadline=None)
@given(_from_records, _combined_records)
def test_pack_unpack_row_roundtrip(froms, combined):
    """Property: pack_row / unpack_row is the identity on record tuples."""
    for record in froms + combined:
        row = pack_row(record)
        assert len(row) == len(record) * 8
        assert unpack_row(row) == tuple(record)


@settings(max_examples=120, deadline=None)
@given(_from_records, _to_records, _combined_records)
def test_row_order_is_tuple_order(froms, tos, combined):
    """Property: memcmp order over packed rows == tuple sort order."""
    for records, fields in ((froms, 5), (tos, 5), (combined, 6)):
        rows = records_to_rows(records, fields)
        assert sorted(rows) == records_to_rows(sorted(records), fields)


@settings(max_examples=120, deadline=None)
@given(_from_records, _combined_records)
def test_rows_records_and_le_payload_roundtrip(froms, combined):
    """Property: rows <-> records <-> little-endian payload all round-trip."""
    for records, fields, cls in ((froms, 5, FromRecord),
                                 (combined, 6, CombinedRecord)):
        rows = records_to_rows(records, fields)
        assert rows_to_records(rows, cls) == records
        payload = rows_to_le_bytes(rows)
        assert rows_from_le_payload(payload, fields) == rows
        block = RecordBlock.from_le_payload(payload, fields)
        assert len(block) == len(records)
        assert block.rows() == rows
        assert block.records(cls) == records
        assert block.le_bytes() == payload


@settings(max_examples=120, deadline=None)
@given(_from_records, st.integers(0, 31), st.integers(1, 4))
def test_recordblock_bisect_and_slice_match_tuples(froms, block_field, inode):
    """Property: packed-prefix bisect == tuple bisect; slices share bytes."""
    records = sorted(froms)
    block = RecordBlock(b"".join(records_to_rows(records, 5)), 5)
    for prefix in ((block_field,), (block_field, inode)):
        packed = pack_key_prefix(*prefix)
        expected = bisect.bisect_left(records, prefix)
        assert block.bisect_left(packed) == expected
    if records:
        mid = len(records) // 2
        view = block.slice(mid, len(records))
        assert view.rows() == records_to_rows(records[mid:], 5)
        assert view.row(0) == pack_row(records[mid])
        assert [r[:32] for r in block.rows()] == block.key_prefixes()


def _authority_with_snapshots() -> ExplicitVersionAuthority:
    authority = ExplicitVersionAuthority()
    authority.set_current_cp(16)
    for line in range(0, 3):
        authority.add_snapshot(line, 4)
        authority.add_snapshot(line, 9)
    for line in (5, 6):
        authority.add_line(line)
        authority.add_snapshot(line, 12)
    return authority


def _clone_graph() -> CloneGraph:
    graph = CloneGraph()
    graph.add_clone(5, 1, 7)     # clone of a snapshotted parent line
    graph.add_clone(6, 5, 9)     # second-generation clone
    return graph


@settings(max_examples=120, deadline=None)
@given(_from_records, _to_records, _combined_records)
def test_scan_rows_bulk_matches_generator_chain(froms, tos, combined):
    """Property: the bulk list scan emits exactly the cursor chain's owners."""
    frows = records_to_rows(sorted(froms), 5)
    trows = records_to_rows(sorted(tos), 5)
    crows = records_to_rows(sorted(combined), 6)
    graph = _clone_graph()
    authority = _authority_with_snapshots()
    streamed = list(fold_rows_for_query(
        join_rows_for_query(frows, trows, crows), graph, authority))
    bulk = scan_rows_bulk(frows, trows, crows, graph, authority)
    assert bulk == streamed
    # And without clones: the expansion stage must be a clean no-op.
    empty = CloneGraph()
    assert scan_rows_bulk(frows, trows, crows, empty, authority) == \
        list(fold_rows_for_query(join_rows_for_query(frows, trows, crows),
                                 empty, authority))


# ----------------------------------------- whole-backlog differential


def _backlog_pair(backend_factory, columnar_and_legacy_workers=(1, 1)):
    """A columnar and a legacy Backlog over independent fresh backends."""
    pair = []
    for columnar, workers in zip((True, False), columnar_and_legacy_workers):
        config = BacklogConfig(
            partition_size_blocks=64,
            columnar_pipeline=columnar,
            query_workers=workers,
        )
        authority = ExplicitVersionAuthority()
        pair.append((Backlog(backend=backend_factory(), config=config,
                             version_authority=authority), authority))
    return pair


def _assert_identical_query_behaviour(columnar: Backlog, legacy: Backlog,
                                      device_blocks: int) -> None:
    """Same answers, same page contents, same resume tokens, same I/O."""
    for first, width in ((0, device_blocks), (device_blocks // 3, 17), (1, 3)):
        before = (columnar.query_stats.pages_read,
                  legacy.query_stats.pages_read)
        a = columnar.query_range(first, width)
        b = legacy.query_range(first, width)
        assert a == b
        assert all(type(ref) is BackReference for ref in a)
        read_a = columnar.query_stats.pages_read - before[0]
        read_b = legacy.query_stats.pages_read - before[1]
        assert read_a == read_b, (read_a, read_b)

    # Paginated cursor: page contents and resume tokens must agree at every
    # page boundary, not just the concatenated answer.
    token_a = token_b = None
    for _ in range(64):
        page_a = columnar.select(
            QuerySpec(0, device_blocks, limit=7, resume_token=token_a))
        page_b = legacy.select(
            QuerySpec(0, device_blocks, limit=7, resume_token=token_b))
        assert page_a.all() == page_b.all()
        assert page_a.exhausted == page_b.exhausted
        token_a, token_b = page_a.resume_token, page_b.resume_token
        assert token_a == token_b
        if page_a.exhausted:
            break
    else:  # pragma: no cover - defensive
        raise AssertionError("pagination did not terminate")


@pytest.mark.parametrize("seed", [11, 23])
def test_backlog_columnar_matches_tuple_path(backend_factory, seed):
    """Seeded clone/snapshot/relocation workloads: both pipelines agree."""
    ops = _random_ops(seed, num_cps=6, ops_per_cp=30)
    (columnar, auth_a), (legacy, auth_b) = _backlog_pair(backend_factory)
    try:
        _replay(columnar, auth_a, ops)
        _replay(legacy, auth_b, ops)
        _assert_identical_query_behaviour(columnar, legacy, 512)
    finally:
        columnar.close()
        legacy.close()


def test_backlog_columnar_matches_tuple_path_with_workers(backend_factory):
    """Worker fan-out (1 vs 4) changes nothing observable either."""
    ops = _random_ops(37, num_cps=6, ops_per_cp=30)
    (columnar, auth_a), (legacy, auth_b) = _backlog_pair(
        backend_factory, columnar_and_legacy_workers=(4, 1))
    try:
        _replay(columnar, auth_a, ops)
        _replay(legacy, auth_b, ops)
        _assert_identical_query_behaviour(columnar, legacy, 512)
    finally:
        columnar.close()
        legacy.close()


# ------------------------------------------------------ cluster layer


def _cluster_workload(cluster, rng: random.Random) -> None:
    live: List[Tuple[int, int, int, int]] = []
    for cp in range(4):
        for i in range(40):
            if live and rng.random() < 0.25:
                cluster.remove_reference(*live.pop(rng.randrange(len(live))))
            else:
                entry = (rng.randrange(0, 400), 1 + i % 5, i, i % 3)
                cluster.add_reference(*entry)
                live.append(entry)
        if cp == 1:
            cluster.register_clone(7, 1, cluster.checkpoint())
        else:
            cluster.checkpoint()
    cluster.relocate_block(live[0][0])
    cluster.checkpoint()


@pytest.mark.parametrize("num_shards", [1, 3])
def test_cluster_columnar_matches_tuple_path(shard_factory, num_shards):
    """Shard scatter-gather over v2 pages == the legacy tuple pipeline."""
    clusters = {}
    for columnar in (True, False):
        config = BacklogConfig(partition_size_blocks=64,
                               columnar_pipeline=columnar)
        cluster = shard_factory(num_shards=num_shards, config=config)
        _cluster_workload(cluster, random.Random(4242))
        clusters[columnar] = cluster

    answers = {c: cluster.query_range(0, 400)
               for c, cluster in clusters.items()}
    assert answers[True] == answers[False]
    assert all(type(ref) is BackReference for ref in answers[True])

    tokens = {True: None, False: None}
    for _ in range(200):
        pages = {c: clusters[c].select(
            QuerySpec(0, 400, limit=9, resume_token=tokens[c]))
            for c in (True, False)}
        assert pages[True].all() == pages[False].all()
        assert pages[True].exhausted == pages[False].exhausted
        tokens = {c: pages[c].resume_token for c in (True, False)}
        if pages[True].exhausted:
            break
    else:  # pragma: no cover - defensive
        raise AssertionError("cluster pagination did not terminate")

    reads = {c: clusters[c].query_stats.pages_read for c in (True, False)}
    assert reads[True] == reads[False], reads


# ----------------------------------------------------- v2 wire codec


_SINGLE_RANGE_PAGE = [
    (7, 1, 0, 0, ((3, 2 ** 64 - 1),)),
    (7, 1, 1, 2, ((5, 9),)),
    (900, 4, 2, 1, ((1, 2 ** 64 - 1),)),
]
_MIXED_PAGE = [
    (2, 1, 0, 0, ((1, 4), (6, 9), (11, 2 ** 64 - 1))),
    (3, 2, 5, 1, ((7, 2 ** 64 - 1),)),
    (3, 2, 6, 1, ((0, 2), (4, 8))),
]


@pytest.mark.parametrize("owners", [_SINGLE_RANGE_PAGE, _MIXED_PAGE, []])
def test_pack_back_references_roundtrip(owners):
    decoded = unpack_back_references(pack_back_references(owners))
    assert decoded == [BackReference._make(owner) for owner in owners]
    assert all(type(ref) is BackReference for ref in decoded)
    assert all(type(ref.ranges) is tuple for ref in decoded)


def test_query_page_frame_decodes_to_reply_dict():
    """A v2 frame round-trips into the exact v1 reply dict shape."""
    stats = {"pages_read": 12, "queries": 1}
    page = QueryPage(_MIXED_PAGE, "bkq2.AAAA", False, stats)
    frame = encode_frame(Opcode.OK, page)
    assert _HEADER.unpack_from(frame)[1] == QUERY_PAGE_VERSION
    opcode, reply = decode_frame(frame)
    assert opcode is Opcode.OK
    assert reply == {
        "results": [BackReference._make(owner) for owner in _MIXED_PAGE],
        "resume_token": "bkq2.AAAA",
        "exhausted": False,
        "stats": stats,
    }


def test_v1_pickle_frames_from_old_peers_still_decode():
    """A peer that pickles the reply dict (pre-v2) must stay readable."""
    reply = {"results": [BackReference._make(o) for o in _SINGLE_RANGE_PAGE],
             "resume_token": None, "exhausted": True, "stats": {}}
    frame = encode_frame(Opcode.OK, reply)       # plain payload: v1 pickle
    assert _HEADER.unpack_from(frame)[1] == PROTOCOL_VERSION
    assert decode_frame(frame) == (Opcode.OK, reply)


def test_unknown_frame_version_rejected():
    body = pickle.dumps({})
    frame = _HEADER.pack(MAGIC, QUERY_PAGE_VERSION + 1, int(Opcode.OK),
                         len(body)) + body
    with pytest.raises(ProtocolError):
        decode_frame(frame)


def test_malformed_query_page_bodies_rejected():
    packed = pack_back_references(_MIXED_PAGE)
    with pytest.raises(ProtocolError):                # truncated columns
        unpack_back_references(packed[:-4])
    with pytest.raises(ProtocolError):                # short header
        unpack_back_references(b"\x01")
    corrupt = bytearray(packed)
    corrupt[0] += 1                                   # num_refs lies
    with pytest.raises(ProtocolError):
        unpack_back_references(bytes(corrupt))
    frame = encode_frame(Opcode.OK, QueryPage(_MIXED_PAGE, None, True, {}))
    with pytest.raises(ProtocolError):                # body/header length lies
        decode_frame(frame[:-3])
    body = b"\xff\xff\xff\x7f" + b"meta"              # meta length > body
    lying = _HEADER.pack(MAGIC, QUERY_PAGE_VERSION, int(Opcode.OK),
                         len(body)) + body
    with pytest.raises(ProtocolError):                # meta overruns frame
        decode_frame(lying)
