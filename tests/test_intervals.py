"""Tests for version-range helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import (
    INFINITY,
    VersionRange,
    intersect_ranges,
    merge_adjacent_ranges,
    subtract_versions,
)


class TestVersionRange:
    def test_live_range(self):
        r = VersionRange(5)
        assert r.is_live
        assert 5 in r
        assert 10**12 in r
        assert 4 not in r

    def test_bounded_range(self):
        r = VersionRange(3, 7)
        assert not r.is_live
        assert 3 in r
        assert 6 in r
        assert 7 not in r

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            VersionRange(-1, 5)
        with pytest.raises(ValueError):
            VersionRange(7, 3)

    def test_overlaps_and_intersection(self):
        a = VersionRange(0, 10)
        b = VersionRange(5, 15)
        c = VersionRange(10, 20)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: [0,10) and [10,20) do not share 10
        assert a.intersection(b) == VersionRange(5, 10)
        assert a.intersection(c) is None

    def test_as_tuple(self):
        assert VersionRange(1, 2).as_tuple() == (1, 2)


class TestIntersectRanges:
    def test_masking_drops_dead_ranges(self):
        ranges = [(0, 5), (10, 20), (30, INFINITY)]
        retained = [7, 15, 40]
        assert intersect_ranges(ranges, retained) == [(10, 20), (30, INFINITY)]

    def test_boundaries_are_half_open(self):
        # A retained version equal to `to` does not keep the range alive.
        assert intersect_ranges([(0, 5)], [5]) == []
        assert intersect_ranges([(0, 5)], [4]) == [(0, 5)]
        assert intersect_ranges([(5, 6)], [5]) == [(5, 6)]

    def test_empty_versions_drops_everything(self):
        assert intersect_ranges([(0, 10)], []) == []


class TestMergeAdjacentRanges:
    def test_merges_overlapping_and_touching(self):
        assert merge_adjacent_ranges([(5, 7), (0, 3), (3, 5)]) == [(0, 7)]

    def test_keeps_disjoint(self):
        assert merge_adjacent_ranges([(0, 2), (4, 6)]) == [(0, 2), (4, 6)]

    def test_live_range_absorbs(self):
        assert merge_adjacent_ranges([(0, 4), (4, INFINITY)]) == [(0, INFINITY)]

    def test_empty_input(self):
        assert merge_adjacent_ranges([]) == []


class TestSubtractVersions:
    def test_splits_range(self):
        assert subtract_versions([(0, 10)], [5]) == [(0, 5), (6, 10)]

    def test_removes_edges(self):
        assert subtract_versions([(5, 8)], [5, 7]) == [(6, 7)]

    def test_no_effect_outside(self):
        assert subtract_versions([(0, 3)], [10]) == [(0, 3)]


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
            lambda pair: (min(pair), max(pair) + 1)
        ),
        max_size=20,
    ),
    st.sets(st.integers(0, 120), max_size=30),
)
def test_intersect_ranges_matches_bruteforce(ranges, versions):
    """Property: a range survives masking iff some version lies inside it."""
    retained = sorted(versions)
    result = intersect_ranges(ranges, retained)
    expected = [r for r in ranges if any(r[0] <= v < r[1] for v in retained)]
    assert result == expected


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 60), st.integers(1, 15)).map(lambda p: (p[0], p[0] + p[1])),
        min_size=1,
        max_size=15,
    )
)
def test_merge_adjacent_ranges_covers_same_versions(ranges):
    """Property: merging never changes the set of covered versions."""
    merged = merge_adjacent_ranges(ranges)
    covered_before = {v for a, b in ranges for v in range(a, b)}
    covered_after = {v for a, b in merged for v in range(a, b)}
    assert covered_before == covered_after
    # Merged output is sorted and non-overlapping.
    for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
        assert b1 < a2
