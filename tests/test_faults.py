"""Unit tests for the fault-injection harness and the reaction layers.

Covers `fsim/faults.py` (the deterministic `FaultyBackend`), the
`RetryPolicy` in `core/executor.py`, checksum quarantine in the query and
compaction paths, atomic flush failure + serial fallback, and the
`scrub_backend` audit.  The randomized end-to-end scenarios live in
`tests/test_chaos.py`; these tests pin each mechanism down in isolation.
"""

from __future__ import annotations

import errno

import pytest

from repro import (
    Backlog,
    BacklogConfig,
    CorruptPageError,
    FaultPlan,
    FaultyBackend,
    FileSystem,
    FileSystemConfig,
    MemoryBackend,
    RetryPolicy,
    ScrubReport,
    SnapshotManagerAuthority,
    TornWriteError,
    TransientIOError,
    scrub_backend,
)
from repro.core.executor import PartitionExecutor
from repro.core.read_store import ReadStoreReader, ReadStoreWriter
from repro.core.records import FromRecord
from repro.core.recovery import rebuild_run_manager
from repro.core.verify import verify_backlog
from repro.fsim.blockdev import PAGE_SIZE, DiskBackend
from repro.fsim.faults import is_transient_fault


def _page(fill: int) -> bytes:
    return bytes([fill]) * PAGE_SIZE


def build_faulty_system(plan: FaultPlan, config: BacklogConfig | None = None):
    """A (FileSystem, Backlog, FaultyBackend) triple wired together."""
    backend = FaultyBackend(MemoryBackend(), plan, clock=lambda _s: None)
    backend.disarm()  # tests arm explicitly once setup is done
    backlog = Backlog(backend=backend, config=config or BacklogConfig())
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False),
                    listeners=[backlog])
    backlog.set_version_authority(SnapshotManagerAuthority(fs))
    return fs, backlog, backend


def _sample_records(n: int = 64):
    return [FromRecord(block, 7, block, 0, 3) for block in range(n)]


def _write_run(backend, name: str = "p000000/from/L0_0000000001",
               format_version: int = 2) -> ReadStoreReader:
    writer = ReadStoreWriter(backend, name, "from",
                             format_version=format_version)
    return writer.build(_sample_records())


# --------------------------------------------------------------- FaultyBackend


class TestFaultyBackend:
    def test_deterministic_schedule(self):
        def run_once():
            plan = FaultPlan(seed=99, write_error_rate=0.3, torn_write_rate=0.1,
                             bit_flip_rate=0.1, latency_spike_rate=0.2,
                             latency_spike_s=0.5)
            backend = FaultyBackend(MemoryBackend(), plan, clock=lambda _s: None)
            page_file = backend.create("f")
            for i in range(60):
                try:
                    page_file.append_page(_page(i % 251))
                except (TransientIOError, TornWriteError):
                    pass
            return backend.fault_stats.events

        assert run_once() == run_once()
        assert run_once()  # the rates above must actually fire

    def test_transient_write_heals_after_consecutive_failures(self):
        backend = FaultyBackend(MemoryBackend(), FaultPlan(transient_attempts=3))
        page_file = backend.create("f")
        backend._healing[("write", "f", 0)] = 2
        for _ in range(2):
            with pytest.raises(TransientIOError):
                page_file.append_page(_page(1))
        assert page_file.append_page(_page(1)) == 0  # healed
        assert backend.fault_stats.transient_write_errors == 2

    def test_torn_write_persists_prefix_then_fails(self):
        backend = FaultyBackend(MemoryBackend(), FaultPlan(seed=5, torn_write_rate=1.0))
        page_file = backend.create("f")
        data = _page(0xAB)
        with pytest.raises(TornWriteError):
            page_file.append_page(data)
        backend.disarm()
        stored = backend.open("f").read_page(0)
        prefix = len(stored.rstrip(b"\x00"))
        assert 0 < prefix < PAGE_SIZE
        assert stored[:prefix] == data[:prefix]
        assert stored[prefix:] == b"\x00" * (PAGE_SIZE - prefix)
        assert backend.fault_stats.torn_writes == 1

    def test_enospc_fires_after_budget_and_clears_on_free_space(self):
        backend = FaultyBackend(MemoryBackend(), FaultPlan(enospc_after_pages=2))
        page_file = backend.create("f")
        page_file.append_page(_page(1))
        page_file.append_page(_page(2))
        with pytest.raises(OSError) as excinfo:
            page_file.append_page(_page(3))
        assert excinfo.value.errno == errno.ENOSPC
        assert not is_transient_fault(excinfo.value)
        backend.free_space()
        assert page_file.append_page(_page(3)) == 2
        assert backend.fault_stats.enospc_errors == 1

    def test_bit_flip_on_write_is_silent_single_bit(self):
        backend = FaultyBackend(MemoryBackend(), FaultPlan(seed=3, bit_flip_rate=1.0))
        page_file = backend.create("f")
        data = _page(0x55)
        page_file.append_page(data)  # no exception: the corruption is silent
        backend.disarm()
        stored = backend.open("f").read_page(0)
        assert stored != data
        differing = sum(bin(a ^ b).count("1") for a, b in zip(stored, data))
        assert differing == 1

    def test_latency_spike_uses_injected_clock(self):
        sleeps = []
        backend = FaultyBackend(
            MemoryBackend(),
            FaultPlan(latency_spike_rate=1.0, latency_spike_s=0.25),
            clock=sleeps.append)
        page_file = backend.create("f")
        page_file.append_page(_page(1))
        page_file.read_page(0)
        assert sleeps == [0.25, 0.25]
        assert backend.fault_stats.latency_spikes == 2

    def test_disarm_passes_everything_through(self):
        backend = FaultyBackend(
            MemoryBackend(),
            FaultPlan(write_error_rate=1.0, read_error_rate=1.0))
        backend.disarm()
        page_file = backend.create("f")
        page_file.append_page(_page(9))
        assert page_file.read_page(0) == _page(9)
        assert backend.fault_stats.total == 0

    @pytest.mark.parametrize("make_backend", [
        lambda tmp: MemoryBackend(),
        lambda tmp: DiskBackend(str(tmp)),
    ], ids=["memory", "disk"])
    def test_corrupt_page_flips_one_bit_at_rest(self, tmp_path, make_backend):
        backend = FaultyBackend(make_backend(tmp_path), FaultPlan())
        page_file = backend.create("f")
        data = _page(0xF0)
        page_file.append_page(data)
        backend.corrupt_page("f", 0, bit=13)
        stored = backend.open("f").read_page(0)
        assert stored[1] == data[1] ^ (1 << 5)  # bit 13 = byte 1, bit 5
        assert stored[:1] == data[:1] and stored[2:] == data[2:]
        assert backend.fault_stats.bit_flips == 1


def test_is_transient_fault_classification():
    assert is_transient_fault(TransientIOError(errno.EIO, "x"))
    assert is_transient_fault(OSError(errno.EINTR, "x"))
    assert is_transient_fault(OSError(errno.EAGAIN, "x"))
    assert is_transient_fault(OSError(errno.EIO, "x"))
    assert not is_transient_fault(TornWriteError(errno.EIO, "x"))
    assert not is_transient_fault(OSError(errno.ENOSPC, "x"))
    assert not is_transient_fault(RuntimeError("crash"))
    assert not is_transient_fault(ValueError("corrupt"))


# ----------------------------------------------------------------- RetryPolicy


class _Flaky:
    """A job that fails ``failures`` times with ``error`` then succeeds."""

    def __init__(self, failures: int, error: BaseException):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "done"


class TestRetryPolicy:
    def test_absorbs_transient_failures_with_growing_backoff(self):
        sleeps, retried = [], []
        policy = RetryPolicy(attempts=4, backoff_s=0.01, multiplier=2.0,
                             sleep=sleeps.append, on_retry=retried.append)
        job = _Flaky(2, TransientIOError(errno.EIO, "flaky"))
        assert policy.run(job) == "done"
        assert job.calls == 3
        assert sleeps == [0.01, 0.02]
        assert len(retried) == 2

    def test_exhausted_attempts_reraise(self):
        policy = RetryPolicy(attempts=2, backoff_s=0.0)
        job = _Flaky(5, TransientIOError(errno.EIO, "flaky"))
        with pytest.raises(TransientIOError):
            policy.run(job)
        assert job.calls == 2

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(attempts=5, backoff_s=0.0)
        for error in (TornWriteError(errno.EIO, "torn"),
                      OSError(errno.ENOSPC, "full"),
                      RuntimeError("crash")):
            job = _Flaky(1, error)
            with pytest.raises(type(error)):
                policy.run(job)
            assert job.calls == 1

    def test_zero_backoff_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(attempts=3, backoff_s=0.0, sleep=sleeps.append)
        assert policy.run(_Flaky(2, TransientIOError(errno.EIO, "x"))) == "done"
        assert sleeps == []

    def test_executor_applies_policy_per_job(self):
        retried = []
        executor = PartitionExecutor(
            workers=1,
            retry=RetryPolicy(attempts=3, backoff_s=0.0, on_retry=retried.append))
        jobs = [_Flaky(1, TransientIOError(errno.EIO, "a")), _Flaky(0, None),
                _Flaky(2, TransientIOError(errno.EIO, "b"))]
        assert executor.map(jobs) == ["done", "done", "done"]
        assert len(retried) == 3


# ------------------------------------------------- flush retries and fallback


def _run_small_workload(fs, blocks: int = 24):
    inode = fs.create_file(num_blocks=blocks)
    fs.take_consistency_point()
    return inode


def test_flush_absorbs_transient_faults_and_counts_retries():
    plan = FaultPlan(seed=2, write_error_rate=0.15)
    config = BacklogConfig(io_retries=4, io_retry_backoff_s=0.0)
    fs, backlog, backend = build_faulty_system(plan, config)
    fs.create_file(num_blocks=256)
    backend.arm()
    fs.take_consistency_point()
    backend.disarm()
    assert backend.fault_stats.transient_write_errors > 0
    assert backlog.stats.flush_pool.retries == backend.fault_stats.transient_write_errors
    report = verify_backlog(fs, backlog)
    assert report.ok, report.summary()


def test_enospc_fails_checkpoint_atomically_then_retry_succeeds():
    plan = FaultPlan(enospc_after_pages=2)
    fs, backlog, backend = build_faulty_system(plan)
    fs.create_file(num_blocks=48)
    pending_before = backlog.pending_updates()
    assert pending_before > 0
    registered_before = backlog.run_manager.run_count()
    backend.arm()
    with pytest.raises(OSError) as excinfo:
        fs.take_consistency_point()
    assert excinfo.value.errno == errno.ENOSPC
    # Atomic failure: nothing registered, no partial files, memory intact.
    assert backlog.pending_updates() == pending_before
    assert backlog.run_manager.run_count() == registered_before
    registered = {run.name for p in backlog.run_manager.partitions()
                  for run in backlog.run_manager.runs_for(p)}
    from repro.core.lsm import parse_run_name
    leftovers = [name for name in backend.list_files()
                 if parse_run_name(name) is not None and name not in registered]
    assert leftovers == []
    # The operator frees space; retrying the same CP completes it.
    backend.free_space()
    fs.take_consistency_point()
    backend.disarm()
    assert backlog.pending_updates() == 0
    report = verify_backlog(fs, backlog)
    assert report.ok, report.summary()


class _FirstAppendsFail(MemoryBackend):
    """Once activated, fails ``budget`` page appends with a transient error."""

    def __init__(self, budget: int):
        super().__init__()
        self.budget = budget
        self.active = False

    def create(self, name):
        page_file = super().create(name)
        backend = self

        original_append = page_file._append

        def flaky_append(data):
            if backend.active and backend.budget > 0:
                backend.budget -= 1
                raise TransientIOError(errno.EIO, "injected append failure")
            return original_append(data)

        page_file._append = flaky_append
        return page_file


def test_parallel_flush_falls_back_to_serial():
    backend = _FirstAppendsFail(budget=1)
    config = BacklogConfig(flush_workers=2, maintenance_workers=1, io_retries=0)
    backlog = Backlog(backend=backend, config=config)
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False),
                    listeners=[backlog])
    backlog.set_version_authority(SnapshotManagerAuthority(fs))
    # An overwrite of a block flushed at an earlier CP populates both write
    # stores, so the second flush has two jobs (one per table) to fan out.
    inode = fs.create_file(num_blocks=4)
    fs.take_consistency_point()
    fs.write(inode, 0)
    backend.active = True
    fs.take_consistency_point()
    backend.active = False

    assert backlog.stats.flush_pool.serial_fallbacks == 1
    assert backlog.pending_updates() == 0
    report = verify_backlog(fs, backlog)
    assert report.ok, report.summary()


# ---------------------------------------------------- checksums and quarantine


def test_query_quarantines_corrupt_run_and_degrades():
    fs, backlog, backend = build_faulty_system(FaultPlan())
    inode = fs.create_file(num_blocks=16)
    fs.take_consistency_point()
    blocks = [fs.volume().inodes[inode].physical_block(i) for i in range(16)]
    baseline = {b: backlog.query(b) for b in blocks}

    victim = backlog.run_manager.runs_for(backlog.run_manager.partitions()[0],
                                          "from")[0]
    backend.corrupt_page(victim.name, 0, bit=7)  # page 0 is a leaf page
    backlog.clear_caches()

    for b in blocks:
        degraded = backlog.query(b)
        # Degraded-but-correct: only owners the full database knew about,
        # never invented ones (their ranges may shrink with the lost run).
        baseline_identities = {ref[:4] for ref in baseline[b]}
        assert {ref[:4] for ref in degraded} <= baseline_identities
        # And the degraded answer is stable on re-query.
        assert backlog.query(b) == degraded
    assert backlog.stats.query.corrupt_pages_detected >= 1
    assert backlog.stats.query.runs_quarantined == 1
    assert victim.name in backlog.run_manager.quarantined
    assert backend.exists(victim.name)  # quarantine keeps the file on disk


def test_verify_checksums_off_skips_decode_verification():
    fs, backlog, backend = build_faulty_system(
        FaultPlan(), BacklogConfig(verify_checksums=False))
    fs.create_file(num_blocks=8)
    fs.take_consistency_point()
    victim = backlog.run_manager.runs_for(backlog.run_manager.partitions()[0],
                                          "from")[0]
    # Flip a bit inside record data (past the 8-byte page header) so the
    # page still decodes structurally -- the flag skips CRC verification.
    backend.corrupt_page(victim.name, 0, bit=240)
    backlog.clear_caches()
    # No CorruptPageError surfaces; the flag trades integrity for speed.
    backlog.query_range(0, 4096)
    assert backlog.stats.query.runs_quarantined == 0


def test_compaction_quarantines_corrupt_input_run():
    fs, backlog, backend = build_faulty_system(FaultPlan())
    inode = fs.create_file(num_blocks=16)
    fs.take_consistency_point()
    fs.write(inode, 0)
    fs.take_consistency_point()

    partition = backlog.run_manager.partitions()[0]
    victim = backlog.run_manager.runs_for(partition, "from")[0]
    backend.corrupt_page(victim.name, 0, bit=21)
    backlog.clear_caches()

    backlog.maintain()  # must not raise: the damaged run is quarantined
    assert victim.name in backlog.run_manager.quarantined
    report = scrub_backend(backlog.backend)
    # The quarantined file is still on disk and still corrupt...
    assert victim.name in report.runs_corrupt
    # ...but every *registered* run is clean.
    registered = {run.name for p in backlog.run_manager.partitions()
                  for run in backlog.run_manager.runs_for(p)}
    assert not registered & set(report.runs_corrupt)


# ------------------------------------------------------------------ scrubbing


def test_scrub_reports_and_reclaims():
    backend = MemoryBackend()
    ok = _write_run(backend, "p000000/from/L0_0000000001")
    legacy = _write_run(backend, "p000000/from/L0_0000000002", format_version=1)
    bad = _write_run(backend, "p000000/from/L0_0000000003")
    faulty = FaultyBackend(backend, FaultPlan())
    faulty.corrupt_page(bad.name, 0, bit=40)
    # An unopenable leftover: a run-named file with one garbage page.
    backend.create("p000000/to/L0_0000000004").append_page(b"garbage")

    report = scrub_backend(backend)
    assert isinstance(report, ScrubReport)
    assert not report.clean
    assert report.runs_ok == [ok.name]
    assert report.runs_legacy == [legacy.name]
    assert list(report.runs_corrupt) == [bad.name]
    page_index, kind = report.runs_corrupt[bad.name][0]
    assert (page_index, kind) == (0, "leaf")
    assert report.files_invalid == ["p000000/to/L0_0000000004"]
    assert "CORRUPT" in report.summary() and "INVALID" in report.summary()

    reclaimed = scrub_backend(backend, reclaim=True)
    assert sorted(reclaimed.files_reclaimed) == sorted(
        [bad.name, "p000000/to/L0_0000000004"])
    assert not backend.exists(bad.name)
    after = scrub_backend(backend)
    assert after.clean
    assert after.runs_ok == [ok.name] and after.runs_legacy == [legacy.name]


def test_scrub_detects_header_corruption():
    backend = MemoryBackend()
    run = _write_run(backend)
    faulty = FaultyBackend(backend, FaultPlan())
    header_page = backend.open(run.name).num_pages - 1
    # Flip a header *field* bit (past the 8-byte magic) so the file is still
    # recognised as a v2 run whose header CRC then fails.
    faulty.corrupt_page(run.name, header_page, bit=12 * 8)
    report = scrub_backend(backend)
    assert report.runs_corrupt[run.name][0][1] == "header"
    # And the recovery scan treats it as invalid rather than crashing.
    manager = rebuild_run_manager(backend)
    assert manager.run_count() == 0


# ------------------------------------------------------------- legacy format


def test_v1_runs_stay_readable_and_rebuildable():
    backend = MemoryBackend()
    v1 = _write_run(backend, "p000000/from/L0_0000000001", format_version=1)
    v2 = _write_run(backend, "p000000/from/L0_0000000002", format_version=2)
    assert v1.format_version == 1 and v2.format_version == 2
    assert list(v1.iter_all()) == list(v2.iter_all()) == _sample_records()
    # verify_checksums=True over a v1 file is a no-op, not an error.
    reread = ReadStoreReader(backend, v1.name, verify_checksums=True)
    assert list(reread.iter_all()) == _sample_records()
    assert reread.verify_checksums() == []
    manager = rebuild_run_manager(backend)
    assert manager.run_count() == 2
