"""Tests for the C-store-style deletion vector."""

from __future__ import annotations

import pytest

from repro.core.deletion_vector import DeletionVector
from repro.core.records import CombinedRecord, FromRecord, INFINITY, ReferenceKey, ToRecord


class TestSuppression:
    def test_empty_vector_suppresses_nothing(self):
        vector = DeletionVector()
        assert not vector
        assert len(vector) == 0
        assert not vector.is_suppressed(FromRecord(1, 1, 0, 0, 1))

    def test_suppress_hides_all_record_types(self):
        vector = DeletionVector()
        vector.suppress(block=10, inode=2, offset=3, line=0)
        assert vector.is_suppressed(FromRecord(10, 2, 3, 0, 1))
        assert vector.is_suppressed(ToRecord(10, 2, 3, 0, 9))
        assert vector.is_suppressed(CombinedRecord(10, 2, 3, 0, 1, 9))
        assert not vector.is_suppressed(FromRecord(10, 2, 4, 0, 1))
        assert not vector.is_suppressed(FromRecord(11, 2, 3, 0, 1))

    def test_suppress_block_batch(self):
        vector = DeletionVector()
        keys = [ReferenceKey(7, 1, 0, 0), ReferenceKey(7, 2, 5, 1)]
        vector.suppress_block(7, keys)
        assert len(vector) == 2
        assert vector.touches_block(7)

    def test_suppress_block_rejects_foreign_keys(self):
        vector = DeletionVector()
        with pytest.raises(ValueError):
            vector.suppress_block(7, [ReferenceKey(8, 1, 0, 0)])

    def test_filter(self):
        vector = DeletionVector()
        vector.suppress(5, 1, 0, 0)
        records = [FromRecord(5, 1, 0, 0, 1), FromRecord(6, 1, 0, 0, 1)]
        assert list(vector.filter(records)) == [FromRecord(6, 1, 0, 0, 1)]

    def test_clear_and_keys(self):
        vector = DeletionVector()
        vector.suppress(5, 1, 0, 0)
        assert vector.keys() == {ReferenceKey(5, 1, 0, 0)}
        assert vector.memory_estimate_bytes() > 0
        vector.clear()
        assert not vector
        assert not vector.touches_block(5)
