"""Tests for the inode model."""

from __future__ import annotations

import pytest

from repro.fsim.inode import Inode, POINTERS_PER_INDIRECT_BLOCK


class TestBlockMapping:
    def test_empty_inode(self):
        inode = Inode(number=2)
        assert inode.num_blocks == 0
        assert inode.size_blocks == 0
        assert inode.physical_block(0) is None
        assert inode.meta_blocks() == 1

    def test_set_and_get(self):
        inode = Inode(number=2)
        assert inode.set_block(0, 100) is None
        assert inode.set_block(0, 200) == 100  # returns the overwritten block
        assert inode.physical_block(0) == 200
        assert inode.num_blocks == 1

    def test_negative_offset_rejected(self):
        inode = Inode(number=2)
        with pytest.raises(ValueError):
            inode.set_block(-1, 5)

    def test_sparse_file_sizes(self):
        inode = Inode(number=2)
        inode.set_block(0, 10)
        inode.set_block(9, 11)
        assert inode.num_blocks == 2
        assert inode.size_blocks == 10  # one past the highest offset

    def test_offsets_of_shared_block(self):
        inode = Inode(number=2)
        inode.set_block(0, 7)
        inode.set_block(3, 7)
        inode.set_block(1, 9)
        assert inode.offsets_of(7) == [0, 3]
        assert inode.offsets_of(9) == [1]
        assert inode.offsets_of(42) == []

    def test_iter_blocks_sorted(self):
        inode = Inode(number=2)
        for offset in (5, 1, 3):
            inode.set_block(offset, offset * 10)
        assert list(inode.iter_blocks()) == [(1, 10), (3, 30), (5, 50)]


class TestTruncate:
    def test_truncate_removes_tail(self):
        inode = Inode(number=2)
        for offset in range(6):
            inode.set_block(offset, 100 + offset)
        removed = inode.truncate(2)
        assert removed == [(2, 102), (3, 103), (4, 104), (5, 105)]
        assert inode.size_blocks == 2

    def test_truncate_to_zero_and_no_op(self):
        inode = Inode(number=2)
        inode.set_block(0, 1)
        assert inode.truncate(5) == []
        assert inode.truncate(0) == [(0, 1)]
        assert inode.num_blocks == 0

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            Inode(number=2).truncate(-1)

    def test_clear_block(self):
        inode = Inode(number=2)
        inode.set_block(4, 44)
        assert inode.clear_block(4) == 44
        assert inode.clear_block(4) is None


class TestMetaBlocksAndCopy:
    def test_meta_blocks_scale_with_size(self):
        inode = Inode(number=2)
        for offset in range(POINTERS_PER_INDIRECT_BLOCK + 1):
            inode.set_block(offset, offset)
        assert inode.meta_blocks() == 1 + 2  # inode + two indirect blocks

    def test_copy_is_independent(self):
        inode = Inode(number=2)
        inode.set_block(0, 1)
        clone = inode.copy()
        clone.set_block(0, 99)
        assert inode.physical_block(0) == 1
        assert clone.physical_block(0) == 99
        assert clone.number == 2
