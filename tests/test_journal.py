"""Tests for the logical operation journal."""

from __future__ import annotations

import pytest

from repro.fsim.journal import Journal, JournalRecord


class TestJournalRecord:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            JournalRecord("bogus", 1, 2, 3, 0, 1)

    def test_fields(self):
        record = JournalRecord("add", 10, 2, 0, 0, 4)
        assert record.block == 10 and record.cp == 4


class TestJournal:
    def test_log_and_len(self):
        journal = Journal()
        journal.log_add(1, 2, 0, 0, 1)
        journal.log_remove(1, 2, 0, 0, 1)
        assert len(journal) == 2
        kinds = [record.kind for record in journal]
        assert kinds == ["add", "remove"]

    def test_truncate(self):
        journal = Journal()
        journal.log_add(1, 2, 0, 0, 1)
        assert journal.truncate() == 1
        assert len(journal) == 0
        assert journal.records() == ()

    def test_replay_order_and_callbacks(self):
        journal = Journal()
        journal.log_add(1, 2, 0, 0, 1)
        journal.log_add(2, 2, 1, 0, 1)
        journal.log_remove(1, 2, 0, 0, 1)
        events = []
        count = journal.replay(
            on_add=lambda *args: events.append(("add",) + args),
            on_remove=lambda *args: events.append(("remove",) + args),
        )
        assert count == 3
        assert events == [
            ("add", 1, 2, 0, 0, 1),
            ("add", 2, 2, 1, 0, 1),
            ("remove", 1, 2, 0, 0, 1),
        ]

    def test_replay_after_truncate_is_empty(self):
        journal = Journal()
        journal.log_add(1, 2, 0, 0, 1)
        journal.truncate()
        assert journal.replay(lambda *a: None, lambda *a: None) == 0
