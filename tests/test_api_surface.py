"""The public API surface stays documented and behaviourally stable.

Wires ``tools/check_api.py`` into the tier-1 suite: ``repro.__all__`` must
match the "Public API surface" section of docs/ARCHITECTURE.md in both
directions, every exported name must be importable, and the four legacy
query methods must keep answering identically to their ``Backlog.select``
shims (the same checks CI's docs job runs from the command line).
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_api  # noqa: E402  (needs the tools/ path above)


def test_exported_names_are_documented():
    assert check_api.check_surface() == []


def test_legacy_methods_match_select_shims():
    assert check_api.check_legacy_behaviour() == []


def test_documented_names_parser_sees_the_section():
    names = check_api.documented_names()
    assert {"Backlog", "QuerySpec", "QueryResult", "SnapshotManagerAuthority"} <= names


def test_checker_cli_passes_on_the_repo():
    """The exact command CI runs must succeed from a clean environment."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_api.py")],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert "api ok" in result.stdout


def test_checker_flags_undocumented_export(tmp_path):
    """Surface drift in either direction must produce a problem line."""
    doc = tmp_path / "ARCHITECTURE.md"
    doc.write_text(
        "# x\n\n## Public API surface\n\n- `Backlog` — the manager\n"
        "- `NotARealName` — ghost\n\n## next\n",
        encoding="utf-8",
    )
    names = check_api.documented_names(str(doc))
    assert names == {"Backlog", "NotARealName"}

    import repro

    missing_doc = {n for n in repro.__all__ if not n.startswith("_")} - names
    assert missing_doc, "the fake doc should under-document the real surface"
