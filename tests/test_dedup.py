"""Tests for the deduplication emulation."""

from __future__ import annotations

import pytest

from repro.fsim.dedup import DedupConfig, DedupEngine


class TestConfigValidation:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DedupConfig(duplicate_fraction=1.5)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            DedupConfig(sharing_decay=0.0)
        with pytest.raises(ValueError):
            DedupConfig(sharing_decay=1.0)

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            DedupConfig(pool_size=0)


class TestBehaviour:
    def test_no_duplicates_from_empty_pool(self):
        engine = DedupEngine(DedupConfig(duplicate_fraction=1.0))
        assert engine.maybe_duplicate() is None

    def test_zero_fraction_never_duplicates(self):
        engine = DedupEngine(DedupConfig(duplicate_fraction=0.0))
        for block in range(100):
            engine.observe_new_block(block)
        assert all(engine.maybe_duplicate() is None for _ in range(100))

    def test_duplicates_come_from_observed_blocks(self):
        engine = DedupEngine(DedupConfig(duplicate_fraction=1.0), seed=3)
        observed = set(range(50))
        for block in observed:
            engine.observe_new_block(block)
        for _ in range(30):
            duplicate = engine.maybe_duplicate()
            assert duplicate in observed

    def test_forget_block(self):
        engine = DedupEngine(DedupConfig(duplicate_fraction=1.0), seed=3)
        engine.observe_new_block(7)
        engine.forget_block(7)
        assert engine.maybe_duplicate() is None
        engine.forget_block(12345)  # unknown blocks are ignored

    def test_pool_is_bounded(self):
        config = DedupConfig(pool_size=10)
        engine = DedupEngine(config)
        for block in range(100):
            engine.observe_new_block(block)
        assert engine._pool_population <= config.pool_size

    def test_duplicate_rate_close_to_configured(self):
        """Around 10 % of writes should be served by dedup (§6.1)."""
        engine = DedupEngine(DedupConfig(duplicate_fraction=0.10), seed=5)
        duplicates = 0
        for block in range(20_000):
            if engine.maybe_duplicate() is not None:
                duplicates += 1
            else:
                engine.observe_new_block(block)
        rate = duplicates / 20_000
        assert 0.06 < rate < 0.14
        assert abs(engine.duplicate_rate - rate) < 0.01

    def test_sharing_distribution_matches_paper(self):
        """Most shared blocks should have low extra-reference counts.

        The paper reports ~75-78 % of blocks at refcount 1, ~18 % at 2 and
        ~5 % at 3; here we check the emulation's serving pattern is strongly
        skewed the same way (each additional sharing level is rarer).
        """
        engine = DedupEngine(DedupConfig(duplicate_fraction=0.10), seed=5)
        share_counts = {}
        for block in range(50_000):
            duplicate = engine.maybe_duplicate()
            if duplicate is not None:
                share_counts[duplicate] = share_counts.get(duplicate, 0) + 1
            else:
                engine.observe_new_block(block)
        histogram = {}
        for count in share_counts.values():
            histogram[count] = histogram.get(count, 0) + 1
        assert histogram.get(1, 0) > histogram.get(2, 0) > histogram.get(3, 0)
