"""The HTTP query service: endpoints, concurrent sessions, graceful drain."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro import Backlog, QueryService
from repro.cli import build_parser, main
from repro.server.service import _build_spec


def _serve_backlog(blocks=256):
    backlog = Backlog()
    for i in range(blocks):
        backlog.add_reference(block=i, inode=1 + (i % 5), offset=i, line=0)
    backlog.checkpoint()
    return backlog


def _request(service, method, path, payload=None, conn=None):
    own = conn is None
    if own:
        conn = http.client.HTTPConnection(*service.address, timeout=10)
    body = json.dumps(payload) if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body, headers)
    response = conn.getresponse()
    data = json.loads(response.read())
    if own:
        conn.close()
    return response.status, data


# ------------------------------------------------------------- spec building


class TestBuildSpec:
    def test_full_surface(self):
        spec = _build_spec({
            "first_block": 5, "num_blocks": 10, "live_only": True,
            "lines": [0, 1], "inodes": [3], "limit": 7,
        })
        assert (spec.first_block, spec.num_blocks) == (5, 10)
        assert spec.live_only and spec.limit == 7
        assert spec.lines == frozenset({0, 1})
        assert spec.inodes == frozenset({3})

    def test_at_version_shorthand(self):
        assert _build_spec({"at_version": 4}).version_window == (4, 5)

    def test_rejections(self):
        for payload in (
            [1, 2],                                     # not an object
            {"first_blok": 0},                          # typo field
            {"at_version": 1, "version_window": [0, 2]},  # both forms
            {"version_window": [3]},                    # not a pair
            {"first_block": "zero"},                    # wrong type
            {"num_blocks": 0},                          # invalid value
            {"resume_token": "bkq1.!!not-base64!!"},    # garbage token
            {"resume_token": "nope"},                   # foreign token
        ):
            with pytest.raises(ValueError):
                _build_spec(payload)


# ----------------------------------------------------------------- endpoints


class TestEndpoints:
    def test_query_pagination_over_keep_alive(self):
        backlog = _serve_backlog()
        with QueryService(backlog) as service:
            conn = http.client.HTTPConnection(*service.address, timeout=10)
            seen, token, pages = [], None, 0
            while True:
                payload = {"first_block": 0, "num_blocks": 256, "limit": 100}
                if token:
                    payload["resume_token"] = token
                status, page = _request(service, "POST", "/query",
                                        payload, conn=conn)
                assert status == 200
                seen.extend((r["block"], r["inode"], r["offset"])
                            for r in page["results"])
                pages += 1
                if page["exhausted"]:
                    assert page["resume_token"] is None
                    break
                token = page["resume_token"]
            conn.close()
            assert pages == 3
            assert seen == [(i, 1 + (i % 5), i) for i in range(256)]

    def test_query_filters_and_result_shape(self):
        backlog = _serve_backlog()
        with QueryService(backlog) as service:
            status, page = _request(service, "POST", "/query", {
                "first_block": 0, "num_blocks": 256,
                "inodes": [3], "live_only": True,
            })
            assert status == 200
            assert page["count"] == len(page["results"]) > 0
            for owner in page["results"]:
                assert owner["inode"] == 3
                assert owner["live"] is True
                assert owner["ranges"] and isinstance(owner["ranges"][0], list)

    def test_bad_requests_are_400_with_message(self):
        backlog = _serve_backlog()
        with QueryService(backlog) as service:
            cases = [
                ("POST", "/query", {"first_blok": 0}),
                ("POST", "/query", {"resume_token": "bkq1.!!invalid!!"}),
                ("POST", "/query", {"num_blocks": -1}),
            ]
            for method, path, payload in cases:
                status, body = _request(service, method, path, payload)
                assert status == 400
                assert "error" in body
            assert service.requests_rejected == len(cases)
            assert service.requests_served == 0

    def test_unknown_paths_are_404(self):
        backlog = _serve_backlog()
        with QueryService(backlog) as service:
            assert _request(service, "GET", "/nope")[0] == 404
            assert _request(service, "POST", "/nope", {})[0] == 404

    def test_health_and_stats(self):
        backlog = _serve_backlog()
        with QueryService(backlog) as service:
            status, health = _request(service, "GET", "/health")
            assert status == 200
            assert health == {"status": "ok", "pinned_snapshots": 0}
            _request(service, "POST", "/query", {"first_block": 1})
            status, stats = _request(service, "GET", "/stats")
            assert status == 200
            assert stats["requests_served"] == 1
            assert stats["requests_rejected"] == 0
            assert stats["queries"] >= 1
            assert stats["database_size_bytes"] > 0
            assert stats["quarantined_bytes"] == 0
            assert stats["deferred_bytes"] == 0
            assert stats["draining"] is False


# --------------------------------------------------------------- concurrency


class TestConcurrentSessions:
    def test_many_sessions_paginate_while_host_churns(self):
        backlog = _serve_backlog()
        errors = []

        def session(worker):
            try:
                conn = http.client.HTTPConnection(*service.address, timeout=30)
                token, seen = None, []
                while True:
                    payload = {"first_block": 0, "num_blocks": 256,
                               "limit": 40 + worker}
                    if token:
                        payload["resume_token"] = token
                    status, page = _request(service, "POST", "/query",
                                            payload, conn=conn)
                    assert status == 200, page
                    seen.extend((r["block"], r["inode"], r["offset"])
                                for r in page["results"])
                    if page["exhausted"]:
                        break
                    token = page["resume_token"]
                conn.close()
                assert seen == [(i, 1 + (i % 5), i) for i in range(256)]
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        with QueryService(backlog) as service:
            threads = [threading.Thread(target=session, args=(worker,))
                       for worker in range(6)]
            for thread in threads:
                thread.start()
            # The host keeps writing, checkpointing and compacting while
            # the sessions stream -- churn confined to high blocks.
            for round_number in range(12):
                for i in range(16):
                    backlog.add_reference(block=(1 << 22) + i,
                                          inode=9999, offset=round_number)
                backlog.checkpoint()
                if round_number % 4 == 3:
                    backlog.maintain()
            for thread in threads:
                thread.join()
        assert not errors, errors
        assert backlog.catalogue.pinned_snapshots() == 0

    def test_stop_drains_and_is_idempotent(self):
        backlog = _serve_backlog()
        service = QueryService(backlog).start()
        with pytest.raises(RuntimeError):
            service.start()                  # already running
        status, _ = _request(service, "POST", "/query", {"first_block": 0})
        assert status == 200
        service.stop()
        assert service.inflight == 0
        assert service.draining is True
        service.stop()                       # idempotent
        # The socket is really closed: a new connection must fail.
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(*service.address, timeout=1)
            conn.request("GET", "/health")
            conn.getresponse()


# ----------------------------------------------------------------- serve CLI


class TestServeCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8642)
        assert args.churn is False and args.duration is None
        assert (args.cps, args.ops_per_cp) == (10, 500)

    def test_serve_runs_for_duration_and_drains(self, capsys):
        exit_code = main(["serve", "--port", "0", "--cps", "2",
                          "--ops-per-cp", "50", "--churn",
                          "--duration", "0.3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "serving on http://127.0.0.1:" in output
        assert "drained (" in output
