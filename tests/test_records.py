"""Tests for back-reference record types and their encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import (
    BackReference,
    COMBINED_RECORD_SIZE,
    CombinedRecord,
    FROM_RECORD_SIZE,
    FromRecord,
    INFINITY,
    ReferenceKey,
    TO_RECORD_SIZE,
    ToRecord,
)


class TestRecordSizes:
    def test_paper_record_sizes(self):
        """The paper's btrfs port uses 40-byte From/To and 48-byte Combined tuples."""
        assert FROM_RECORD_SIZE == 40
        assert TO_RECORD_SIZE == 40
        assert COMBINED_RECORD_SIZE == 48

    def test_pack_lengths_match_constants(self):
        assert len(FromRecord(1, 2, 3, 4, 5).pack()) == FROM_RECORD_SIZE
        assert len(ToRecord(1, 2, 3, 4, 5).pack()) == TO_RECORD_SIZE
        assert len(CombinedRecord(1, 2, 3, 4, 5, 6).pack()) == COMBINED_RECORD_SIZE


class TestRoundTrip:
    def test_from_roundtrip(self):
        record = FromRecord(block=100, inode=2, offset=0, line=0, from_cp=4)
        assert FromRecord.unpack(record.pack()) == record

    def test_to_roundtrip(self):
        record = ToRecord(block=101, inode=2, offset=1, line=0, to_cp=7)
        assert ToRecord.unpack(record.pack()) == record

    def test_combined_roundtrip_with_infinity(self):
        record = CombinedRecord(100, 2, 0, 0, 4, INFINITY)
        restored = CombinedRecord.unpack(record.pack())
        assert restored == record
        assert restored.is_live


class TestKeysAndOrdering:
    def test_key_shared_across_tables(self):
        key = ReferenceKey(100, 2, 0, 0)
        assert FromRecord(100, 2, 0, 0, 4).key == key
        assert ToRecord(100, 2, 0, 0, 7).key == key
        assert CombinedRecord(100, 2, 0, 0, 4, 7).key == key

    def test_sort_key_orders_by_block_first(self):
        records = [
            FromRecord(200, 1, 0, 0, 1),
            FromRecord(100, 9, 9, 9, 9),
            FromRecord(100, 1, 0, 0, 2),
            FromRecord(100, 1, 0, 0, 1),
        ]
        ordered = sorted(records, key=FromRecord.sort_key)
        assert [r.block for r in ordered] == [100, 100, 100, 200]
        assert ordered[0].from_cp == 1

    def test_combined_flags(self):
        live = CombinedRecord(1, 1, 0, 0, 5, INFINITY)
        override = CombinedRecord(1, 1, 0, 1, 0, 9)
        closed = CombinedRecord(1, 1, 0, 0, 5, 9)
        assert live.is_live and not live.is_override
        assert override.is_override and not override.is_live
        assert not closed.is_live and not closed.is_override

    def test_covers_version(self):
        record = CombinedRecord(1, 1, 0, 0, 4, 7)
        assert record.covers_version(4)
        assert record.covers_version(6)
        assert not record.covers_version(7)
        assert not record.covers_version(3)


class TestBackReference:
    def test_is_live_and_covers(self):
        ref = BackReference(block=5, inode=3, offset=1, line=0, ranges=((2, 6), (10, INFINITY)))
        assert ref.is_live
        assert ref.covers_version(2)
        assert ref.covers_version(11)
        assert not ref.covers_version(7)

    def test_not_live(self):
        ref = BackReference(5, 3, 1, 0, ((2, 6),))
        assert not ref.is_live


_field = st.integers(min_value=0, max_value=2**63)


@settings(max_examples=100, deadline=None)
@given(_field, _field, _field, _field, _field, _field)
def test_combined_pack_unpack_roundtrip(block, inode, offset, line, from_cp, to_cp):
    """Property: packing is lossless for any 64-bit field values."""
    record = CombinedRecord(block, inode, offset, line, from_cp, to_cp)
    assert CombinedRecord.unpack(record.pack()) == record


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(_field, _field, _field, _field, _field), max_size=50))
def test_sort_key_is_total_order_consistent_with_tuples(fields):
    records = [FromRecord(*f) for f in fields]
    assert sorted(records, key=FromRecord.sort_key) == sorted(records, key=tuple)
