"""Differential tests locking the streaming pipelines to the legacy paths.

This PR's streaming rework keeps every pre-streaming implementation as
first-class code so it can be driven side by side with the new one:

* :func:`repro.core.join.materialized_join` (dict re-grouping) vs
  :func:`repro.core.join.merge_join_for_query` (sort-merge join);
* :func:`repro.core.join.join_tables` vs
  :func:`repro.core.join.stream_join_tables`;
* the materialising compactor (``BacklogConfig(streaming_compaction=False)``)
  vs the streaming generator-chain compactor.

The property tests here assert *observational identity*: same query answers,
same record streams, and -- for compaction -- byte-identical run files, over
seeded randomized workloads mixing allocations, frees, overwrites, clones,
snapshots, snapshot deletions and block relocations across multiple lines.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.join import (
    join_tables,
    materialized_join,
    merge_join_for_query,
    stream_join_tables,
)
from repro.core.masking import ExplicitVersionAuthority, mask_records
from repro.core.inheritance import materialized_expand
from repro.core.records import CombinedRecord, FromRecord, ToRecord
from repro.fsim.blockdev import MemoryBackend


# ------------------------------------------------------------ join-level


_from_records = st.lists(
    st.builds(FromRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(1, 15)),
    max_size=60,
)
_to_records = st.lists(
    st.builds(ToRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(1, 15)),
    max_size=60,
)
_combined_records = st.lists(
    st.builds(CombinedRecord, st.integers(0, 30), st.integers(1, 4),
              st.integers(0, 4), st.integers(0, 2), st.integers(0, 10),
              st.integers(11, 20)),
    max_size=30,
)


@settings(max_examples=120, deadline=None)
@given(_from_records, _to_records, _combined_records)
def test_merge_join_matches_materialized_join(froms, tos, combined):
    """Property: the streaming join emits exactly the materialized result."""
    expected = materialized_join(froms, tos, combined)
    streamed = list(merge_join_for_query(sorted(froms), sorted(tos), sorted(combined)))
    assert streamed == expected


@settings(max_examples=120, deadline=None)
@given(_from_records, _to_records, _combined_records)
def test_stream_join_tables_matches_join_tables(froms, tos, combined):
    """Property: tagged streaming output equals both legacy output tables."""
    complete_expected, incomplete_expected = join_tables(froms, tos, combined)
    complete_streamed: List[CombinedRecord] = []
    incomplete_streamed: List[FromRecord] = []
    for table, record in stream_join_tables(sorted(froms), sorted(tos), sorted(combined)):
        if table == "combined":
            complete_streamed.append(record)
        else:
            incomplete_streamed.append(record)
    assert complete_streamed == complete_expected
    assert incomplete_streamed == incomplete_expected
    # Streaming output must arrive pre-sorted per table: the compacted run
    # writers consume it without any buffering.
    assert complete_streamed == sorted(complete_streamed)
    assert incomplete_streamed == sorted(incomplete_streamed)


# ------------------------------------------------- seeded workload driver


def _random_ops(seed: int, num_cps: int = 8, ops_per_cp: int = 35,
                line_base: int = 1) -> List[Tuple]:
    """A deterministic workload: allocs/frees/overwrites, clones, snapshots.

    Returned as a list of plain op tuples so the same workload can be
    replayed into any number of Backlog instances.
    """
    rng = random.Random(seed)
    ops: List[Tuple] = []
    live: Dict[Tuple[int, int, int], int] = {}  # (inode, offset, line) -> block
    lines = [0]
    next_line = line_base
    next_block = 0
    cp = 1

    def fresh_block() -> int:
        nonlocal next_block
        # Mostly fresh blocks walking up the device, occasionally a shared
        # one (two owners of the same physical block, as dedup would create).
        if live and rng.random() < 0.15:
            return rng.choice(list(live.values()))
        next_block += rng.randrange(1, 9)
        return next_block

    for _ in range(num_cps):
        for _ in range(ops_per_cp):
            roll = rng.random()
            if roll < 0.55 or not live:
                key = (rng.randrange(1, 5), rng.randrange(0, 6), rng.choice(lines))
                if key in live:
                    continue
                block = fresh_block()
                live[key] = block
                ops.append(("add", block, *key))
            elif roll < 0.75:
                key = rng.choice(list(live))
                block = live.pop(key)
                ops.append(("remove", block, *key))
            else:  # overwrite: free the old block, allocate a new one
                key = rng.choice(list(live))
                old = live[key]
                ops.append(("remove", old, *key))
                new = fresh_block()
                live[key] = new
                ops.append(("add", new, *key))
        if rng.random() < 0.6:
            ops.append(("snapshot", rng.choice(lines), cp))
        if rng.random() < 0.25 and len(lines) < 4:
            parent = rng.choice(lines)
            ops.append(("clone", next_line, parent, cp))
            lines.append(next_line)
            next_line += 1
        ops.append(("checkpoint",))
        cp += 1
        if rng.random() < 0.3:
            ops.append(("unsnapshot", rng.choice(lines), rng.randrange(1, cp)))
        if live and rng.random() < 0.25:
            ops.append(("relocate", rng.choice(list(live.values()))))
    return ops


def _replay(backlog: Backlog, authority: ExplicitVersionAuthority, ops: List[Tuple]) -> None:
    for op in ops:
        kind = op[0]
        if kind == "add":
            _, block, inode, offset, line = op
            backlog.add_reference(block, inode, offset, line)
        elif kind == "remove":
            _, block, inode, offset, line = op
            backlog.remove_reference(block, inode, offset, line)
        elif kind == "checkpoint":
            backlog.checkpoint()
            authority.set_current_cp(backlog.current_cp)
        elif kind == "snapshot":
            authority.add_snapshot(op[1], op[2])
        elif kind == "unsnapshot":
            authority.remove_snapshot(op[1], op[2])
        elif kind == "clone":
            _, new_line, parent_line, version = op
            backlog.register_clone(new_line, parent_line, version)
            authority.add_line(new_line)
        elif kind == "relocate":
            backlog.relocate_block(op[1])
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown op {kind!r}")


def _fresh_backlog(streaming_compaction: bool,
                   narrow_dispatch_max_runs: int = 2,
                   backend=None,
                   ) -> Tuple[Backlog, ExplicitVersionAuthority]:
    authority = ExplicitVersionAuthority()
    config = BacklogConfig(
        partition_size_blocks=64,  # small partitions: flush + compaction split
        streaming_compaction=streaming_compaction,
        narrow_dispatch_max_runs=narrow_dispatch_max_runs,
    )
    backlog = Backlog(backend=backend if backend is not None else MemoryBackend(),
                      config=config, version_authority=authority)
    return backlog, authority


def _all_blocks(ops: List[Tuple]) -> List[int]:
    return sorted({op[1] for op in ops if op[0] in ("add", "remove")})


def _backend_bytes(backend: MemoryBackend) -> Dict[str, List[bytes]]:
    """Every file's raw pages, for byte-level comparison."""
    contents: Dict[str, List[bytes]] = {}
    for name in backend.list_files():
        page_file = backend.open(name)
        contents[name] = [page_file.read_page(i) for i in range(page_file.num_pages)]
    return contents


# -------------------------------------------------- query-path equivalence


def _legacy_query(backlog: Backlog, first_block: int, num_blocks: int):
    """The pre-streaming query pipeline: gather lists, dict-join, group.

    Reimplements the seed's read path on top of the retained
    :func:`materialized_join` so the production streaming path can be checked
    against it on a live instance.
    """
    engine = backlog._query_engine
    froms, tos, combined = [], [], []
    partitions = backlog.partitioner.partitions_for_range(first_block, num_blocks)
    runs = [run for p in partitions for run in backlog.run_manager.runs_for(p)]
    sinks = {1: froms, 2: tos, 3: combined}
    for run in runs:
        records = run.records_for_block_range(first_block, num_blocks)
        if backlog.deletion_vector:
            records = list(backlog.deletion_vector.filter(records))
        sinks[run.record_kind].extend(records)
    for store, sink in ((backlog.ws_from, froms), (backlog.ws_to, tos)):
        records = store.records_for_block_range(first_block, num_blocks)
        if backlog.deletion_vector:
            records = list(backlog.deletion_vector.filter(records))
        sink.extend(records)
    combined_view = materialized_join(froms, tos, combined)
    expanded = materialized_expand(combined_view, backlog.clone_graph)
    masked = mask_records(expanded, backlog.version_authority)
    return engine._group(masked)


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
@pytest.mark.parametrize("narrow_dispatch_max_runs", [0, 2], ids=["streaming", "dispatched"])
def test_streaming_query_matches_legacy_pipeline(seed, narrow_dispatch_max_runs):
    """Same answers for point, narrow, wide and whole-device queries.

    Run once with the narrow-query fast path disabled (every query goes
    through the streaming generator chain) and once with the default size
    dispatch, so both execution strategies are differentially checked
    against the reimplemented pre-streaming pipeline.
    """
    ops = _random_ops(seed)
    backlog, authority = _fresh_backlog(
        streaming_compaction=True, narrow_dispatch_max_runs=narrow_dispatch_max_runs)
    _replay(backlog, authority, ops)

    blocks = _all_blocks(ops)
    top = max(blocks) + 2
    ranges = [(block, 1) for block in blocks]
    ranges += [(0, 16), (top // 2, 40), (0, top)]

    def check_everywhere():
        for first, width in ranges:
            assert backlog.query_range(first, width) == _legacy_query(backlog, first, width)

    check_everywhere()           # mixed run + write-store state
    backlog.maintain()
    check_everywhere()           # pure compacted (Combined pass-through) state
    if narrow_dispatch_max_runs == 0:
        assert backlog.query_stats.narrow_fast_path_queries == 0
    else:
        # After compaction each partition holds at most a couple of runs, so
        # at least the point queries must have taken the fast path.
        assert backlog.query_stats.narrow_fast_path_queries > 0


@pytest.mark.parametrize("seed", [2, 13, 57])
def test_narrow_dispatch_matches_forced_streaming(seed):
    """The size-dispatched engine answers exactly like a streaming-only one."""
    ops = _random_ops(seed)
    dispatched, auth_d = _fresh_backlog(True, narrow_dispatch_max_runs=2)
    streaming_only, auth_s = _fresh_backlog(True, narrow_dispatch_max_runs=0)
    _replay(dispatched, auth_d, ops)
    _replay(streaming_only, auth_s, ops)

    blocks = _all_blocks(ops)
    queries = [(block, 1) for block in blocks] + [(0, max(blocks) + 1)]
    for first, width in queries:
        assert dispatched.query_range(first, width) == \
            streaming_only.query_range(first, width)
    assert streaming_only.query_stats.narrow_fast_path_queries == 0

    dispatched.maintain()
    streaming_only.maintain()
    for first, width in queries:
        assert dispatched.query_range(first, width) == \
            streaming_only.query_range(first, width)
    assert dispatched.query_stats.narrow_fast_path_queries > 0
    # The per-batch reset must zero the dispatch counter with the rest.
    dispatched.query_stats.reset()
    assert dispatched.query_stats.narrow_fast_path_queries == 0


# --------------------------------------------- compaction-path equivalence


@pytest.mark.parametrize("seed", [3, 11, 42, 77])
def test_streaming_compaction_bytes_identical_to_legacy(seed):
    """Both compactors must write the exact same files, byte for byte."""
    ops = _random_ops(seed)
    streaming, auth_s = _fresh_backlog(streaming_compaction=True)
    legacy, auth_l = _fresh_backlog(streaming_compaction=False)

    _replay(streaming, auth_s, ops)
    _replay(legacy, auth_l, ops)

    result_s = streaming.maintain()
    result_l = legacy.maintain()

    assert _backend_bytes(streaming.backend) == _backend_bytes(legacy.backend)
    assert (result_s.records_in, result_s.records_out, result_s.records_purged) == \
           (result_l.records_in, result_l.records_out, result_l.records_purged)

    # A second workload round on top of the compacted state exercises the
    # Combined pass-through path of the join; the stores must stay in
    # lock step through a second compaction too.
    more_ops = _random_ops(seed + 1000, num_cps=4, line_base=10)
    _replay(streaming, auth_s, more_ops)
    _replay(legacy, auth_l, more_ops)
    streaming.maintain()
    legacy.maintain()
    assert _backend_bytes(streaming.backend) == _backend_bytes(legacy.backend)

    blocks = _all_blocks(ops) + _all_blocks(more_ops)
    for block in blocks:
        assert streaming.query(block) == legacy.query(block)


# --------------------------------------------- backend-differential tier


@pytest.mark.parametrize("seed", [7, 23])
def test_pipeline_equivalent_on_every_backend(backend_factory, seed):
    """The whole flush/query/compaction pipeline is backend-invariant.

    MemoryBackend is the reference; DiskBackend (batched appends, reversibly
    escaped flat names) and DiskImageBackend (one block-addressed image file)
    must produce byte-identical run files and identical answers for the same
    workload, before and after maintenance.  ``_backend_bytes`` walks
    ``list_files``/``read_page``, so the DiskBackend leg also round-trips
    every hierarchical run name through the flat-file escape.
    """
    ops = _random_ops(seed)
    reference, auth_ref = _fresh_backlog(True)
    candidate, auth_c = _fresh_backlog(True, backend=backend_factory())
    _replay(reference, auth_ref, ops)
    _replay(candidate, auth_c, ops)

    blocks = _all_blocks(ops)
    queries = [(block, 1) for block in blocks] + [(0, max(blocks) + 1)]
    for first, width in queries:
        assert candidate.query_range(first, width) == \
            reference.query_range(first, width)
    assert _backend_bytes(candidate.backend) == _backend_bytes(reference.backend)

    reference.maintain()
    candidate.maintain()
    assert _backend_bytes(candidate.backend) == _backend_bytes(reference.backend)
    for first, width in queries:
        assert candidate.query_range(first, width) == \
            reference.query_range(first, width)


@pytest.mark.parametrize("seed", [5, 19])
def test_compaction_preserves_query_answers(seed):
    """Streaming compaction must not change any query answer."""
    ops = _random_ops(seed)
    backlog, authority = _fresh_backlog(streaming_compaction=True)
    _replay(backlog, authority, ops)

    blocks = _all_blocks(ops)
    before = {block: backlog.query(block) for block in blocks}
    whole_device_before = backlog.query_range(0, max(blocks) + 1)
    backlog.maintain()
    after = {block: backlog.query(block) for block in blocks}
    assert after == before
    assert backlog.query_range(0, max(blocks) + 1) == whole_device_before
