"""Tests for database maintenance (compaction)."""

from __future__ import annotations

import pytest

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.masking import ExplicitVersionAuthority
from repro.core.records import CombinedRecord, INFINITY


def _standalone_backlog(authority=None):
    return Backlog(version_authority=authority or ExplicitVersionAuthority())


class TestMergeAndJoin:
    def test_compaction_reduces_run_count(self):
        backlog = _standalone_backlog()
        for cp in range(5):
            for i in range(50):
                backlog.add_reference(block=i, inode=1, offset=cp * 50 + i)
            backlog.checkpoint()
        assert backlog.run_manager.run_count() == 5
        result = backlog.maintain()
        assert backlog.run_manager.run_count() <= 2
        assert result.partitions_processed == 1
        assert result.records_in > 0

    def test_combined_precomputed_after_compaction(self):
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        backlog.add_reference(10, 1, 0)
        authority.add_snapshot(0, 1)
        backlog.checkpoint()          # CP 1
        authority.set_current_cp(2)
        backlog.remove_reference(10, 1, 0)
        authority.add_snapshot(0, 2)
        backlog.checkpoint()          # CP 2
        authority.set_current_cp(3)
        backlog.maintain()
        combined_runs = backlog.run_manager.runs_for(0, "combined")
        assert len(combined_runs) == 1
        records = list(combined_runs[0].iter_all())
        assert records == [CombinedRecord(10, 1, 0, 0, 1, 2)]
        # From/To Level-0 runs are gone.
        assert backlog.run_manager.runs_for(0, "to") == []

    def test_live_records_stay_in_from_run(self):
        backlog = _standalone_backlog()
        backlog.add_reference(10, 1, 0)
        backlog.checkpoint()
        backlog.maintain()
        from_runs = backlog.run_manager.runs_for(0, "from")
        assert len(from_runs) == 1
        assert list(from_runs[0].iter_all())[0].from_cp == 1
        # Queries still see the live reference.
        assert backlog.query(10)[0].is_live

    def test_compaction_reduces_database_size(self):
        """Merging runs and purging dead records shrinks the database (§6.2.1)."""
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        for cp in range(1, 21):
            authority.set_current_cp(cp)
            for i in range(100):
                backlog.add_reference(block=i, inode=1, offset=i, cp=cp)
                backlog.remove_reference(block=i, inode=1, offset=i, cp=cp + 0)
            # disable pruning effect by alternating cp? records here all prune;
            # instead add some that persist across CPs:
            backlog.add_reference(block=1000 + cp, inode=2, offset=cp, cp=cp)
            backlog.checkpoint()
        for cp in range(1, 11):
            authority.set_current_cp(20 + cp)
            backlog.remove_reference(block=1000 + cp, inode=2, offset=cp, cp=20 + cp)
            backlog.checkpoint()
        size_before = backlog.database_size_bytes()
        result = backlog.maintain()
        assert backlog.database_size_bytes() < size_before
        assert result.bytes_after < result.bytes_before
        assert 0.0 < result.reduction_ratio <= 1.0


class TestPurging:
    def test_records_of_deleted_versions_are_purged(self):
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        authority.set_current_cp(1)
        backlog.add_reference(5, 1, 0, cp=1)
        backlog.checkpoint()
        authority.set_current_cp(2)
        backlog.remove_reference(5, 1, 0, cp=2)
        backlog.checkpoint()
        authority.set_current_cp(3)
        # No snapshot retains CP 1, so the record [1, 2) is purgeable.
        result = backlog.maintain()
        assert result.records_purged == 1
        assert backlog.query(5) == []

    def test_records_covering_retained_snapshot_survive(self):
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        authority.set_current_cp(1)
        backlog.add_reference(5, 1, 0, cp=1)
        authority.add_snapshot(0, 1)
        backlog.checkpoint()
        authority.set_current_cp(2)
        backlog.remove_reference(5, 1, 0, cp=2)
        backlog.checkpoint()
        result = backlog.maintain()
        assert result.records_purged == 0
        refs = backlog.query(5)
        assert refs and refs[0].ranges == ((1, 2),)

    def test_clone_override_records_never_purged_while_clone_exists(self):
        """Purging an override would resurrect inherited references."""
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        authority.set_current_cp(1)
        backlog.add_reference(5, 1, 0, line=0, cp=1)
        authority.add_snapshot(0, 1)
        backlog.checkpoint()
        backlog.register_clone(new_line=1, parent_line=0, parent_version=1)
        authority.add_line(1)
        authority.set_current_cp(2)
        # The clone drops the block (override record), no snapshot of line 1
        # retains any version before the drop.
        backlog.remove_reference(5, 1, 0, line=1, cp=2)
        backlog.checkpoint()
        authority.set_current_cp(3)
        backlog.maintain()
        refs = {ref.line: ref for ref in backlog.query(5)}
        assert refs[0].is_live          # parent still references the block
        # The clone must NOT inherit the reference back: it is either absent
        # (its only lifetime is masked) or present with a closed lifetime.
        assert 1 not in refs or not refs[1].is_live

    def test_cloned_snapshot_backrefs_pinned_by_clone_point(self):
        authority = ExplicitVersionAuthority()
        backlog = _standalone_backlog(authority)
        authority.set_current_cp(1)
        backlog.add_reference(8, 1, 0, line=0, cp=1)
        backlog.checkpoint()
        backlog.register_clone(new_line=1, parent_line=0, parent_version=1)
        authority.add_line(1)
        authority.set_current_cp(2)
        backlog.remove_reference(8, 1, 0, line=0, cp=2)
        backlog.checkpoint()
        authority.set_current_cp(3)
        # Line 0 retains nothing in [1, 2), but the clone was taken at
        # version 1, so the record must survive for inheritance.
        backlog.maintain()
        refs = {ref.line for ref in backlog.query(8)}
        assert 1 in refs

    def test_deletion_vector_folded_in(self):
        backlog = _standalone_backlog()
        backlog.add_reference(9, 1, 0)
        backlog.checkpoint()
        backlog.relocate_block(9)
        assert len(backlog.deletion_vector) == 1
        backlog.maintain()
        assert len(backlog.deletion_vector) == 0
        assert backlog.query(9) == []


class TestMaintenanceStats:
    def test_stats_accumulate(self):
        backlog = _standalone_backlog()
        backlog.add_reference(1, 1, 0)
        backlog.checkpoint()
        first = backlog.maintain()
        second = backlog.maintain()
        assert first.sequence == 1
        assert second.sequence == 2
        assert len(backlog.stats.maintenance_runs) == 2
        assert first.seconds >= 0.0

    def test_compact_empty_database(self):
        backlog = _standalone_backlog()
        result = backlog.maintain()
        assert result.partitions_processed == 0
        assert result.records_in == 0
