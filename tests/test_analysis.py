"""Tests for metric collection and report formatting."""

from __future__ import annotations

import os

import pytest

from repro.analysis.metrics import (
    collect_overhead_series,
    measure_early_exit,
    measure_paginated_scan,
    measure_query_performance,
    sample_space_overhead,
)
from repro.analysis.reporting import format_series, format_table, write_report
from tests.conftest import build_system


class TestOverheadSeries:
    def test_series_matches_checkpoints(self, system):
        fs, backlog = system
        for _ in range(4):
            fs.create_file(num_blocks=10)
            fs.take_consistency_point()
        series = collect_overhead_series(backlog)
        assert len(series) == 4
        assert all(sample.writes_per_block_op >= 0 for sample in series)
        assert all(sample.microseconds_per_block_op >= 0 for sample in series)
        assert [s.cp for s in series] == [1, 2, 3, 4]

    def test_bucketing(self, system):
        fs, backlog = system
        for _ in range(6):
            fs.create_file(num_blocks=5)
            fs.take_consistency_point()
        series = collect_overhead_series(backlog, bucket_cps=2)
        assert len(series) == 3
        with pytest.raises(ValueError):
            collect_overhead_series(backlog, bucket_cps=0)


class TestSpaceSamples:
    def test_overhead_percent(self, system):
        fs, backlog = system
        fs.create_file(num_blocks=100)
        cp = fs.take_consistency_point()
        sample = sample_space_overhead(backlog, fs, cp)
        assert sample.database_bytes > 0
        assert sample.physical_data_bytes == fs.physical_data_bytes
        assert 0 < sample.overhead_percent < 100


class TestQueryPerformance:
    def test_measure_query_performance(self, system):
        fs, backlog = system
        fs.create_file(num_blocks=64)
        fs.take_consistency_point()
        blocks = sorted(b for b, *_ in fs.iter_live_references())
        point = measure_query_performance(backlog, blocks, run_length=8, num_queries=32)
        assert point.queries >= 32
        assert point.queries_per_second > 0
        assert point.reads_per_query >= 0
        assert point.back_references_per_query > 0

    def test_validation(self, system):
        _, backlog = system
        with pytest.raises(ValueError):
            measure_query_performance(backlog, [1], run_length=0, num_queries=1)
        with pytest.raises(ValueError):
            measure_query_performance(backlog, [], run_length=1, num_queries=1)


class TestCursorMetrics:
    def _populated(self, system):
        fs, backlog = system
        for _ in range(3):
            fs.create_file(num_blocks=40)
            fs.take_consistency_point()
        return fs, backlog

    def test_measure_early_exit(self, system):
        _, backlog = self._populated(system)
        point = measure_early_exit(backlog, 0, 1 << 16, num_queries=2)
        assert point.queries == 2
        assert point.back_references_full > 0
        assert point.full_seconds > 0 and point.first_seconds > 0
        assert point.speedup > 0
        with pytest.raises(ValueError):
            measure_early_exit(backlog, 0, 4, num_queries=0)

    def test_measure_paginated_scan(self, system):
        _, backlog = self._populated(system)
        full = backlog.query_range(0, 1 << 16)
        point = measure_paginated_scan(backlog, 0, 1 << 16, page_size=16)
        assert point.back_references == len(full)
        assert point.max_page_length <= 16
        assert point.pages >= len(full) // 16
        assert point.back_references_per_second > 0
        with pytest.raises(ValueError):
            measure_paginated_scan(backlog, 0, 4, page_size=0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            "Table 1: btrfs benchmarks",
            ["Benchmark", "Base", "Backlog", "Overhead"],
            [["create 4 KB", 0.89, 0.96, "7.9%"], ["dbench", 19.59, 19.19, "2.1%"]],
            note="values in ms per op",
        )
        assert "Table 1" in text
        assert "create 4 KB" in text
        assert "note:" in text
        lines = text.splitlines()
        assert len(lines) == 6

    def test_format_series(self):
        text = format_series(
            "Figure 5: overhead",
            "cp",
            [1, 2, 3],
            {"writes/op": [0.01, 0.011, 0.0105], "us/op": [8.5, 9.0, 8.7]},
        )
        assert "writes/op" in text and "us/op" in text
        assert len(text.splitlines()) == 6

    def test_format_cell_ranges(self):
        text = format_table("t", ["v"], [[123456.0], [0.00001], [0.5], [12.3456]])
        assert "123,456" in text
        assert "0.00001" in text

    def test_write_report(self, tmp_path):
        path = str(tmp_path / "reports" / "out.txt")
        text = write_report(path, ["section one", "section two"])
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == text
        assert "section one" in text
