"""Tests for structural inheritance (writable clone expansion).

Both expansion implementations are covered: the behavioural tests run
against :func:`materialized_expand` (any input order, returns a list) and
against the streaming :func:`expand_clones` generator (sorted input, yields
a sorted stream); streaming-specific contract tests follow.
"""

from __future__ import annotations

import pytest

from repro.core.inheritance import CloneGraph, expand_clones, materialized_expand
from repro.core.records import CombinedRecord, INFINITY


def _streaming(records, graph):
    """Drive the streaming generator the way the query pipeline does."""
    return list(expand_clones(sorted(records), graph))


@pytest.fixture(params=[materialized_expand, _streaming], ids=["materialized", "streaming"])
def expand(request):
    return request.param


class TestCloneGraph:
    def test_add_and_lookup(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 0, 20)
        graph.add_clone(3, 1, 30)
        assert graph.parent_of(1) == (0, 10)
        assert graph.parent_of(0) is None
        assert graph.children_of(0) == [(1, 10), (2, 20)]
        assert graph.clone_versions(0) == [10, 20]
        assert graph.descendants_of(0) == [1, 2, 3]
        assert graph.all_lines() == [0, 1, 2, 3]

    def test_add_clone_validation(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        with pytest.raises(ValueError):
            graph.add_clone(1, 0, 20)
        with pytest.raises(ValueError):
            graph.add_clone(5, 5, 1)

    def test_remove_line(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.remove_line(1)
        assert graph.parent_of(1) is None
        assert graph.children_of(0) == []
        # Removing an unknown line is harmless.
        graph.remove_line(99)

    def test_bool_reflects_clone_existence(self):
        graph = CloneGraph()
        assert not graph
        graph.add_clone(1, 0, 10)
        assert graph
        graph.remove_line(1)
        assert not graph

    def test_children_map_is_pruned_on_remove(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 0, 20)
        graph.remove_line(1)
        assert graph.children_map() == {0: [(2, 20)]}
        graph.remove_line(2)
        assert graph.children_map() == {}


class TestExpandClones:
    def test_paper_section_4_2_2(self, expand):
        """Clone line 1 overrides block 103 at CP 43; block 107 replaces it."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)  # line 1 cloned from (0, 40)
        records = [
            CombinedRecord(103, 5, 2, 0, 30, INFINITY),   # parent's reference
            CombinedRecord(103, 5, 2, 1, 0, 43),          # override in the clone
            CombinedRecord(107, 5, 2, 1, 43, INFINITY),   # the clone's new block
        ]
        expanded = expand(records, graph)
        # The override suppresses inheritance: no (103, line 1, 0, INF) record.
        assert CombinedRecord(103, 5, 2, 1, 0, INFINITY) not in expanded
        assert set(expanded) == set(records)

    def test_inherited_record_added_when_no_override(self, expand):
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)
        records = [CombinedRecord(200, 9, 0, 0, 30, INFINITY)]
        expanded = expand(records, graph)
        assert CombinedRecord(200, 9, 0, 1, 0, INFINITY) in expanded
        assert len(expanded) == 2

    def test_no_inheritance_when_clone_point_outside_lifetime(self, expand):
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)
        records = [CombinedRecord(200, 9, 0, 0, 50, INFINITY)]  # allocated after the clone
        expanded = expand(records, graph)
        assert expanded == records

    def test_recursive_expansion_through_clone_chains(self, expand):
        """A clone of a clone inherits transitively (the iterative algorithm)."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 1, 20)
        graph.add_clone(3, 2, 30)
        records = [CombinedRecord(77, 4, 1, 0, 5, INFINITY)]
        expanded = expand(records, graph)
        lines = {r.line for r in expanded}
        assert lines == {0, 1, 2, 3}
        for line in (1, 2, 3):
            assert CombinedRecord(77, 4, 1, line, 0, INFINITY) in expanded

    def test_override_stops_propagation_only_for_that_branch(self, expand):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 0, 10)
        records = [
            CombinedRecord(5, 1, 0, 0, 1, INFINITY),
            CombinedRecord(5, 1, 0, 1, 0, 12),  # line 1 dropped the block at CP 12
        ]
        expanded = expand(records, graph)
        assert CombinedRecord(5, 1, 0, 2, 0, INFINITY) in expanded
        assert CombinedRecord(5, 1, 0, 1, 0, INFINITY) not in expanded

    def test_expansion_result_is_sorted_and_deduplicated(self, expand):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        record = CombinedRecord(5, 1, 0, 0, 1, INFINITY)
        expanded = expand([record, record], graph)
        assert list(expanded) == sorted(set(expanded), key=CombinedRecord.sort_key)

    def test_empty_input(self, expand):
        assert list(expand([], CloneGraph())) == []


class TestStreamingContract:
    """Contracts specific to the incremental generator."""

    def test_returns_iterator_not_list(self):
        result = expand_clones([], CloneGraph())
        assert iter(result) is result

    def test_no_clones_is_a_dedup_pass_through(self):
        records = sorted([
            CombinedRecord(1, 1, 0, 0, 1, 5),
            CombinedRecord(1, 1, 0, 0, 1, 5),
            CombinedRecord(2, 1, 0, 0, 1, INFINITY),
        ])
        out = list(expand_clones(records, CloneGraph()))
        assert out == [records[0], records[2]]

    def test_lazy_one_group_at_a_time(self):
        """The generator must not read past the group it is emitting."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        pulled = []

        def source():
            for record in [
                CombinedRecord(5, 1, 0, 0, 1, INFINITY),
                CombinedRecord(6, 1, 0, 0, 1, INFINITY),
                CombinedRecord(7, 1, 0, 0, 1, INFINITY),
            ]:
                pulled.append(record.block)
                yield record

        stream = expand_clones(source(), graph)
        first = next(stream)
        assert first.block == 5
        # Emitting block 5's group required reading one record beyond the
        # group boundary (block 6) but never block 7.
        assert pulled == [5, 6]

    def test_streaming_output_is_globally_sorted(self):
        graph = CloneGraph()
        graph.add_clone(3, 0, 10)  # child line sorts *after* other lines
        graph.add_clone(1, 3, 20)
        records = sorted([
            CombinedRecord(5, 1, 0, 0, 1, INFINITY),
            CombinedRecord(5, 1, 0, 2, 4, INFINITY),
            CombinedRecord(9, 2, 1, 0, 1, INFINITY),
        ])
        out = list(expand_clones(records, graph))
        assert out == sorted(out)
        assert out == materialized_expand(records, graph)

    def test_duplicates_across_group_boundary(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        a = CombinedRecord(5, 1, 0, 0, 1, INFINITY)
        b = CombinedRecord(6, 1, 0, 0, 1, INFINITY)
        out = list(expand_clones([a, a, b, b], graph))
        assert out == materialized_expand([a, a, b, b], graph)

    def test_synthesized_records_do_not_act_as_overrides(self):
        """Only *initial* from=0 records suppress inheritance (§4.2.2)."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 1, 20)
        records = [CombinedRecord(5, 1, 0, 0, 1, INFINITY)]
        out = list(expand_clones(records, graph))
        # Line 1 inherits (from=0), and despite that record having from=0 it
        # must still propagate to line 2.
        assert CombinedRecord(5, 1, 0, 2, 0, INFINITY) in out
        assert out == materialized_expand(records, graph)
