"""Tests for structural inheritance (writable clone expansion)."""

from __future__ import annotations

import pytest

from repro.core.inheritance import CloneGraph, expand_clones
from repro.core.records import CombinedRecord, INFINITY


class TestCloneGraph:
    def test_add_and_lookup(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 0, 20)
        graph.add_clone(3, 1, 30)
        assert graph.parent_of(1) == (0, 10)
        assert graph.parent_of(0) is None
        assert graph.children_of(0) == [(1, 10), (2, 20)]
        assert graph.clone_versions(0) == [10, 20]
        assert graph.descendants_of(0) == [1, 2, 3]
        assert graph.all_lines() == [0, 1, 2, 3]

    def test_add_clone_validation(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        with pytest.raises(ValueError):
            graph.add_clone(1, 0, 20)
        with pytest.raises(ValueError):
            graph.add_clone(5, 5, 1)

    def test_remove_line(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.remove_line(1)
        assert graph.parent_of(1) is None
        assert graph.children_of(0) == []
        # Removing an unknown line is harmless.
        graph.remove_line(99)


class TestExpandClones:
    def test_paper_section_4_2_2(self):
        """Clone line 1 overrides block 103 at CP 43; block 107 replaces it."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)  # line 1 cloned from (0, 40)
        records = [
            CombinedRecord(103, 5, 2, 0, 30, INFINITY),   # parent's reference
            CombinedRecord(103, 5, 2, 1, 0, 43),          # override in the clone
            CombinedRecord(107, 5, 2, 1, 43, INFINITY),   # the clone's new block
        ]
        expanded = expand_clones(records, graph)
        # The override suppresses inheritance: no (103, line 1, 0, INF) record.
        assert CombinedRecord(103, 5, 2, 1, 0, INFINITY) not in expanded
        assert set(expanded) == set(records)

    def test_inherited_record_added_when_no_override(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)
        records = [CombinedRecord(200, 9, 0, 0, 30, INFINITY)]
        expanded = expand_clones(records, graph)
        assert CombinedRecord(200, 9, 0, 1, 0, INFINITY) in expanded
        assert len(expanded) == 2

    def test_no_inheritance_when_clone_point_outside_lifetime(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 40)
        records = [CombinedRecord(200, 9, 0, 0, 50, INFINITY)]  # allocated after the clone
        expanded = expand_clones(records, graph)
        assert expanded == records

    def test_recursive_expansion_through_clone_chains(self):
        """A clone of a clone inherits transitively (the iterative algorithm)."""
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 1, 20)
        graph.add_clone(3, 2, 30)
        records = [CombinedRecord(77, 4, 1, 0, 5, INFINITY)]
        expanded = expand_clones(records, graph)
        lines = {r.line for r in expanded}
        assert lines == {0, 1, 2, 3}
        for line in (1, 2, 3):
            assert CombinedRecord(77, 4, 1, line, 0, INFINITY) in expanded

    def test_override_stops_propagation_only_for_that_branch(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        graph.add_clone(2, 0, 10)
        records = [
            CombinedRecord(5, 1, 0, 0, 1, INFINITY),
            CombinedRecord(5, 1, 0, 1, 0, 12),  # line 1 dropped the block at CP 12
        ]
        expanded = expand_clones(records, graph)
        assert CombinedRecord(5, 1, 0, 2, 0, INFINITY) in expanded
        assert CombinedRecord(5, 1, 0, 1, 0, INFINITY) not in expanded

    def test_expansion_result_is_sorted_and_deduplicated(self):
        graph = CloneGraph()
        graph.add_clone(1, 0, 10)
        record = CombinedRecord(5, 1, 0, 0, 1, INFINITY)
        expanded = expand_clones([record, record], graph)
        assert expanded == sorted(set(expanded), key=CombinedRecord.sort_key)

    def test_empty_input(self):
        assert expand_clones([], CloneGraph()) == []
