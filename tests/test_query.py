"""Tests for the query engine, against the live file system simulator."""

from __future__ import annotations

import pytest

from repro.core.config import BacklogConfig
from repro.core.records import INFINITY
from tests.conftest import build_system


class TestPointQueries:
    def test_owner_of_live_block(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=4)
        fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(2)
        refs = backlog.query(block)
        assert len(refs) == 1
        assert (refs[0].inode, refs[0].offset, refs[0].line) == (inode, 2, 0)
        assert refs[0].is_live

    def test_query_unknown_block(self, system):
        _, backlog = system
        assert backlog.query(10**9) == []

    def test_query_range_validation(self, system):
        _, backlog = system
        with pytest.raises(ValueError):
            backlog.query_range(0, 0)

    def test_deduplicated_block_has_multiple_owners(self):
        fs, backlog = build_system()
        a = fs.create_file(num_blocks=1)
        b = fs.create_file(num_blocks=1)
        block_a = fs.volume().inodes[a].physical_block(0)
        # Manually share block_a into file b (what dedup does internally).
        old = fs.volume().inodes[b].physical_block(0)
        fs.allocator.add_ref(block_a)
        fs.volume().inodes[b].set_block(0, block_a)
        fs.allocator.drop_ref(old, fs.global_cp)
        backlog.on_reference_added(block_a, b, 0, 0, fs.global_cp)
        backlog.on_reference_removed(old, b, 0, 0, fs.global_cp)
        fs.take_consistency_point()
        owners = {(ref.inode, ref.offset) for ref in backlog.query(block_a)}
        assert owners == {(a, 0), (b, 0)}

    def test_owners_at_version_and_live_owners(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=1)
        cp1 = fs.take_consistency_point()
        old_block = fs.volume().inodes[inode].physical_block(0)
        fs.write(inode, 0, 1)
        fs.take_consistency_point()
        # The old block is still owned at version cp1 but no longer live.
        assert backlog.owners_at_version(old_block, cp1)
        assert backlog.live_owners(old_block) == []
        new_block = fs.volume().inodes[inode].physical_block(0)
        assert backlog.live_owners(new_block)


class TestRangeQueries:
    def test_range_returns_all_blocks(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=8)
        fs.take_consistency_point()
        blocks = sorted(fs.volume().inodes[inode].blocks.values())
        refs = backlog.query_range(blocks[0], blocks[-1] - blocks[0] + 1)
        assert {ref.block for ref in refs} == set(blocks)

    def test_range_spanning_partitions(self):
        fs, backlog = build_system(backlog_config=BacklogConfig(partition_size_blocks=4))
        inode = fs.create_file(num_blocks=10)
        fs.take_consistency_point()
        refs = backlog.query_range(0, 10)
        assert len(refs) == 10
        assert len(backlog.run_manager.partitions()) >= 2


class TestQueryAcrossCPsAndSnapshots:
    def test_overwritten_block_keeps_history(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=1)
        cp1 = fs.take_consistency_point()
        old_block = fs.volume().inodes[inode].physical_block(0)
        fs.write(inode, 0, 1)
        cp2 = fs.take_consistency_point()
        refs = backlog.query(old_block)
        assert refs[0].ranges == ((1, 2),)

    def test_deleted_snapshot_versions_are_masked(self):
        fs, backlog = build_system()
        inode = fs.create_file(num_blocks=1)
        cp1 = fs.take_consistency_point()
        old_block = fs.volume().inodes[inode].physical_block(0)
        fs.write(inode, 0, 1)
        fs.take_consistency_point()
        assert backlog.query(old_block)  # visible: snapshot cp1 retains it
        fs.delete_snapshot(0, cp1)
        # With the only retaining snapshot gone, the record is masked away.
        assert backlog.query(old_block) == []

    def test_clone_inheritance_visible_in_queries(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=2)
        cp = fs.take_consistency_point()
        clone_line = fs.create_clone(0, cp)
        block = fs.volume(0).inodes[inode].physical_block(0)
        lines = {ref.line for ref in backlog.query(block)}
        assert lines == {0, clone_line}
        # Overwrite in the clone: the clone no longer references the block.
        # No retained snapshot of the clone line ever captured the inherited
        # reference, so the clone either disappears from the result entirely
        # (masked) or appears with a closed lifetime -- never as a live owner.
        fs.write(inode, 0, 1, line=clone_line)
        fs.take_consistency_point()
        refs = {ref.line: ref for ref in backlog.query(block)}
        assert refs[0].is_live
        assert clone_line not in refs or not refs[clone_line].is_live


class TestBloomFilterEffect:
    def test_bloom_skips_irrelevant_runs(self):
        fs, backlog = build_system()
        # Two CPs touching disjoint block ranges -> two runs; a query for one
        # range should skip the other run's Bloom filter.
        a = fs.create_file(num_blocks=50)
        fs.take_consistency_point()
        b = fs.create_file(num_blocks=50)
        fs.take_consistency_point()
        backlog.query_stats.reset()
        target = fs.volume().inodes[b].physical_block(0)
        backlog.query(target)
        assert backlog.query_stats.runs_skipped_by_bloom >= 1

    def test_disabling_bloom_probes_all_runs(self):
        fs, backlog = build_system(backlog_config=BacklogConfig(use_bloom_filters=False))
        fs.create_file(num_blocks=50)
        fs.take_consistency_point()
        fs.create_file(num_blocks=50)
        fs.take_consistency_point()
        backlog.query_stats.reset()
        backlog.query(0)
        assert backlog.query_stats.runs_skipped_by_bloom == 0
        assert backlog.query_stats.runs_probed == backlog.run_manager.run_count()


class TestQueryStats:
    def test_stats_accumulate_and_reset(self, system):
        fs, backlog = system
        fs.create_file(num_blocks=2)
        fs.take_consistency_point()
        backlog.query_stats.reset()
        backlog.query(0)
        backlog.query(1)
        stats = backlog.query_stats
        assert stats.queries == 2
        assert stats.seconds > 0
        assert stats.queries_per_second > 0
        stats.reset()
        assert stats.queries == 0

    def test_cache_clearing_forces_reads(self, system):
        fs, backlog = system
        inode = fs.create_file(num_blocks=4)
        fs.take_consistency_point()
        block = fs.volume().inodes[inode].physical_block(0)
        backlog.query(block)
        backlog.query_stats.reset()
        backlog.query(block)
        cached_reads = backlog.query_stats.pages_read
        backlog.clear_caches()
        backlog.query_stats.reset()
        backlog.query(block)
        assert backlog.query_stats.pages_read >= cached_reads
