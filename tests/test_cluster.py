"""Unit and end-to-end tests for the process-cluster subsystem.

Covers the layers bottom-up: protocol framing (roundtrip, corruption,
version mismatch, error relay), the shard map's placement algebra, the
shard-extended (v2) resume tokens, and then live clusters -- lazy
``.first()``, limits, clones, relocation, the two-phase checkpoint's
fault/crash behaviour, cold restart, and the HTTP service running over a
cluster.  The shards {1, 3} *equivalence* leg (identical answers, page
boundaries and exact ``pages_read``) lives with its siblings in
``tests/test_parallel_equivalence.py``.
"""

from __future__ import annotations

import errno
import json
import os

import pytest

from repro.cluster import (
    ClusterCheckpointError,
    ClusterError,
    Opcode,
    ProtocolError,
    ShardMap,
    ShardedBacklog,
    WorkerError,
)
from repro.cluster.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    QUERY_PAGE_VERSION,
    _HEADER,
    decode_frame,
    encode_frame,
    raise_reply_error,
)
from repro.cluster.worker import shard_directory, shard_meta_path
from repro.core.config import BacklogConfig
from repro.core.cursor import (
    QuerySpec,
    decode_resume_token,
    encode_resume_token,
    resume_token_shard,
)
from repro.core.records import ReferenceKey
from repro.fsim.faults import FaultPlan


# ---------------------------------------------------------------- protocol


def test_frame_roundtrip_all_opcodes():
    payload = {"nested": [1, 2, {"three": (4, 5)}], "none": None}
    for opcode in Opcode:
        kind, body = decode_frame(encode_frame(opcode, payload))
        assert kind is opcode
        assert body == payload


def test_frame_rejects_corruption():
    frame = encode_frame(Opcode.STATS, {"x": 1})
    with pytest.raises(ProtocolError, match="magic"):
        decode_frame(b"XXXX" + frame[4:])
    # Version 2 is the packed QUERY_PAGE reply codec, so the first *unknown*
    # version is one past it.
    with pytest.raises(ProtocolError, match="version"):
        decode_frame(_HEADER.pack(MAGIC, QUERY_PAGE_VERSION + 1, int(Opcode.STATS),
                                  len(frame) - _HEADER.size)
                     + frame[_HEADER.size:])
    with pytest.raises(ProtocolError, match="length"):
        decode_frame(frame[:-1])
    with pytest.raises(ProtocolError, match="short frame"):
        decode_frame(frame[:4])
    with pytest.raises(ProtocolError, match="opcode"):
        decode_frame(_HEADER.pack(MAGIC, PROTOCOL_VERSION, 250,
                                  len(frame) - _HEADER.size)
                     + frame[_HEADER.size:])


def test_error_relay_preserves_dispatchable_types():
    with pytest.raises(OSError) as excinfo:
        raise_reply_error({"kind": "OSError", "message": "no space",
                           "errno": errno.ENOSPC})
    assert excinfo.value.errno == errno.ENOSPC
    with pytest.raises(ValueError, match="bad spec"):
        raise_reply_error({"kind": "ValueError", "message": "bad spec"})
    with pytest.raises(WorkerError, match="KeyError: boom") as excinfo:
        raise_reply_error({"kind": "KeyError", "message": "boom"})
    assert excinfo.value.kind == "KeyError"


# --------------------------------------------------------------- shard map


def test_shard_map_striping_and_validation():
    shard_map = ShardMap(3, partition_size_blocks=64)
    assert shard_map.shard_of_partition(0) == 0          # .first() laziness
    assert [shard_map.shard_of_partition(p) for p in range(6)] == [0, 1, 2, 0, 1, 2]
    assert shard_map.shard_of_block(0) == 0
    assert shard_map.shard_of_block(63) == 0
    assert shard_map.shard_of_block(64) == 1
    assert shard_map.partitions_of_shard(1, 10) == [1, 4, 7]
    with pytest.raises(ValueError):
        ShardMap(0)
    with pytest.raises(ValueError):
        ShardMap(2, partition_size_blocks=0)
    with pytest.raises(ValueError):
        shard_map.shard_of_block(-1)
    with pytest.raises(ValueError):
        shard_map.partitions_of_shard(3, 10)


def test_subranges_partition_exact_and_shard_count_independent():
    for shards in (1, 2, 3, 5):
        shard_map = ShardMap(shards, partition_size_blocks=64)
        pieces = list(shard_map.subranges(10, 300))
        # Exact decomposition: concatenation == [10, 310), no overlap.
        assert pieces[0][2] == 10
        covered = 0
        for index, (partition, shard, first, count) in enumerate(pieces):
            assert shard == partition % shards
            assert first // 64 == partition
            assert (first + count - 1) // 64 == partition
            if index:
                assert first == pieces[index - 1][2] + pieces[index - 1][3]
            covered += count
        assert covered == 300
        # The (partition, first, count) skeleton never depends on the shard
        # count -- the equivalence proof's load-bearing property.
        assert [(p, f, c) for p, _, f, c in pieces] == \
            [(p, f, c) for p, _, f, c in ShardMap(1, 64).subranges(10, 300)]
    assert list(ShardMap(2, 64).subranges(5, 0)) == []


# ------------------------------------------------------------- v2 tokens


def test_shard_extended_resume_tokens():
    key = ReferenceKey(700, 12, 3, 1)
    v1 = encode_resume_token(key)
    v2 = encode_resume_token(key, shard=2)
    assert v1.startswith("bkq1.") and v2.startswith("bkq2.")
    # Both decode to the same owner; the shard rides along on v2 only.
    assert decode_resume_token(v1) == key
    assert decode_resume_token(v2) == key
    assert resume_token_shard(v1) is None
    assert resume_token_shard(v2) == 2
    with pytest.raises(ValueError):
        decode_resume_token("bkq2.not-base64!!")
    with pytest.raises(ValueError):
        resume_token_shard("bkq9.AAAA")


def test_v2_token_resumes_on_single_process_backlog():
    """A cluster-minted token is valid on a plain Backlog (and vice versa)."""
    from repro.core.backlog import Backlog

    backlog = Backlog(config=BacklogConfig(partition_size_blocks=64))
    for block in range(20):
        backlog.add_reference(block=block, inode=1, offset=block)
    backlog.checkpoint()
    page = backlog.select(QuerySpec(0, 100, limit=5))
    rows = page.all()
    v2 = encode_resume_token(rows[-1], shard=1)   # as a cluster would mint
    rest = backlog.select(QuerySpec(0, 100, resume_token=v2)).all()
    assert [ref.block for ref in rest] == list(range(5, 20))
    backlog.close()


# ------------------------------------------------------------ live cluster


def _fill(cluster, blocks=range(0, 300, 7), inode=3):
    for block in blocks:
        cluster.add_reference(block, inode=inode, offset=block)
    return cluster.checkpoint()


def test_cluster_basic_query_limit_and_pagination(shard_factory):
    cluster = shard_factory(num_shards=3)
    _fill(cluster)
    expected = sorted(range(0, 300, 7))

    full = cluster.select(QuerySpec(0, 300))
    assert [ref.block for ref in full.all()] == expected
    assert full.exhausted and full.resume_token is None

    assert cluster.query(14)[0].inode == 3
    assert [r.block for r in cluster.query_range(60, 80)] == \
        [b for b in expected if 60 <= b < 140]

    page = cluster.select(QuerySpec(0, 300, limit=10))
    first_page = page.all()
    assert len(first_page) == 10 and not page.exhausted
    token = page.resume_token
    assert resume_token_shard(token) is not None        # v2: shard recorded
    rest = cluster.select(QuerySpec(0, 300, resume_token=token)).all()
    assert [r.block for r in first_page + rest] == expected


def test_cluster_first_opens_only_shard_zero(shard_factory):
    """`.first()` on a whole-device range must not touch shards 1..N-1."""
    cluster = shard_factory(num_shards=3)
    _fill(cluster)
    queries_before = [s["service"]["queries"] for s in cluster._broadcast_stats()]
    ref = cluster.select(QuerySpec(0, 300)).first()
    assert ref.block == 0
    queries_after = [s["service"]["queries"] for s in cluster._broadcast_stats()]
    assert queries_after[0] == queries_before[0] + 1
    assert queries_after[1:] == queries_before[1:]


def test_cluster_one_or_none_count_and_emitted(shard_factory):
    cluster = shard_factory(num_shards=2)
    _fill(cluster)
    assert cluster.select(QuerySpec(7)).one_or_none().block == 7
    assert cluster.select(QuerySpec(1)).one_or_none() is None
    cluster.add_reference(7, inode=9, offset=0)
    cluster.checkpoint()
    with pytest.raises(ValueError, match="at most one"):
        cluster.select(QuerySpec(7)).one_or_none()
    assert cluster.select(QuerySpec(0, 300)).count() == len(range(0, 300, 7)) + 1
    limited = cluster.select(QuerySpec(0, 300)).limit(4)
    assert len(limited.all()) == limited.emitted == 4


def test_cluster_clone_expansion_and_relocation(shard_factory):
    cluster = shard_factory(num_shards=3)
    cluster.add_reference(100, inode=5, offset=0, line=0)
    cp = cluster.checkpoint()
    cluster.register_clone(1, 0, cp)
    cluster.add_reference(200, inode=6, offset=1, line=1)
    cluster.checkpoint()
    # The clone inherits its parent's reference through expansion -- which
    # runs inside the worker owning block 100's partition.
    owners = cluster.select(QuerySpec(100)).all()
    assert {(ref.line, ref.inode) for ref in owners} == {(0, 5), (1, 5)}
    # Relocation suppresses every identity of the block on its owner shard.
    suppressed = cluster.relocate_block(100)
    assert suppressed == 2
    assert cluster.select(QuerySpec(100)).all() == []
    assert [ref.inode for ref in cluster.select(QuerySpec(200)).all()] == [6]


def test_cluster_enospc_prepare_fails_whole_checkpoint(shard_factory):
    """A failed prepare on one shard publishes nothing and stays retryable."""
    plan = FaultPlan(enospc_after_pages=0, seed=7)
    cluster = shard_factory(num_shards=3, durable=True, fault_plans={1: plan})
    _fill(cluster)
    committed = cluster.committed_cp
    for block in range(1, 200, 13):
        cluster.add_reference(block, inode=9, offset=block)
    before = {(r.block, r.inode, r.offset) for r in
              cluster.select(QuerySpec(0, 300)).all()}

    cluster.debug_fault(1, "arm")
    with pytest.raises(ClusterCheckpointError, match="shard"):
        cluster.checkpoint()
    # No partial CP: the global CP did not move, and every update is still
    # queryable (prepared shards from their runs, the failed shard from its
    # intact write stores).
    assert cluster.committed_cp == committed
    assert {(r.block, r.inode, r.offset) for r in
            cluster.select(QuerySpec(0, 300)).all()} == before

    cluster.debug_fault(1, "disarm")
    cp = cluster.checkpoint()
    assert cluster.committed_cp == cp > committed
    assert {(r.block, r.inode, r.offset) for r in
            cluster.select(QuerySpec(0, 300)).all()} == before


def test_cluster_worker_crash_recovers_transparently(shard_factory):
    """Kill a worker; the next query revives it with no data loss."""
    cluster = shard_factory(num_shards=3, durable=True)
    _fill(cluster)
    # Buffered-but-unflushed updates must survive the crash via replay.
    cluster.add_reference(64, inode=42, offset=9)     # partition 1 -> shard 1
    before = {(r.block, r.inode, r.offset) for r in
              cluster.select(QuerySpec(0, 300)).all()}
    pid = cluster.debug_kill(1)
    after = {(r.block, r.inode, r.offset) for r in
             cluster.select(QuerySpec(0, 300)).all()}
    assert after == before
    assert pid not in cluster.worker_pids()
    # And the revived worker checkpoints normally.
    cluster.checkpoint()
    assert {(r.block, r.inode, r.offset) for r in
            cluster.select(QuerySpec(0, 300)).all()} == before


def test_cluster_crash_mid_checkpoint_no_partial_cp(shard_factory):
    """A worker killed during the checkpoint window never splits the CP."""
    cluster = shard_factory(num_shards=3, durable=True)
    _fill(cluster)
    committed = cluster.committed_cp
    for block in range(2, 250, 11):
        cluster.add_reference(block, inode=12, offset=block)
    expected = {(r.block, r.inode, r.offset) for r in
                cluster.select(QuerySpec(0, 300)).all()}
    cluster.debug_kill(0)
    # The checkpoint either fails cleanly (retryable, nothing published) or
    # succeeds after an in-line revive -- but never publishes a CP that is
    # missing a shard's updates.
    try:
        cluster.checkpoint()
    except ClusterCheckpointError:
        assert cluster.committed_cp == committed
        cluster.checkpoint()
    assert cluster.committed_cp > committed
    assert {(r.block, r.inode, r.offset) for r in
            cluster.select(QuerySpec(0, 300)).all()} == expected


def test_cluster_memory_shard_death_is_loud(shard_factory):
    cluster = shard_factory(num_shards=2)          # no directory: no recovery
    _fill(cluster)
    cluster.debug_kill(1)
    with pytest.raises(ClusterError, match="cannot recover"):
        cluster.select(QuerySpec(0, 300)).all()


def test_cluster_cold_restart_recovers_all_shards(tmp_path):
    config = BacklogConfig(partition_size_blocks=64)
    root = str(tmp_path / "cluster")
    with ShardedBacklog(num_shards=3, config=config, directory=root) as cluster:
        _fill(cluster)
        cluster.register_clone(1, 0, 1)
        cluster.add_reference(64, inode=7, offset=1, line=1)
        cluster.checkpoint()
        expected = {(r.block, r.inode, r.offset, r.line, r.ranges)
                    for r in cluster.select(QuerySpec(0, 300)).all()}
        committed = cluster.committed_cp
    # On-disk layout: one run directory and one meta file per shard, plus
    # the coordinator's published CP.
    for shard in range(3):
        assert os.path.isdir(shard_directory(root, shard))
        with open(shard_meta_path(root, shard), encoding="utf-8") as handle:
            meta = json.load(handle)
        assert meta["cp"] == committed and meta["committed"] == committed
    with ShardedBacklog(num_shards=3, config=config, directory=root) as cluster:
        assert cluster.committed_cp == committed
        cluster.register_clone(1, 0, 1)            # clone state is in-memory
        assert {(r.block, r.inode, r.offset, r.line, r.ranges)
                for r in cluster.select(QuerySpec(0, 300)).all()} == expected


def test_cluster_maintain_folds_stats_and_purges(shard_factory):
    cluster = shard_factory(num_shards=3)
    for block in range(0, 200, 3):
        cluster.add_reference(block, inode=2, offset=block)
    cluster.checkpoint()
    for block in range(0, 200, 6):
        cluster.remove_reference(block, inode=2, offset=block)
    cluster.checkpoint()
    folded = cluster.maintain()
    assert folded.partitions_processed > 0
    assert folded.records_in >= folded.records_out
    assert cluster.stats.maintenance_runs[-1] is folded
    # Compaction is invisible in answers: live owners are exactly the
    # never-removed ones, and removed owners keep their historical ranges.
    live = [r.block for r in
            cluster.select(QuerySpec(0, 200, live_only=True)).all()]
    assert live == [b for b in range(0, 200, 3) if b % 6 != 0]
    assert [r.block for r in cluster.select(QuerySpec(0, 200)).all()] == \
        list(range(0, 200, 3))


def test_cluster_service_stats_shape(shard_factory):
    cluster = shard_factory(num_shards=2)
    _fill(cluster)
    cluster.select(QuerySpec(0, 300)).all()
    stats = cluster.service_stats()
    assert stats["cluster"]["num_shards"] == 2
    assert len(stats["cluster"]["worker_pids"]) == 2
    assert len(stats["shards"]) == 2
    for shard_stats in stats["shards"]:
        assert {"flush_pool", "maintenance_pool", "query_pool",
                "query"} <= set(shard_stats["service"])
    assert stats["pages_read"] == cluster.stats.query.pages_read > 0
    # The folded coordinator tally equals the sum of the per-shard tallies.
    assert stats["pages_read"] == sum(
        s["service"]["pages_read"] for s in stats["shards"])
    # One coordinator-level query counted per cluster cursor, however many
    # per-partition sub-queries it scattered.
    assert stats["queries"] == 1


def test_cluster_http_service(shard_factory):
    """The HTTP daemon serves a cluster exactly like a single Backlog."""
    import http.client

    from repro.server import QueryService

    cluster = shard_factory(num_shards=3)
    _fill(cluster)
    with QueryService(cluster) as service:
        conn = http.client.HTTPConnection(*service.address)
        conn.request("POST", "/query",
                     json.dumps({"first_block": 0, "num_blocks": 300,
                                 "limit": 12}),
                     {"Content-Type": "application/json"})
        page = json.loads(conn.getresponse().read())
        assert page["count"] == 12
        assert page["resume_token"].startswith("bkq2.")
        conn.request("POST", "/query",
                     json.dumps({"first_block": 0, "num_blocks": 300,
                                 "resume_token": page["resume_token"]}),
                     {"Content-Type": "application/json"})
        rest = json.loads(conn.getresponse().read())
        assert rest["exhausted"] is True
        assert page["count"] + rest["count"] == len(range(0, 300, 7))

        conn.request("GET", "/stats")
        stats = json.loads(conn.getresponse().read())
        assert stats["cluster"]["num_shards"] == 3
        assert len(stats["shards"]) == 3
        assert stats["requests_served"] == 2

        conn.request("GET", "/health")
        health = json.loads(conn.getresponse().read())
        assert health["status"] == "ok"
        conn.close()


def test_cluster_rejects_use_after_close(shard_factory):
    cluster = shard_factory(num_shards=2)
    _fill(cluster)
    cluster.close()
    with pytest.raises(ClusterError, match="closed"):
        cluster.add_reference(1, inode=1, offset=0)
    with pytest.raises(ClusterError, match="closed"):
        cluster.select(QuerySpec(0, 10))
    cluster.close()   # idempotent


def test_cluster_shards_config_knob(monkeypatch):
    monkeypatch.setenv("REPRO_CLUSTER_SHARDS", "3")
    assert BacklogConfig().cluster_shards == 3
    monkeypatch.delenv("REPRO_CLUSTER_SHARDS")
    assert BacklogConfig().cluster_shards == 1
    with pytest.raises(ValueError, match="cluster_shards"):
        BacklogConfig(cluster_shards=0)


def test_zipf_popularity_is_skewed_seeded_and_scattered():
    from repro.workloads.synthetic import ZipfBlockPopularity

    pop = ZipfBlockPopularity(num_blocks=4096, exponent=1.2, seed=11)
    again = ZipfBlockPopularity(num_blocks=4096, exponent=1.2, seed=11)
    draws = pop.sample_many(3000)
    assert draws == again.sample_many(3000)        # seeded determinism
    assert all(0 <= b < 4096 for b in draws)
    # Skew: the hot half-mass set is a small fraction of the device ...
    hot = pop.hot_set(0.5)
    assert len(hot) < 4096 // 10
    # ... and is scattered across partitions (hence shards), not clustered.
    partitions = {block // 64 for block in hot}
    assert len(partitions) > len(hot) // 4
    with pytest.raises(ValueError):
        ZipfBlockPopularity(0)
    with pytest.raises(ValueError):
        pop.hot_set(0.0)
