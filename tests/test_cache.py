"""Tests for the LRU page cache."""

from __future__ import annotations

import pytest

from repro.fsim.blockdev import MemoryBackend, PAGE_SIZE
from repro.fsim.cache import PageCache


def _backend_with_file(name="f", pages=10):
    backend = MemoryBackend()
    page_file = backend.create(name)
    for index in range(pages):
        page_file.append_page(bytes([index]) * 16)
    return backend, page_file


class TestPageCache:
    def test_hit_after_miss(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        first = cache.read_page(page_file, 3)
        second = cache.read_page(page_file, 3)
        assert first == second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert backend.stats.pages_read == 1  # only the miss touched the backend

    def test_eviction_at_capacity(self):
        backend, page_file = _backend_with_file(pages=10)
        cache = PageCache(3 * PAGE_SIZE)
        for index in range(10):
            cache.read_page(page_file, index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        assert cache.used_bytes == 3 * PAGE_SIZE

    def test_lru_order(self):
        _, page_file = _backend_with_file(pages=4)
        cache = PageCache(2 * PAGE_SIZE)
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 1)
        cache.read_page(page_file, 0)      # page 0 becomes most recent
        cache.read_page(page_file, 2)      # evicts page 1
        assert cache.peek(page_file.name, 0) is not None
        assert cache.peek(page_file.name, 1) is None

    def test_zero_capacity_disables_caching(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(0)
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 0)
        assert backend.stats.pages_read == 2
        assert len(cache) == 0

    def test_invalidate_file(self):
        backend, page_file = _backend_with_file(name="a")
        other_file = backend.create("b")
        other_file.append_page(b"other")
        cache = PageCache(1024 * 1024)
        cache.read_page(page_file, 0)
        cache.read_page(other_file, 0)
        cache.invalidate_file("a")
        assert cache.peek("a", 0) is None
        assert cache.peek("b", 0) is not None

    def test_clear_and_hit_ratio(self):
        _, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        assert cache.stats.hit_ratio == 0.0
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(-1)
