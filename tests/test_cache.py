"""Tests for the LRU page cache."""

from __future__ import annotations

import pytest

from repro.fsim.blockdev import MemoryBackend, PAGE_SIZE
from repro.fsim.cache import PageCache


def _backend_with_file(name="f", pages=10):
    backend = MemoryBackend()
    page_file = backend.create(name)
    for index in range(pages):
        page_file.append_page(bytes([index]) * 16)
    return backend, page_file


class TestPageCache:
    def test_hit_after_miss(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        first = cache.read_page(page_file, 3)
        second = cache.read_page(page_file, 3)
        assert first == second
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert backend.stats.pages_read == 1  # only the miss touched the backend

    def test_eviction_at_capacity(self):
        backend, page_file = _backend_with_file(pages=10)
        cache = PageCache(3 * PAGE_SIZE)
        for index in range(10):
            cache.read_page(page_file, index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        assert cache.used_bytes == 3 * PAGE_SIZE

    def test_lru_order(self):
        _, page_file = _backend_with_file(pages=4)
        cache = PageCache(2 * PAGE_SIZE)
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 1)
        cache.read_page(page_file, 0)      # page 0 becomes most recent
        cache.read_page(page_file, 2)      # evicts page 1
        assert cache.peek(page_file.name, 0) is not None
        assert cache.peek(page_file.name, 1) is None

    def test_zero_capacity_disables_caching(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(0)
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 0)
        assert backend.stats.pages_read == 2
        assert len(cache) == 0

    def test_invalidate_file(self):
        backend, page_file = _backend_with_file(name="a")
        other_file = backend.create("b")
        other_file.append_page(b"other")
        cache = PageCache(1024 * 1024)
        cache.read_page(page_file, 0)
        cache.read_page(other_file, 0)
        cache.invalidate_file("a")
        assert cache.peek("a", 0) is None
        assert cache.peek("b", 0) is not None

    def test_clear_and_hit_ratio(self):
        _, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        assert cache.stats.hit_ratio == 0.0
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PageCache(-1)


class TestInvalidateFileIndex:
    """`invalidate_file` behaviour after the per-file key-index refactor."""

    def test_invalidate_drops_only_that_file(self):
        backend = MemoryBackend()
        files = []
        for name in ("a", "b", "c"):
            page_file = backend.create(name)
            for index in range(4):
                page_file.append_page(name.encode() * (index + 1))
            files.append(page_file)
        cache = PageCache(1024 * 1024)
        for page_file in files:
            for index in range(4):
                cache.read_page(page_file, index)
        cache.invalidate_file("b")
        assert len(cache) == 8
        for index in range(4):
            assert cache.peek("a", index) is not None
            assert cache.peek("b", index) is None
            assert cache.peek("c", index) is not None

    def test_invalidate_unknown_file_is_noop(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        cache.read_page(page_file, 0)
        cache.invalidate_file("never-cached")
        assert len(cache) == 1

    def test_index_survives_evictions(self):
        """Pages evicted by LRU must leave the file index consistent."""
        backend, page_file = _backend_with_file(pages=10)
        cache = PageCache(3 * PAGE_SIZE)
        for index in range(10):
            cache.read_page(page_file, index)
        # Pages 0..6 were evicted; invalidation must only touch 7, 8, 9 and
        # must not fail on the evicted ones.
        cache.invalidate_file(page_file.name)
        assert len(cache) == 0
        # The cache still works afterwards.
        cache.read_page(page_file, 0)
        assert cache.peek(page_file.name, 0) is not None

    def test_invalidate_then_reread_misses(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        cache.read_page(page_file, 2)
        cache.invalidate_file(page_file.name)
        cache.read_page(page_file, 2)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_interleaved_invalidations_and_evictions(self):
        """Stress the index: many files, invalidations between evictions."""
        backend = MemoryBackend()
        files = []
        for n in range(6):
            page_file = backend.create(f"f{n}")
            for index in range(5):
                page_file.append_page(bytes([n, index]))
            files.append(page_file)
        cache = PageCache(8 * PAGE_SIZE)
        for round_number in range(3):
            for page_file in files:
                for index in range(5):
                    cache.read_page(page_file, index)
                if round_number == 1:
                    cache.invalidate_file(page_file.name)
        assert len(cache) <= 8
        # Internal consistency: every cached entry is tracked by the index
        # and vice versa.
        indexed = {(name, page) for name, pages in cache._file_pages.items()
                   for page in pages}
        assert indexed == set(cache._entries)

    def test_capacity_zero_invalidate_passthrough(self):
        backend, page_file = _backend_with_file()
        cache = PageCache(0)
        cache.read_page(page_file, 0)
        cache.invalidate_file(page_file.name)  # nothing cached: no-op
        assert len(cache) == 0
        assert cache.stats.misses == 2 - 1  # only the one read so far


class TestCacheStatsAccounting:
    def test_clear_preserves_stats(self):
        """Benchmarks clear the cache between batches but keep the counters."""
        backend, page_file = _backend_with_file()
        cache = PageCache(1024 * 1024)
        cache.read_page(page_file, 0)
        cache.read_page(page_file, 0)
        cache.clear()
        assert len(cache) == 0
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        # After clear() the same page misses again and the index repopulates.
        cache.read_page(page_file, 0)
        assert cache.stats.misses == 2
        assert cache.peek(page_file.name, 0) is not None

    def test_reset_zeroes_all_counters(self):
        backend, page_file = _backend_with_file(pages=5)
        cache = PageCache(2 * PAGE_SIZE)
        for index in range(5):
            cache.read_page(page_file, index)
        assert cache.stats.evictions == 3
        cache.stats.reset()
        assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions) == (0, 0, 0)
        assert cache.stats.accesses == 0
        assert cache.stats.hit_ratio == 0.0
        # Entries survive a stats reset; only counters are zeroed.
        assert len(cache) == 2

    def test_eviction_counter_tracks_lru_evictions(self):
        backend, page_file = _backend_with_file(pages=6)
        cache = PageCache(2 * PAGE_SIZE)
        for index in range(6):
            cache.read_page(page_file, index)
        assert cache.stats.evictions == 4
        assert cache.stats.misses == 6
        assert cache.stats.hits == 0
