"""Tests for the red-black tree underlying the write stores."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rbtree import RedBlackTree


class TestBasicOperations:
    def test_empty_tree(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert not tree
        assert list(tree) == []
        assert 5 not in tree

    def test_insert_and_lookup(self):
        tree = RedBlackTree()
        tree.insert(3, "three")
        tree.insert(1, "one")
        tree.insert(2, "two")
        assert len(tree) == 3
        assert tree[1] == "one"
        assert tree[2] == "two"
        assert tree[3] == "three"
        assert tree.get(4) is None
        assert tree.get(4, "missing") == "missing"

    def test_getitem_missing_raises(self):
        tree = RedBlackTree()
        with pytest.raises(KeyError):
            tree[42]

    def test_insert_replaces_existing_value(self):
        tree = RedBlackTree()
        tree.insert("key", 1)
        tree.insert("key", 2)
        assert len(tree) == 1
        assert tree["key"] == 2

    def test_setitem_and_delitem(self):
        tree = RedBlackTree()
        tree["a"] = 1
        tree["b"] = 2
        del tree["a"]
        assert "a" not in tree
        assert "b" in tree

    def test_delete_returns_value(self):
        tree = RedBlackTree()
        tree.insert(10, "ten")
        assert tree.delete(10) == "ten"
        assert len(tree) == 0

    def test_delete_missing_raises(self):
        tree = RedBlackTree()
        tree.insert(1, "one")
        with pytest.raises(KeyError):
            tree.delete(2)

    def test_pop_with_default(self):
        tree = RedBlackTree()
        assert tree.pop(1, None) is None
        tree.insert(1, "x")
        assert tree.pop(1, None) == "x"
        with pytest.raises(KeyError):
            tree.pop(1)

    def test_clear(self):
        tree = RedBlackTree()
        for i in range(10):
            tree.insert(i)
        tree.clear()
        assert len(tree) == 0
        assert list(tree) == []

    def test_min_max_keys(self):
        tree = RedBlackTree()
        with pytest.raises(KeyError):
            tree.min_key()
        with pytest.raises(KeyError):
            tree.max_key()
        for value in [5, 3, 9, 1, 7]:
            tree.insert(value)
        assert tree.min_key() == 1
        assert tree.max_key() == 9


class TestIteration:
    def test_items_sorted(self):
        tree = RedBlackTree()
        values = [5, 2, 9, 1, 7, 3]
        for v in values:
            tree.insert(v, v * 10)
        assert [k for k, _ in tree.items()] == sorted(values)
        assert list(tree.keys()) == sorted(values)
        assert list(tree.values()) == [v * 10 for v in sorted(values)]

    def test_items_from(self):
        tree = RedBlackTree()
        for v in range(0, 20, 2):
            tree.insert(v)
        assert [k for k, _ in tree.items_from(7)] == [8, 10, 12, 14, 16, 18]
        assert [k for k, _ in tree.items_from(8)] == [8, 10, 12, 14, 16, 18]
        assert [k for k, _ in tree.items_from(100)] == []

    def test_items_range(self):
        tree = RedBlackTree()
        for v in range(10):
            tree.insert(v)
        assert [k for k, _ in tree.items_range(3, 7)] == [3, 4, 5, 6]
        assert [k for k, _ in tree.items_range(7, 3)] == []

    def test_tuple_keys_range(self):
        """The write store uses 5-tuples as keys; range scans must work."""
        tree = RedBlackTree()
        for block in range(5):
            for cp in range(3):
                tree.insert((block, 1, 0, 0, cp), f"{block}:{cp}")
        start = (2, 0, 0, 0, 0)
        stop = (3, 0, 0, 0, 0)
        keys = [k for k, _ in tree.items_range(start, stop)]
        assert keys == [(2, 1, 0, 0, 0), (2, 1, 0, 0, 1), (2, 1, 0, 0, 2)]


class TestFloorCeiling:
    def test_ceiling_and_floor(self):
        tree = RedBlackTree()
        for v in [10, 20, 30]:
            tree.insert(v)
        assert tree.ceiling(15) == (20, None)
        assert tree.ceiling(20) == (20, None)
        assert tree.ceiling(31) is None
        assert tree.floor(25) == (20, None)
        assert tree.floor(10) == (10, None)
        assert tree.floor(5) is None


class TestInvariants:
    def test_invariants_after_random_operations(self):
        tree = RedBlackTree()
        rng = random.Random(7)
        reference = {}
        for _ in range(2000):
            key = rng.randrange(300)
            if rng.random() < 0.6 or key not in reference:
                tree.insert(key, key)
                reference[key] = key
            else:
                tree.delete(key)
                del reference[key]
        assert tree.check_invariants()
        assert sorted(reference) == [k for k, _ in tree.items()]

    def test_sequential_insert_balanced(self):
        tree = RedBlackTree()
        for i in range(1000):
            tree.insert(i)
        assert tree.check_invariants()
        assert len(tree) == 1000


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=100))))
def test_matches_dict_model(operations):
    """Property: the tree behaves like a dict with sorted iteration."""
    tree = RedBlackTree()
    model = {}
    for is_insert, key in operations:
        if is_insert:
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            expected = model.pop(key, None)
            actual = tree.pop(key, None)
            assert actual == expected
    assert [k for k, _ in tree.items()] == sorted(model)
    assert len(tree) == len(model)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=300),
       st.integers(min_value=0, max_value=10_000))
def test_items_from_matches_sorted_slice(keys, start):
    tree = RedBlackTree()
    for key in keys:
        tree.insert(key)
    expected = sorted(k for k in keys if k >= start)
    assert [k for k, _ in tree.items_from(start)] == expected
