"""Concurrent-reader regressions: live cursors vs. checkpoint/maintenance.

The bug this suite pins down: before snapshot isolation, a paginated or
suspended cursor kept :class:`~repro.core.read_store.ReadStoreReader` handles
into run files that ``maintain()`` (compaction) or ``checkpoint()``-triggered
retirement would delete out from under it.  On :class:`MemoryBackend` the
deleted pages stayed readable (the Python list lives on), which is why the
race survived six PRs of green tests; on :class:`DiskBackend` the file is
really gone and the cursor dies with ``IndexError: page N out of range`` --
or worse, silently resumes over a half-merged view.

Post-PR, every query attempt and every cursor pins a
:class:`~repro.core.catalogue.CatalogueSnapshot`; retirement defers file
deletion until the last pin referencing the old catalogue version drops.
The acceptance invariant -- *no run file is ever deleted while a pinned
reader holds it* -- is enforced here mechanically by a delete-guard backend
wrapper in the stress test.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro import (
    Backlog,
    BacklogConfig,
    DiskBackend,
    FileSystem,
    FileSystemConfig,
    QuerySpec,
    SnapshotManagerAuthority,
)
from repro.baselines.brute_force import BruteForceQuerier

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20100223"))

# Small partitions so a modest block range spans several partitions and a
# handful of checkpoints stacks several L0 runs per partition -- i.e. real
# compaction work for ``maintain()`` to retire files with.
SMALL_PARTITIONS = dict(partition_size_blocks=256, narrow_dispatch_max_runs=0)

# Churn writes land far above every static block so they can never collide
# with the oracle-checked range.
CHURN_BASE = 1 << 22


def _disk_backlog(tmp_path, backend=None):
    backend = backend or DiskBackend(str(tmp_path / "runs"))
    return Backlog(backend=backend, config=BacklogConfig(**SMALL_PARTITIONS))


def _populate_static(backlog, blocks=2048, rounds=8):
    """``blocks`` static references flushed across ``rounds`` checkpoints."""
    per_round = blocks // rounds
    for round_index in range(rounds):
        for i in range(round_index * per_round, (round_index + 1) * per_round):
            backlog.add_reference(block=i, inode=1 + (i % 31), offset=i, line=0)
        backlog.checkpoint()
    return {(i, 1 + (i % 31), i) for i in range(blocks)}


def _churn_round(backlog, rng, round_index):
    for i in range(32):
        backlog.add_reference(block=CHURN_BASE + rng.randrange(512),
                              inode=997, offset=round_index * 32 + i, line=0)
    backlog.checkpoint()


# --------------------------------------------------------------- regression


class TestMidStreamCursor:
    """The deterministic form of the race: one thread, a suspended cursor."""

    def test_cursor_survives_checkpoint_and_maintain_midstream(self, tmp_path):
        """A cursor opened before maintenance must finish its own snapshot.

        Pre-PR this dies on DiskBackend with ``IndexError: page N out of
        range`` once compaction deletes the L0 files the suspended cursor
        still holds readers into.
        """
        backlog = _disk_backlog(tmp_path)
        expected = _populate_static(backlog)

        cursor = backlog.select(QuerySpec(first_block=0, num_blocks=2048))
        seen = []
        for _ in range(10):                       # suspend mid-stream
            ref = next(cursor)
            seen.append((ref.block, ref.inode, ref.offset))

        rng = random.Random(CHAOS_SEED)
        for round_index in range(4):              # retire the cursor's files
            _churn_round(backlog, rng, round_index)
        backlog.maintain()

        for ref in cursor:                        # drain after the churn
            seen.append((ref.block, ref.inode, ref.offset))

        assert set(seen) == expected
        assert len(seen) == len(expected)         # no replays either
        assert backlog.catalogue.pinned_snapshots() == 0
        # The last release reclaimed every deferred file.
        assert backlog.run_manager.deferred_run_names() == []

    def test_paginated_cursor_survives_maintenance_between_pages(self, tmp_path):
        """Resume tokens must re-enter the *current* catalogue correctly.

        Each page pins a fresh snapshot, so pages straddling a maintenance
        pass see different physical runs -- but the same logical answers.
        """
        backlog = _disk_backlog(tmp_path)
        expected = _populate_static(backlog)

        seen = []
        token = None
        rng = random.Random(CHAOS_SEED + 1)
        page_index = 0
        while True:
            spec = QuerySpec(first_block=0, num_blocks=2048, limit=97,
                             resume_token=token)
            page = backlog.select(spec)
            for ref in page:
                seen.append((ref.block, ref.inode, ref.offset))
            if page.exhausted:
                break
            token = page.resume_token
            # Maintenance (and churn checkpoints) between *every* page.
            _churn_round(backlog, rng, page_index)
            if page_index % 2 == 0:
                backlog.maintain()
            page_index += 1

        assert set(seen) == expected
        assert len(seen) == len(expected)
        assert backlog.catalogue.pinned_snapshots() == 0


# ----------------------------------------------------- oracle-checked thread


class TestCursorVsMaintainerThread:
    """The issue's headline scenario: a paginating reader in one thread,
    checkpoints and compaction in another, answers checked against the
    brute-force baseline."""

    def test_whole_device_cursor_races_maintenance(self, tmp_path):
        backend = DiskBackend(str(tmp_path / "runs"))
        backlog = Backlog(backend=backend,
                          config=BacklogConfig(**SMALL_PARTITIONS))
        fs = FileSystem(FileSystemConfig(ops_per_cp=10 ** 9, auto_cp=False),
                        listeners=[backlog])
        backlog.set_version_authority(SnapshotManagerAuthority(fs))

        # Static files populated first so their physical blocks sit below
        # everything the churn file will ever allocate.
        for _ in range(40):
            fs.create_file(num_blocks=8)
            if fs.volume().inodes and len(fs.volume().inodes) % 8 == 0:
                fs.take_consistency_point()
        fs.take_consistency_point()
        static_limit = 1 + max(
            inode.physical_block(i)
            for inode in fs.volume().inodes.values()
            for i in range(inode.size_blocks))
        oracle = BruteForceQuerier(fs).query_range(0, static_limit)
        assert oracle

        churn_inode = fs.create_file(num_blocks=4)
        fs.take_consistency_point()

        errors = []
        seen = {}

        def reader():
            try:
                token = None
                while True:
                    page = backlog.select(QuerySpec(
                        first_block=0, num_blocks=static_limit,
                        limit=33, resume_token=token))
                    for ref in page:
                        seen[(ref.block, ref.inode, ref.offset, ref.line)] = ref
                    if page.exhausted:
                        return
                    token = page.resume_token
                    time.sleep(0.001)     # let the maintainer interleave
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        rng = random.Random(CHAOS_SEED + 2)
        round_index = 0
        while thread.is_alive() and round_index < 200:
            fs.write(churn_inode, rng.randrange(4), num_blocks=1)
            fs.append(churn_inode, num_blocks=1)
            fs.take_consistency_point()
            if round_index % 3 == 2:
                backlog.maintain()
            round_index += 1
        thread.join()

        assert not errors, errors
        for block, inode, offset, line, version in oracle:
            ref = seen.get((block, inode, offset, line))
            assert ref is not None, (block, inode, offset, line)
            assert ref.covers_version(version), (ref, version)
        assert backlog.catalogue.pinned_snapshots() == 0
        assert backlog.run_manager.deferred_run_names() == []


# ------------------------------------------------------------ chaos stress


class _DeleteGuard:
    """Backend wrapper enforcing the acceptance invariant on every delete.

    If any code path ever deletes a run file while a pinned catalogue
    snapshot still references it, the violation is recorded (and the test
    fails) instead of surfacing later as a flaky read error.
    """

    def __init__(self, inner):
        self._inner = inner
        self.manager = None           # wired after the Backlog exists
        self.violations = []

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)

    def delete(self, name):
        manager = self.manager
        if manager is not None and name in manager.pinned_run_names():
            self.violations.append(name)
        self._inner.delete(name)


class TestConcurrentReaderStress:
    def test_mixed_readers_race_checkpoint_maintain_relocate_quarantine(
            self, tmp_path):
        guard = _DeleteGuard(DiskBackend(str(tmp_path / "runs")))
        backlog = _disk_backlog(tmp_path, backend=guard)
        guard.manager = backlog.run_manager

        static_blocks = 1024
        expected = _populate_static(backlog, blocks=static_blocks, rounds=8)
        by_block = {}
        for block, inode, offset in expected:
            by_block.setdefault(block, set()).add((inode, offset))

        stop = threading.Event()
        errors = []

        def guarded(fn):
            def runner():
                try:
                    fn()
                except Exception as exc:  # pragma: no cover - regression
                    errors.append(exc)
                    stop.set()
            return runner

        def full_scan_reader():
            rng = random.Random(CHAOS_SEED + 10)
            while not stop.is_set():
                token, seen = None, set()
                while True:
                    page = backlog.select(QuerySpec(
                        first_block=0, num_blocks=static_blocks,
                        limit=rng.choice([61, 97, 151]), resume_token=token))
                    seen.update((r.block, r.inode, r.offset) for r in page)
                    if page.exhausted:
                        break
                    token = page.resume_token
                assert seen == expected

        def live_range_reader():
            rng = random.Random(CHAOS_SEED + 11)
            while not stop.is_set():
                first = rng.randrange(static_blocks - 64)
                refs = backlog.select(QuerySpec(
                    first_block=first, num_blocks=64, live_only=True)).all()
                seen = {(r.block, r.inode, r.offset) for r in refs}
                wanted = {(b, i, o) for (b, i, o) in expected
                          if first <= b < first + 64}
                assert seen == wanted

        def inode_filter_reader():
            rng = random.Random(CHAOS_SEED + 12)
            while not stop.is_set():
                inode = 1 + rng.randrange(31)
                refs = backlog.select(QuerySpec(
                    first_block=0, num_blocks=static_blocks,
                    inodes=frozenset({inode}))).all()
                seen = {(r.block, r.inode, r.offset) for r in refs}
                wanted = {(b, i, o) for (b, i, o) in expected if i == inode}
                assert seen == wanted

        def point_reader():
            rng = random.Random(CHAOS_SEED + 13)
            while not stop.is_set():
                block = rng.randrange(static_blocks)
                owners = {(r.inode, r.offset) for r in backlog.query(block)}
                assert owners == by_block.get(block, set())

        readers = [threading.Thread(target=guarded(fn)) for fn in
                   (full_scan_reader, live_range_reader,
                    inode_filter_reader, point_reader)]
        for thread in readers:
            thread.start()

        # One writer/maintainer thread (this one): churn checkpoints,
        # compaction, relocation and quarantine, all against the same
        # catalogue the readers are pinned into.  Churn and quarantine are
        # confined to partitions above the static range so the readers'
        # oracle stays exact.
        churn_partition = CHURN_BASE // SMALL_PARTITIONS["partition_size_blocks"]
        rng = random.Random(CHAOS_SEED + 14)
        try:
            for round_index in range(25):
                if errors:
                    break
                _churn_round(backlog, rng, round_index)
                if round_index % 4 == 1:
                    backlog.maintain()
                if round_index % 5 == 2:
                    backlog.relocate_block(CHURN_BASE + rng.randrange(512))
                if round_index % 7 == 3:
                    victims = [
                        run.name
                        for partition in backlog.run_manager.partitions()
                        if partition >= churn_partition
                        for run in backlog.run_manager.runs_for(partition)]
                    if victims:
                        backlog.run_manager.quarantine_run(rng.choice(victims))
        finally:
            stop.set()
            for thread in readers:
                thread.join()

        assert not errors, errors
        assert not guard.violations, guard.violations
        assert backlog.catalogue.pinned_snapshots() == 0
        # With every pin dropped, retirement reclaims synchronously again.
        backlog.maintain()
        assert backlog.run_manager.deferred_run_names() == []
        # Quarantined files are excluded from the database size but kept on
        # disk for forensics.
        catalogued = {
            run.name
            for partition in backlog.run_manager.partitions()
            for run in backlog.run_manager.runs_for(partition)}
        for name in backlog.run_manager.quarantined:
            assert name not in catalogued


# ------------------------------------------------- backend differential


class TestEveryBackend:
    """The snapshot-isolation contract, re-run on every storage backend.

    The original race only *manifested* on DiskBackend (MemoryBackend kept
    deleted pages readable); this leg keeps all three backends honest --
    including the image backend, whose deleted files return their pages to a
    free list that concurrent appends immediately reuse.
    """

    def test_cursor_survives_maintenance_on_every_backend(
            self, tmp_path, backend_factory):
        backlog = _disk_backlog(tmp_path, backend=backend_factory())
        expected = _populate_static(backlog, blocks=512, rounds=4)

        cursor = backlog.select(QuerySpec(first_block=0, num_blocks=512))
        seen = []
        for _ in range(10):                       # suspend mid-stream
            ref = next(cursor)
            seen.append((ref.block, ref.inode, ref.offset))

        rng = random.Random(CHAOS_SEED)
        for round_index in range(3):              # retire the cursor's files
            _churn_round(backlog, rng, round_index)
        backlog.maintain()

        for ref in cursor:                        # drain after the churn
            seen.append((ref.block, ref.inode, ref.offset))

        assert set(seen) == expected
        assert len(seen) == len(expected)         # no replays either
        assert backlog.catalogue.pinned_snapshots() == 0
        assert backlog.run_manager.deferred_run_names() == []
