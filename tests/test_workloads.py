"""Tests for the workload generators and trace player."""

from __future__ import annotations

import pytest

from repro.fsim.filesystem import FileSystem, FileSystemConfig
from repro.workloads.apps import (
    AppWorkload,
    AppWorkloadConfig,
    AppWorkloadResult,
    dbench_like,
    postmark_like,
    varmail_like,
)
from repro.workloads.microbench import create_files, delete_files
from repro.workloads.nfs_trace import (
    NFSTraceConfig,
    NFSTracePlayer,
    generate_eecs03_like_trace,
)
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig
from tests.conftest import build_system


def _plain_fs():
    return FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False, dedup=None))


class TestSyntheticWorkload:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(num_cps=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(small_file_fraction=2.0)

    def test_reaches_target_ops_per_cp(self):
        fs = _plain_fs()
        config = SyntheticWorkloadConfig(num_cps=5, ops_per_cp=300, initial_files=30)
        result = SyntheticWorkload(config).run(fs)
        assert result.cps_taken == 5
        assert all(ops >= 300 for ops in result.per_cp_block_ops)
        assert fs.counters.consistency_points >= 5

    def test_deterministic_given_seed(self):
        config = SyntheticWorkloadConfig(num_cps=3, ops_per_cp=200, initial_files=20, seed=9)
        first = SyntheticWorkload(config).run(_plain_fs())
        second = SyntheticWorkload(config).run(_plain_fs())
        assert first.per_cp_block_ops == second.per_cp_block_ops
        assert first.files_created == second.files_created

    def test_on_cp_callback_invoked(self):
        fs = _plain_fs()
        seen = []
        config = SyntheticWorkloadConfig(num_cps=3, ops_per_cp=100, initial_files=20)
        SyntheticWorkload(config).run(fs, on_cp=lambda cp, _: seen.append(cp))
        assert len(seen) == 3
        assert seen == sorted(seen)

    def test_clone_churn_happens_at_configured_rate(self):
        fs = _plain_fs()
        config = SyntheticWorkloadConfig(
            num_cps=30, ops_per_cp=100, initial_files=20,
            clones_per_100_cps=100.0, clone_delete_probability=0.0,
        )
        result = SyntheticWorkload(config).run(fs)
        assert result.clones_created > 5
        assert len(fs.volumes) > 1

    def test_attached_backlog_stays_consistent(self):
        from repro.core.verify import verify_backlog

        fs, backlog = build_system()
        config = SyntheticWorkloadConfig(num_cps=5, ops_per_cp=200, initial_files=20)
        SyntheticWorkload(config).run(fs)
        report = verify_backlog(fs, backlog)
        assert report.ok, report.mismatches[:5]


class TestNFSTrace:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NFSTraceConfig(hours=0)

    def test_trace_is_deterministic_and_shaped(self):
        config = NFSTraceConfig(hours=24, base_ops_per_hour=500)
        first = list(generate_eecs03_like_trace(config))
        second = list(generate_eecs03_like_trace(config))
        assert first == second
        hours = {op.hour for op in first}
        assert hours == set(range(24))
        kinds = {op.kind for op in first}
        assert {"write", "read", "create"} <= kinds

    def test_write_read_ratio_is_write_rich(self):
        """Roughly one write per two reads among data operations (§6.2.2)."""
        config = NFSTraceConfig(hours=48, base_ops_per_hour=800)
        ops = list(generate_eecs03_like_trace(config))
        writes = sum(1 for op in ops if op.kind == "write")
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.2 < writes / reads < 0.75

    def test_truncate_burst_present(self):
        config = NFSTraceConfig(hours=96, base_ops_per_hour=300,
                                truncate_burst_hours=(50, 62))
        ops = list(generate_eecs03_like_trace(config))
        in_burst = [op for op in ops if 50 <= op.hour < 62]
        outside = [op for op in ops if op.hour < 50]
        burst_rate = sum(1 for op in in_burst if op.kind == "truncate") / len(in_burst)
        base_rate = sum(1 for op in outside if op.kind == "truncate") / len(outside)
        assert burst_rate > 3 * base_rate

    def test_player_applies_trace(self):
        fs = _plain_fs()
        player = NFSTracePlayer(fs, ops_per_cp=100)
        config = NFSTraceConfig(hours=4, base_ops_per_hour=300)
        summaries = player.play(generate_eecs03_like_trace(config))
        assert len(summaries) == 4
        assert fs.counters.block_ops > 0
        assert fs.counters.consistency_points >= 4  # at least one per hour
        assert all(s.cps_taken >= 1 for s in summaries)

    def test_player_hour_callback(self):
        fs = _plain_fs()
        player = NFSTracePlayer(fs, ops_per_cp=100)
        seen = []
        player.play(
            generate_eecs03_like_trace(NFSTraceConfig(hours=3, base_ops_per_hour=200)),
            on_hour=lambda summary, _: seen.append(summary.hour),
        )
        assert seen == [0, 1, 2]

    def test_player_validation(self):
        with pytest.raises(ValueError):
            NFSTracePlayer(_plain_fs(), ops_per_cp=0)


class TestMicrobench:
    def test_create_and_delete_cycle(self):
        fs = _plain_fs()
        created = create_files(fs, count=100, blocks_per_file=1, ops_per_cp=50)
        assert created.operations == 100
        assert len(created.inodes) == 100
        assert created.ms_per_op > 0
        assert created.cps_taken >= 2
        deleted = delete_files(fs, created.inodes, ops_per_cp=50)
        assert deleted.operations == 100
        assert fs.list_files() == []

    def test_overhead_vs(self):
        fs = _plain_fs()
        base = create_files(fs, 50, 1, 25)
        other = create_files(fs, 50, 1, 25)
        assert isinstance(other.overhead_vs(base), float)

    def test_validation(self):
        fs = _plain_fs()
        with pytest.raises(ValueError):
            create_files(fs, 0, 1, 10)
        with pytest.raises(ValueError):
            delete_files(fs, [], 0)


class TestAppWorkloads:
    def test_presets_have_expected_shape(self):
        assert dbench_like().threads == 4
        assert varmail_like().threads == 16
        assert postmark_like().threads == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AppWorkloadConfig(name="x", num_ops=0)
        with pytest.raises(ValueError):
            AppWorkloadConfig(name="x", mix=(("fly", 1.0),))
        with pytest.raises(ValueError):
            AppWorkloadConfig(name="x", mix=())

    def test_run_produces_throughput(self):
        fs = _plain_fs()
        result = AppWorkload(dbench_like(num_ops=400)).run(fs)
        assert result.operations == 400
        assert result.ops_per_second > 0
        assert result.block_ops > 0
        assert result.cps_taken >= 1

    def test_overhead_vs_other_run(self):
        base = AppWorkload(postmark_like(num_ops=300)).run(_plain_fs())
        other = AppWorkload(postmark_like(num_ops=300)).run(_plain_fs())
        # Identical runs now finish in a few milliseconds, so scheduler
        # jitter between the two wall-clock timings can be large in relative
        # terms; only sanity-check the sign convention end to end and pin the
        # arithmetic down with deterministic results instead.
        assert other.overhead_vs(base) < 1.0  # a run is never infinitely slower
        fast = AppWorkloadResult("a", operations=100, seconds=1.0, cps_taken=1, block_ops=10)
        slow = AppWorkloadResult("b", operations=100, seconds=2.0, cps_taken=1, block_ops=10)
        assert slow.overhead_vs(fast) == pytest.approx(0.5)
        assert fast.overhead_vs(slow) == pytest.approx(-1.0)
        assert fast.overhead_vs(fast) == pytest.approx(0.0)

    def test_varmail_takes_many_cps(self):
        fs = _plain_fs()
        result = AppWorkload(varmail_like(num_ops=600)).run(fs)
        # Frequent syncs force extra consistency points beyond the op threshold.
        assert result.cps_taken > 600 // 256
