"""Tests for the on-disk read-store runs (dense bottom-up B-trees)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.read_store import ReadStoreReader, ReadStoreWriter
from repro.core.records import CombinedRecord, FromRecord, INFINITY, ToRecord
from repro.fsim.blockdev import MemoryBackend
from repro.fsim.cache import PageCache


def _build(records, table="from", backend=None, name="p000000/from/L0_0000000001"):
    backend = backend or MemoryBackend()
    writer = ReadStoreWriter(backend, name, table)
    reader = writer.build(iter(records))
    return backend, reader


def _from_records(count, stride=1):
    return [FromRecord(block=i * stride, inode=i % 7 + 1, offset=i % 3, line=0, from_cp=i % 11 + 1)
            for i in range(count)]


class TestBuild:
    def test_empty_input_creates_no_file(self):
        backend = MemoryBackend()
        writer = ReadStoreWriter(backend, "empty", "from")
        assert writer.build(iter([])) is None
        assert not backend.exists("empty")

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            ReadStoreWriter(MemoryBackend(), "x", "bogus")

    def test_unsorted_input_rejected(self):
        backend = MemoryBackend()
        writer = ReadStoreWriter(backend, "x", "from")
        records = [FromRecord(5, 1, 0, 0, 1), FromRecord(3, 1, 0, 0, 1)]
        with pytest.raises(ValueError):
            writer.build(iter(records))

    def test_build_writes_no_reads(self):
        """Constructing a run is pure sequential writing (§5.1).

        The only read allowed is the single header-page read performed when
        the freshly written run is opened for use afterwards.
        """
        backend = MemoryBackend()
        writer = ReadStoreWriter(backend, "x", "from")
        writer.build(iter(_from_records(5000)))
        assert backend.stats.pages_read <= 1
        assert backend.stats.pages_written > 0

    def test_header_fields(self):
        records = _from_records(1000)
        _, reader = _build(records)
        assert reader.num_records == 1000
        assert reader.table == "from"
        assert reader.record_size == 40
        assert reader.min_block == 0
        assert reader.max_block == 999
        assert reader.num_leaf_pages >= 1000 // reader.records_per_page


class TestIteration:
    def test_iter_all_roundtrip(self):
        records = _from_records(777)
        _, reader = _build(records)
        assert list(reader.iter_all()) == records

    def test_single_leaf_file(self):
        records = _from_records(3)
        _, reader = _build(records)
        assert reader.num_levels == 0
        assert list(reader.iter_all()) == records
        assert reader.records_for_block(1) == [records[1]]

    def test_multi_level_index(self):
        """Enough records to need at least two index levels."""
        records = _from_records(30_000)
        _, reader = _build(records)
        assert reader.num_levels >= 2
        assert reader.records_for_block(12_345) == [records[12_345]]

    def test_iter_from_positions_correctly(self):
        records = _from_records(500, stride=2)  # blocks 0, 2, 4, ...
        _, reader = _build(records)
        result = list(reader.iter_from(block=100))
        assert result[0].block == 100
        assert len(result) == 500 - 50
        # Start between two existing blocks.
        result = list(reader.iter_from(block=101))
        assert result[0].block == 102

    def test_records_for_block_range(self):
        records = _from_records(300)
        _, reader = _build(records)
        subset = reader.records_for_block_range(100, 20)
        assert [r.block for r in subset] == list(range(100, 120))
        assert reader.records_for_block_range(1000, 5) == []

    def test_combined_and_to_record_kinds(self):
        to_records = [ToRecord(i, 1, 0, 0, i + 1) for i in range(100)]
        _, reader = _build(to_records, table="to", name="p0/to/L0_1")
        assert list(reader.iter_all()) == to_records

        combined = [CombinedRecord(i, 1, 0, 0, 1, INFINITY if i % 2 else i + 2)
                    for i in range(100)]
        _, reader = _build(combined, table="combined", name="p0/combined/c_1")
        assert list(reader.iter_all()) == combined
        assert reader.record_size == 48


class TestBloomIntegration:
    def test_might_contain_block(self):
        records = _from_records(200, stride=10)  # blocks 0, 10, ..., 1990
        _, reader = _build(records)
        assert reader.might_contain_block(500)
        assert not reader.might_contain_block(5_000)  # outside min/max bounds
        assert not reader.might_contain_range(10_000, 50)
        assert reader.might_contain_range(0, 5)

    def test_bloom_reloaded_from_disk(self):
        backend, reader = _build(_from_records(100))
        fresh = ReadStoreReader(backend, reader.name)
        assert all(fresh.bloom.might_contain(r.block) for r in _from_records(100))


class TestCacheIntegration:
    def test_reads_go_through_cache(self):
        backend, reader = _build(_from_records(5000))
        cache = PageCache(4 * 1024 * 1024)
        cached_reader = ReadStoreReader(backend, reader.name, cache=cache)
        before = backend.stats.pages_read
        cached_reader.records_for_block(42)
        first_reads = backend.stats.pages_read - before
        assert first_reads > 0
        before = backend.stats.pages_read
        cached_reader.records_for_block(42)
        assert backend.stats.pages_read - before == 0  # served from cache
        assert cache.stats.hits > 0

    def test_open_missing_file(self):
        with pytest.raises(FileNotFoundError):
            ReadStoreReader(MemoryBackend(), "nope")

    def test_non_run_file_rejected(self):
        backend = MemoryBackend()
        page_file = backend.create("junk")
        page_file.append_page(b"garbage")
        with pytest.raises(ValueError):
            ReadStoreReader(backend, "junk")


_record_fields = st.tuples(
    st.integers(0, 10_000), st.integers(1, 100), st.integers(0, 50),
    st.integers(0, 4), st.integers(1, 500),
)


@settings(max_examples=25, deadline=None)
@given(st.lists(_record_fields, min_size=1, max_size=400))
def test_roundtrip_property(raw):
    """Property: any sorted record set written to a run reads back identically."""
    records = sorted({FromRecord(*fields) for fields in raw}, key=FromRecord.sort_key)
    _, reader = _build(records)
    assert list(reader.iter_all()) == records


@settings(max_examples=25, deadline=None)
@given(st.lists(_record_fields, min_size=1, max_size=300), st.integers(0, 10_000))
def test_iter_from_property(raw, start_block):
    """Property: iter_from(block) returns exactly the records with block >= start."""
    records = sorted({FromRecord(*fields) for fields in raw}, key=FromRecord.sort_key)
    _, reader = _build(records)
    expected = [r for r in records if r.block >= start_block]
    assert list(reader.iter_from(start_block)) == expected
