"""Differential tests for the partition-sharded flush/compaction executor.

The executor subsystem (``core/executor.py``) promises that worker counts are
*invisible* in the database: for any ``flush_workers`` / ``maintenance_workers``
the run files are byte-identical to the serial ones, the catalogue is
identical, and every query answers identically.  These tests hold the
parallel paths to that promise over the same seeded randomized workloads the
streaming-equivalence suite uses (clones, snapshots, relocations, multiple
lines), and additionally pin down the shared-structure races the executor
surfaced:

* ``RunManager.next_sequence`` is a read-modify-write on the sequence
  counter -- hammered here by concurrent ``write_run`` calls;
* ``IOStats`` counters are incremented from every worker at page
  granularity -- hammered through raw ``PageFile.append_page`` calls;
* the ``PageCache`` LRU is mutated by concurrent readers.

The cursor resume cache (session-scoped parked pipelines) is also locked to
the uncached re-seek path here: identical pages, and invalidation on every
database mutation.
"""

from __future__ import annotations

import threading
from typing import Dict, List

import pytest

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.cursor import QuerySpec
from repro.core.executor import PartitionExecutor
from repro.core.lsm import RunManager, parse_run_name
from repro.core.masking import ExplicitVersionAuthority
from repro.core.records import FromRecord
from repro.fsim.blockdev import MemoryBackend, PAGE_SIZE, ThrottledBackend
from repro.fsim.cache import PageCache

from tests.test_streaming_equivalence import (
    _all_blocks,
    _backend_bytes,
    _random_ops,
    _replay,
)


def _workload_backlog(flush_workers: int, maintenance_workers: int,
                      seed: int) -> Backlog:
    authority = ExplicitVersionAuthority()
    config = BacklogConfig(
        partition_size_blocks=64,   # small partitions: real fan-out per flush
        flush_workers=flush_workers,
        maintenance_workers=maintenance_workers,
    )
    backlog = Backlog(backend=MemoryBackend(), config=config,
                      version_authority=authority)
    _replay(backlog, authority, _random_ops(seed))
    return backlog


# ------------------------------------------------- parallel == serial


@pytest.mark.parametrize("seed", [1, 23, 77])
def test_parallel_flush_and_compaction_byte_identical(seed):
    """Workers in {1, 4}: same files byte for byte, same answers, always."""
    serial = _workload_backlog(1, 1, seed)
    parallel = _workload_backlog(4, 4, seed)

    # After the workload's flushes (no maintenance yet): identical L0 runs.
    assert _backend_bytes(serial.backend) == _backend_bytes(parallel.backend)

    blocks = _all_blocks(_random_ops(seed))
    top = max(blocks) + 2
    for first, width in [(b, 1) for b in blocks] + [(0, top)]:
        assert serial.query_range(first, width) == parallel.query_range(first, width)

    # After maintenance: identical compacted runs and unchanged answers.
    result_s = serial.maintain()
    result_p = parallel.maintain()
    assert _backend_bytes(serial.backend) == _backend_bytes(parallel.backend)
    assert (result_s.records_in, result_s.records_out, result_s.records_purged) == \
           (result_p.records_in, result_p.records_out, result_p.records_purged)
    for first, width in [(b, 1) for b in blocks] + [(0, top)]:
        assert serial.query_range(first, width) == parallel.query_range(first, width)

    # A second workload round on top of the compacted state keeps the two in
    # lock step through mixed L0 + Combined databases as well.
    more = _random_ops(seed + 1000, num_cps=4, line_base=10)
    authority_s = serial.version_authority
    authority_p = parallel.version_authority
    _replay(serial, authority_s, more)
    _replay(parallel, authority_p, more)
    serial.maintain()
    parallel.maintain()
    assert _backend_bytes(serial.backend) == _backend_bytes(parallel.backend)

    parallel.close()
    serial.close()


def test_parallel_flush_registers_runs_in_allocation_order():
    """The catalogue's per-(partition, table) run order must be sequence order."""
    backlog = _workload_backlog(4, 4, seed=7)
    manager = backlog.run_manager
    for partition in manager.partitions():
        for table in ("from", "to", "combined"):
            sequences = [parse_run_name(run.name)[3]
                         for run in manager.runs_for(partition, table)]
            assert sequences == sorted(sequences)
    backlog.close()


def test_parallel_flush_counts_pages_exactly():
    """CheckpointStats.pages_written must not lose updates across workers."""
    serial = _workload_backlog(1, 1, seed=42)
    parallel = _workload_backlog(4, 4, seed=42)
    assert [cp.pages_written for cp in serial.stats.checkpoints] == \
           [cp.pages_written for cp in parallel.stats.checkpoints]
    # The backend counter agrees with the files actually on disk.
    assert parallel.backend.stats.pages_written == parallel.backend.total_pages()
    parallel.close()
    serial.close()


def test_parallel_workers_are_actually_used():
    """With 4 workers and many partitions, more than one thread does work."""
    backlog = _workload_backlog(4, 4, seed=99)
    backlog.maintain()
    assert backlog.stats.flush_pool.jobs > 0
    assert backlog.stats.maintenance_pool.jobs > 0
    assert len(backlog.stats.flush_pool.workers) > 1
    assert backlog.stats.flush_pool.busy_seconds >= \
        backlog.stats.flush_pool.max_worker_seconds > 0.0
    backlog.close()


# ------------------------------------------------- shared-structure races


def test_concurrent_write_run_sequence_and_page_accounting():
    """Hammer write_run from many threads: unique names, exact counters.

    This is the regression test for the ``next_sequence`` /
    ``IOStats.pages_written`` read-modify-write races: before the locks, two
    workers could observe the same sequence number (one run file silently
    overwriting the other) or lose counter increments.
    """
    backend = MemoryBackend()
    manager = RunManager(backend)
    num_threads, runs_per_thread, records_per_run = 8, 25, 120
    errors: List[BaseException] = []
    barrier = threading.Barrier(num_threads)

    def hammer(thread_index: int) -> None:
        try:
            barrier.wait()
            for index in range(runs_per_thread):
                records = [
                    FromRecord(block, 1 + thread_index, index, 0, 1)
                    for block in range(records_per_run)
                ]
                manager.write_run(thread_index, "from", "L0", iter(records), 1 << 12)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors

    total_runs = num_threads * runs_per_thread
    names = [name for name in backend.list_files() if parse_run_name(name)]
    sequences = [parse_run_name(name)[3] for name in names]
    assert len(names) == total_runs
    assert len(set(sequences)) == total_runs, "sequence numbers must be unique"
    assert manager.run_count("from") == total_runs
    assert manager.next_sequence() == total_runs + 1
    # Exact I/O accounting: the locked counters match the stored pages.
    assert backend.stats.pages_written == backend.total_pages()
    assert backend.stats.files_created == total_runs


def test_concurrent_page_appends_do_not_lose_counter_updates():
    """Raw ``append_page`` from many threads: the counter stays exact."""
    backend = MemoryBackend()
    num_threads, pages_per_thread = 8, 400
    files = [backend.create(f"hammer/{i}") for i in range(num_threads)]
    barrier = threading.Barrier(num_threads)

    def append(page_file) -> None:
        barrier.wait()
        for _ in range(pages_per_thread):
            page_file.append_page(b"x")

    threads = [threading.Thread(target=append, args=(f,)) for f in files]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert backend.stats.pages_written == num_threads * pages_per_thread
    assert backend.total_pages() == num_threads * pages_per_thread


def test_concurrent_cache_reads_stay_consistent():
    """Concurrent readers through one PageCache: no corruption, exact sizes."""
    backend = MemoryBackend()
    cache = PageCache(capacity_bytes=64 * PAGE_SIZE)
    num_files, pages_per_file = 8, 32
    page_files = []
    for index in range(num_files):
        page_file = backend.create(f"c/{index}")
        for page in range(pages_per_file):
            page_file.append_page(bytes([index]) * 64)
        page_files.append(page_file)

    errors: List[BaseException] = []
    barrier = threading.Barrier(num_files)

    def read_all(page_file, index: int) -> None:
        try:
            barrier.wait()
            for _ in range(20):
                for page in range(pages_per_file):
                    data = cache.read_page(page_file, page)
                    assert data[0] == index
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=read_all, args=(f, i))
               for i, f in enumerate(page_files)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= cache.capacity_pages
    assert cache.stats.accesses == num_files * 20 * pages_per_file
    for page_file in page_files:
        cache.invalidate_file(page_file.name)
    assert len(cache) == 0


# ------------------------------------------------- executor semantics


def test_executor_preserves_submission_order():
    executor = PartitionExecutor(4)
    try:
        jobs = [(lambda i=i: i * i) for i in range(50)]
        assert executor.map(jobs) == [i * i for i in range(50)]
    finally:
        executor.close()


def test_executor_waits_for_all_jobs_before_raising():
    """A failing job must not leave siblings still running after map()."""
    executor = PartitionExecutor(4)
    finished = []

    def ok(i):
        finished.append(i)
        return i

    def boom():
        raise RuntimeError("job failed")

    try:
        jobs = [(lambda i=i: ok(i)) for i in range(10)]
        jobs.insert(3, boom)
        with pytest.raises(RuntimeError, match="job failed"):
            executor.map(jobs)
        assert sorted(finished) == list(range(10))
    finally:
        executor.close()


def test_executor_serial_mode_runs_inline():
    executor = PartitionExecutor(1)
    main_thread = threading.current_thread()
    seen = []
    executor.map([lambda: seen.append(threading.current_thread())] * 3)
    assert seen == [main_thread] * 3
    assert executor._pool is None  # no pool is ever created for workers=1


def test_throttled_backend_shares_accounting_and_contents():
    inner = MemoryBackend()
    backend = ThrottledBackend(inner, time_scale=0.0)
    page_file = backend.create("t/file")
    page_file.append_page(b"abc")
    assert inner.stats is backend.stats
    assert backend.stats.pages_written == 1
    assert backend.exists("t/file") and inner.exists("t/file")
    assert backend.open("t/file").read_page(0)[:3] == b"abc"
    assert backend.stats.pages_read == 1
    backend.delete("t/file")
    assert not inner.exists("t/file")
    with pytest.raises(ValueError):
        ThrottledBackend(inner, time_scale=-1.0)


# ------------------------------------------------- cursor resume cache


def _paginate(backlog: Backlog, num_blocks: int, page_size: int) -> List:
    spec = QuerySpec(0, num_blocks, limit=page_size)
    results: List = []
    token = None
    while True:
        page = backlog.select(spec.after(token))
        results.extend(page)
        token = page.resume_token
        if token is None:
            return results


@pytest.mark.parametrize("seed", [3, 57])
def test_resume_cache_pages_identical_to_uncached(seed):
    """Cached resumes must answer exactly like the re-seek path."""
    authority_c = ExplicitVersionAuthority()
    authority_u = ExplicitVersionAuthority()
    cached = Backlog(backend=MemoryBackend(), version_authority=authority_c,
                     config=BacklogConfig(partition_size_blocks=64,
                                          resume_cache_size=4))
    uncached = Backlog(backend=MemoryBackend(), version_authority=authority_u,
                       config=BacklogConfig(partition_size_blocks=64,
                                            resume_cache_size=0))
    ops = _random_ops(seed)
    _replay(cached, authority_c, ops)
    _replay(uncached, authority_u, ops)

    top = max(_all_blocks(ops)) + 2
    for page_size in (3, 7, 50):
        assert _paginate(cached, top, page_size) == _paginate(uncached, top, page_size)
    assert cached.stats.query.resume_cache_hits > 0
    assert uncached.stats.query.resume_cache_hits == 0

    # Filtered specs go through (and are keyed into) the cache as well.
    spec = QuerySpec(0, top, live_only=True, limit=4)
    expected, results, token = None, [], None
    while True:
        page = cached.select(spec.after(token))
        results.extend(page)
        token = page.resume_token
        if token is None:
            break
    expected = [ref for ref in uncached.select(QuerySpec(0, top, live_only=True))]
    assert results == expected


def test_resume_cache_invalidated_by_every_mutation():
    """Checkpoint, maintenance, relocation and updates all drop parked pages."""
    backlog = Backlog(backend=MemoryBackend(),
                      config=BacklogConfig(partition_size_blocks=64,
                                           resume_cache_size=4))
    for block in range(40):
        backlog.add_reference(block=block, inode=1, offset=block)
    backlog.checkpoint()

    def park_one() -> str:
        page = backlog.select(QuerySpec(0, 100, limit=5))
        list(page)
        return page.resume_token

    def resume_misses(token: str) -> bool:
        hits_before = backlog.stats.query.resume_cache_hits
        list(backlog.select(QuerySpec(0, 100).after(token)))
        return backlog.stats.query.resume_cache_hits == hits_before

    token = park_one()
    assert not resume_misses(token), "a parked page should resume from cache"

    # A checkpoint that flushes records buffered *before* the page was
    # parked: the mutation stamp is identical at resume time, so only the
    # flush-side invalidation can catch the changed run set.
    backlog.add_reference(block=91, inode=3, offset=50)
    token = park_one()
    backlog.checkpoint()
    assert resume_misses(token), "a data-flushing checkpoint must invalidate"

    for mutate in (
        lambda: backlog.maintain(),
        lambda: backlog.relocate_block(1),
        lambda: backlog.register_clone(5, 0, 1),
        lambda: backlog.add_reference(block=90, inode=2, offset=0),
    ):
        token = park_one()
        mutate()
        assert resume_misses(token), f"{mutate} must invalidate parked cursors"
        # The uncached resume still answers correctly afterwards.
        rest = list(backlog.select(QuerySpec(0, 100).after(token)))
        assert all(ref[:4] > tuple(QuerySpec(0, 100).after(token).resume_key)
                   for ref in rest)


def test_empty_checkpoint_preserves_parked_cursors():
    """Idle consistency points must not defeat a hot paginated scan."""
    backlog = Backlog(backend=MemoryBackend(),
                      config=BacklogConfig(partition_size_blocks=64,
                                           resume_cache_size=4))
    for block in range(30):
        backlog.add_reference(block=block, inode=1, offset=block)
    backlog.checkpoint()
    expected = backlog.query_range(0, 100)

    page = backlog.select(QuerySpec(0, 100, limit=10))
    results = list(page)
    backlog.checkpoint()   # empty write stores: flushes nothing
    hits_before = backlog.stats.query.resume_cache_hits
    rest = backlog.select(QuerySpec(0, 100).after(page.resume_token))
    results.extend(rest)
    assert backlog.stats.query.resume_cache_hits == hits_before + 1
    assert results == expected


def test_resume_cache_capacity_zero_disables_parking():
    backlog = Backlog(backend=MemoryBackend(),
                      config=BacklogConfig(resume_cache_size=0))
    for block in range(20):
        backlog.add_reference(block=block, inode=1, offset=block)
    backlog.checkpoint()
    page = backlog.select(QuerySpec(0, 100, limit=5))
    list(page)
    assert backlog._query_engine._parked == {}
    rest = list(backlog.select(QuerySpec(0, 100).after(page.resume_token)))
    assert [ref.block for ref in rest] == list(range(5, 20))
    assert backlog.stats.query.resume_cache_hits == 0


# ------------------------------------------------- read-side fan-out


def _query_backlog(query_workers: int, seed: int) -> Backlog:
    authority = ExplicitVersionAuthority()
    config = BacklogConfig(
        partition_size_blocks=64,   # many partitions: real read-side fan-out
        query_workers=query_workers,
    )
    backlog = Backlog(backend=MemoryBackend(), config=config,
                      version_authority=authority)
    _replay(backlog, authority, _random_ops(seed))
    return backlog


@pytest.mark.parametrize("seed", [1, 23, 77])
def test_query_fanout_answers_and_page_accounting_match_serial(seed):
    """query_workers in {1, 4}: identical answers and *exact* page counts.

    The fan-out contract (core/query.py): worker counts are invisible in the
    results, and per-query read attribution stays exact -- each worker drains
    its partition under its own read tally and the consuming thread folds the
    count back in, so ``QueryStats.pages_read`` (hence ``reads_per_query``)
    must equal the serial engine's to the page.
    """
    serial = _query_backlog(1, seed)
    fanned = _query_backlog(4, seed)
    try:
        blocks = _all_blocks(_random_ops(seed))
        top = max(blocks) + 2
        ranges = [(b, 1) for b in blocks] + [(0, 16), (top // 2, 40), (0, top)]

        def check_everywhere():
            serial.stats.query.reset()
            fanned.stats.query.reset()
            for first, width in ranges:
                assert serial.query_range(first, width) == \
                    fanned.query_range(first, width)
            assert fanned.stats.query.pages_read == serial.stats.query.pages_read
            assert fanned.stats.query.pages_read > 0
            assert fanned.stats.query.reads_per_query == \
                serial.stats.query.reads_per_query

        check_everywhere()           # mixed run + write-store state
        serial.maintain()
        fanned.maintain()
        check_everywhere()           # pure compacted state
        # The fan-out actually ran (and only on the fanned instance).
        assert fanned.stats.query_pool.dispatches > 0
        assert fanned.stats.query_pool.jobs > 0
        assert serial.stats.query_pool.dispatches == 0
    finally:
        serial.close()
        fanned.close()


@pytest.mark.parametrize("seed", [3, 57])
def test_query_fanout_pagination_identical_to_serial(seed):
    """Cursor pages, resume tokens and totals match the serial engine."""
    serial = _query_backlog(1, seed)
    fanned = _query_backlog(4, seed)
    try:
        top = max(_all_blocks(_random_ops(seed))) + 2

        def paginate_with_tokens(backlog, page_size):
            spec = QuerySpec(0, top, limit=page_size)
            results, tokens, token = [], [], None
            while True:
                page = backlog.select(spec.after(token))
                results.extend(page)
                token = page.resume_token
                tokens.append(token)
                if token is None:
                    return results, tokens

        for page_size in (3, 7, 50):
            serial.stats.query.reset()
            fanned.stats.query.reset()
            assert paginate_with_tokens(fanned, page_size) == \
                paginate_with_tokens(serial, page_size)
            # Paginating to exhaustion consumes every partition, so the
            # totals stay exact even though individual pages may suspend
            # mid-partition.
            assert fanned.stats.query.pages_read == serial.stats.query.pages_read
    finally:
        serial.close()
        fanned.close()


def test_query_fanout_first_stays_lazy():
    """Taking the first record must not prefetch later partitions.

    The lazy-gather guarantee from the streaming rework survives fan-out:
    partition 0 is merged inline on the calling thread, and nothing is
    submitted to the pool until it is exhausted.
    """
    fanned = _query_backlog(4, seed=7)
    try:
        before = fanned.stats.query_pool.dispatches
        cursor = fanned.select(QuerySpec(0, 1 << 20))
        next(cursor)
        assert fanned.stats.query_pool.dispatches == before
        list(cursor)                  # draining the rest does fan out
        assert fanned.stats.query_pool.dispatches > before
    finally:
        fanned.close()


# ------------------------------------------------- sharded process cluster
#
# The cluster (repro/cluster) extends the worker-invisibility promise across
# process boundaries: a ShardedBacklog at any shard count must answer
# identically to a single in-process Backlog over the same replayed workload
# -- answers, resume-token page boundaries, and (between shard counts) the
# exact folded ``QueryStats.pages_read``.  Pages are comparable across shard
# counts because the scatter decomposes queries at partition boundaries
# before anything is routed; they are not compared against the in-process
# engine, whose narrow-dispatch sizing legitimately differs.


import random

from repro.cluster import ClusterCheckpointError
from repro.core.cursor import decode_resume_token
from repro.fsim.faults import FaultPlan


def _ops_with_relocations(seed: int) -> List:
    """The seeded clone/snapshot workload, with relocations interleaved.

    Relocation positions and victims are a pure function of the seed, so
    the identical op list replays into every instance under test.
    """
    ops = _random_ops(seed)
    rng = random.Random(seed + 12345)
    blocks = _all_blocks(ops)
    interleaved: List = []
    for index, op in enumerate(ops):
        interleaved.append(op)
        if index % 40 == 39:
            interleaved.append(("relocate", rng.choice(blocks)))
    return interleaved


def _cluster_workload(shard_factory, shards: int, ops, **kwargs):
    authority = ExplicitVersionAuthority()
    cluster = shard_factory(num_shards=shards, version_source=authority,
                            **kwargs)
    _replay(cluster, authority, ops)
    return cluster


def _reference_workload(ops) -> Backlog:
    authority = ExplicitVersionAuthority()
    backlog = Backlog(backend=MemoryBackend(),
                      config=BacklogConfig(partition_size_blocks=64),
                      version_authority=authority)
    _replay(backlog, authority, ops)
    return backlog


@pytest.mark.parametrize("seed", [5, 31])
def test_sharded_cluster_answers_identical_at_any_shard_count(
        seed, shard_factory):
    """Shards {1, 3} vs one in-process Backlog: same answers, exact pages."""
    ops = _ops_with_relocations(seed)
    reference = _reference_workload(ops)
    try:
        blocks = _all_blocks(ops)
        top = max(blocks) + 2
        ranges = [(b, 1) for b in blocks] + [(0, 16), (top // 2, 40), (0, top)]
        answers: Dict[int, List] = {}
        counters: Dict[int, Dict[str, int]] = {}
        for shards in (1, 3):
            cluster = _cluster_workload(shard_factory, shards, ops)
            cluster.stats.query.reset()
            answers[shards] = [cluster.query_range(first, width)
                               for first, width in ranges]
            counters[shards] = cluster.stats.query.snapshot_counters()
        expected = [reference.query_range(first, width)
                    for first, width in ranges]
        assert answers[1] == expected
        assert answers[3] == expected
        # Exact page accounting, fold-equal between shard counts: the same
        # per-partition sub-queries ran, only the answering process moved.
        assert counters[1]["pages_read"] == counters[3]["pages_read"] > 0
        assert counters[1] == counters[3]
    finally:
        reference.close()


@pytest.mark.parametrize("seed", [5])
def test_sharded_cluster_pagination_identical(seed, shard_factory):
    """Page contents AND resume-token owner keys match across shard counts
    and match the in-process cursor (v2 tokens differ only in the advisory
    shard field, so the comparison is on decoded owner keys)."""
    ops = _ops_with_relocations(seed)
    reference = _reference_workload(ops)
    try:
        top = max(_all_blocks(ops)) + 2

        def paginate(target, page_size):
            pages, keys, token = [], [], None
            while True:
                page = target.select(QuerySpec(0, top, limit=page_size,
                                               resume_token=token))
                pages.append(list(page))
                token = page.resume_token
                keys.append(None if token is None
                            else tuple(decode_resume_token(token)))
                if token is None:
                    return pages, keys

        for page_size in (3, 7, 50):
            expected = paginate(reference, page_size)
            outcomes = {}
            for shards in (1, 3):
                cluster = _cluster_workload(shard_factory, shards, ops)
                cluster.stats.query.reset()
                outcomes[shards] = (paginate(cluster, page_size),
                                    cluster.stats.query.pages_read)
            assert outcomes[1][0] == expected
            assert outcomes[3][0] == expected
            assert outcomes[1][1] == outcomes[3][1] > 0
    finally:
        reference.close()


def test_sharded_cluster_crash_during_checkpoint_recovers_to_reference(
        shard_factory):
    """ENOSPC then a crash in one worker mid-checkpoint: full convergence.

    One shard's backend fails its prepare flush (write stores intact, no
    global CP published), then the worker is killed outright inside the
    checkpoint window.  The coordinator revives it from its own durable
    meta, replays the pending updates, and the retried checkpoint plus the
    rest of the workload must land the cluster exactly on the in-process
    reference -- no partial CP, no lost or doubled updates.
    """
    ops = _random_ops(9)
    checkpoint_indices = [i for i, op in enumerate(ops)
                          if op[0] == "checkpoint"]
    split = checkpoint_indices[len(checkpoint_indices) // 2] + 1
    head, tail = ops[:split], ops[split:]

    reference = _reference_workload(head)
    authority = ExplicitVersionAuthority()
    cluster = shard_factory(
        num_shards=3, durable=True, version_source=authority,
        fault_plans={2: FaultPlan(enospc_after_pages=0, seed=3)})
    try:
        _replay(cluster, authority, head)
        committed = cluster.committed_cp
        # Block 130 -> partition 2 -> shard 2 (64-block partitions): the
        # faulted shard has dirty data to flush when the checkpoint runs.
        cluster.add_reference(130, 1, 0, 0)
        cluster.debug_fault(2, "arm")
        with pytest.raises(ClusterCheckpointError):
            cluster.checkpoint()
        assert cluster.committed_cp == committed     # nothing published
        cluster.debug_kill(2)                        # crash mid-window
        # A failed attempt revives the dead worker and replays its pending
        # updates but still reports failure; the checkpoint contract is
        # retry-as-a-whole, so loop until one lands.
        for _ in range(3):
            try:
                cluster.checkpoint()
                break
            except ClusterCheckpointError:
                assert cluster.committed_cp == committed
        assert cluster.committed_cp > committed
        reference.add_reference(130, 1, 0, 0)
        reference.checkpoint()
        authority.set_current_cp(cluster.current_cp)
        reference.version_authority.set_current_cp(reference.current_cp)
        _replay(cluster, authority, tail)
        _replay(reference, reference.version_authority, tail)

        blocks = _all_blocks(ops)
        top = max(blocks) + 2
        for first, width in [(b, 1) for b in blocks] + [(0, top)]:
            assert cluster.query_range(first, width) == \
                reference.query_range(first, width)
    finally:
        reference.close()
