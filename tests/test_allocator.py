"""Tests for the snapshot-aware block allocator."""

from __future__ import annotations

import pytest

from repro.fsim.allocator import BlockAllocator


class TestAllocation:
    def test_allocate_monotonic_then_recycle(self):
        allocator = BlockAllocator()
        first = allocator.allocate(current_cp=1)
        second = allocator.allocate(current_cp=1)
        assert (first, second) == (0, 1)
        allocator.drop_ref(first, current_cp=2)
        allocator.reclaim(retained_versions=[5])  # CP 1..2 not retained
        third = allocator.allocate(current_cp=5)
        assert third == first  # recycled

    def test_refcounting(self):
        allocator = BlockAllocator()
        block = allocator.allocate(1)
        assert allocator.refcount(block) == 1
        assert allocator.add_ref(block) == 2
        assert allocator.drop_ref(block, 3) == 1
        assert allocator.is_allocated(block)
        assert allocator.drop_ref(block, 4) == 0
        assert not allocator.is_allocated(block)
        assert allocator.deferred_blocks == 1

    def test_unknown_block_errors(self):
        allocator = BlockAllocator()
        with pytest.raises(KeyError):
            allocator.add_ref(99)
        with pytest.raises(KeyError):
            allocator.drop_ref(99, 1)
        with pytest.raises(KeyError):
            allocator.revive(99)


class TestDeferredFrees:
    def test_block_pinned_by_snapshot_is_not_reclaimed(self):
        allocator = BlockAllocator()
        block = allocator.allocate(current_cp=1)
        allocator.drop_ref(block, current_cp=5)
        # A snapshot at CP 3 still references the block (lifetime [1, 5)).
        assert allocator.reclaim(retained_versions=[3, 10]) == []
        assert allocator.physical_blocks_in_use == 1
        # Once the snapshot goes away the block is freed.
        assert allocator.reclaim(retained_versions=[10]) == [block]
        assert allocator.physical_blocks_in_use == 0

    def test_boundary_semantics(self):
        """Lifetime [1, 5): version 5 does NOT pin, version 1 does."""
        allocator = BlockAllocator()
        block = allocator.allocate(1)
        allocator.drop_ref(block, 5)
        assert allocator.reclaim([5]) == [block]
        block2 = allocator.allocate(1)
        allocator.drop_ref(block2, 5)
        assert allocator.reclaim([1]) == []

    def test_revive_for_clones(self):
        allocator = BlockAllocator()
        block = allocator.allocate(1)
        allocator.drop_ref(block, 3)
        allocator.revive(block)
        assert allocator.refcount(block) == 1
        assert allocator.deferred_blocks == 0

    def test_add_ref_or_revive(self):
        allocator = BlockAllocator()
        live = allocator.allocate(1)
        assert allocator.add_ref_or_revive(live) == 2
        dead = allocator.allocate(1)
        allocator.drop_ref(dead, 2)
        assert allocator.add_ref_or_revive(dead) == 1


class TestStatisticsAndHistogram:
    def test_refcount_histogram(self):
        allocator = BlockAllocator()
        a = allocator.allocate(1)
        b = allocator.allocate(1)
        allocator.add_ref(b)
        histogram = allocator.refcount_histogram()
        assert histogram == {1: 1, 2: 1}

    def test_iter_live_blocks(self):
        allocator = BlockAllocator()
        blocks = [allocator.allocate(1) for _ in range(3)]
        assert [b for b, _ in allocator.iter_live_blocks()] == sorted(blocks)

    def test_stats_counters(self):
        allocator = BlockAllocator()
        block = allocator.allocate(1)
        allocator.drop_ref(block, 2)
        allocator.reclaim([])
        assert allocator.stats.allocations == 1
        assert allocator.stats.frees == 1
        assert allocator.stats.reclaimed == 1
