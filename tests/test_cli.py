"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["synthetic"])
        assert args.cps == 30
        assert args.ops_per_cp == 1000
        assert args.maintain_every is None

    def test_query_bench_arguments(self):
        args = build_parser().parse_args(
            ["query-bench", "--cps", "5", "--run-length", "16", "--queries", "64"]
        )
        assert (args.cps, args.run_length, args.queries) == (5, 16, 64)

    def test_query_arguments(self):
        args = build_parser().parse_args(
            ["query", "--first-block", "10", "--num-blocks", "64", "--live-only",
             "--inode", "3", "--inode", "7", "--limit", "5", "--resume", "tok"]
        )
        assert (args.first_block, args.num_blocks) == (10, 64)
        assert args.live_only and args.inode == [3, 7]
        assert (args.limit, args.resume) == (5, "tok")


class TestCommands:
    def test_synthetic_command_prints_summary(self, capsys):
        exit_code = main(["synthetic", "--cps", "3", "--ops-per-cp", "150",
                          "--initial-files", "20", "--maintain-every", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "io_writes_per_block_op" in output
        assert "Backlog summary" in output
        assert "maintenance passes" in output

    def test_nfs_command(self, capsys):
        exit_code = main(["nfs", "--hours", "2", "--ops-per-hour", "200"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "NFS-like trace replay" in output
        assert "space overhead %" in output

    def test_query_bench_command(self, capsys):
        exit_code = main(["query-bench", "--cps", "4", "--ops-per-cp", "200",
                          "--run-length", "8", "--queries", "32"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "before maintenance" in output
        assert "after maintenance" in output

    def test_verify_command_reports_ok(self, capsys):
        exit_code = main(["verify", "--cps", "3", "--ops-per-cp", "150", "--maintain"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "OK" in output

    WORKLOAD = ["--cps", "3", "--ops-per-cp", "120", "--seed", "7"]

    def test_query_command_lists_owners(self, capsys):
        exit_code = main(["query", *self.WORKLOAD,
                          "--first-block", "0", "--num-blocks", "100000"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Owners of blocks [0, 100000)" in output
        assert "back reference(s)" in output
        assert "scan exhausted" in output

    def test_query_command_paginates_with_resume_tokens(self, capsys):
        exit_code = main(["query", *self.WORKLOAD,
                          "--first-block", "0", "--num-blocks", "100000", "--limit", "4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        token_lines = [line for line in output.splitlines()
                       if line.startswith("resume token: ")]
        assert len(token_lines) == 1
        token = token_lines[0].split(": ", 1)[1]

        # Same deterministic workload + the printed token = the next page.
        exit_code = main(["query", *self.WORKLOAD, "--first-block", "0",
                          "--num-blocks", "100000", "--limit", "4", "--resume", token])
        second = capsys.readouterr().out
        assert exit_code == 0
        assert second != output

    def test_query_command_count_and_filters(self, capsys):
        exit_code = main(["query", *self.WORKLOAD, "--first-block", "0",
                          "--num-blocks", "100000", "--count", "--live-only",
                          "--maintain"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "back references:" in output

    def test_query_command_rejects_bad_token(self, capsys):
        exit_code = main(["query", *self.WORKLOAD, "--resume", "garbage"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "invalid query" in captured.err

    def test_query_command_rejects_corrupted_token_body(self, capsys):
        # A well-prefixed token whose body has characters outside the
        # url-safe base64 alphabet: the strict decoder must reject it
        # instead of silently discarding the junk and resuming at a
        # garbage-but-plausible position.
        exit_code = main(["query", *self.WORKLOAD,
                          "--resume", "bkq1.!!not-base64!!"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "invalid query" in captured.err
        assert "malformed resume token" in captured.err

    def test_query_command_rejects_stale_out_of_range_token(self, capsys):
        # A structurally valid token pointing outside the queried block
        # range (e.g. saved from a different query) is stale, not resumable.
        from repro import encode_resume_token
        from repro.core.records import ReferenceKey

        token = encode_resume_token(ReferenceKey(10 ** 6, 1, 0, 0))
        exit_code = main(["query", *self.WORKLOAD, "--first-block", "0",
                          "--num-blocks", "16", "--resume", token])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "invalid query" in captured.err
        assert "outside" in captured.err
