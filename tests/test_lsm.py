"""Tests for the stepped-merge run catalogue."""

from __future__ import annotations

import pytest

from repro.core.lsm import RunManager, merge_sorted_runs, run_name
from repro.core.records import FromRecord, ToRecord
from repro.fsim.blockdev import MemoryBackend
from repro.fsim.cache import PageCache


def _records(blocks, cp=1):
    return [FromRecord(block, 1, 0, 0, cp) for block in sorted(blocks)]


class TestRunName:
    def test_format(self):
        assert run_name(3, "from", "L0", 12) == "p000003/from/L0_0000000012"

    def test_names_sort_by_partition(self):
        names = [run_name(p, "from", "L0", 1) for p in (10, 2, 0)]
        assert sorted(names) == [run_name(0, "from", "L0", 1),
                                 run_name(2, "from", "L0", 1),
                                 run_name(10, "from", "L0", 1)]


class TestMergeSortedRuns:
    def test_merges_in_order(self):
        a = iter(_records([1, 5, 9]))
        b = iter(_records([2, 5, 10]))
        merged = list(merge_sorted_runs([a, b]))
        assert [r.block for r in merged] == [1, 2, 5, 5, 9, 10]

    def test_empty_and_single(self):
        assert list(merge_sorted_runs([])) == []
        assert [r.block for r in merge_sorted_runs([iter(_records([3, 4]))])] == [3, 4]


class TestRunManager:
    def test_write_run_and_query(self):
        manager = RunManager(MemoryBackend())
        reader = manager.write_run(0, "from", "L0", _records(range(50)), 1024 * 8)
        assert reader is not None
        assert manager.run_count() == 1
        assert manager.run_count("from") == 1
        assert manager.run_count("to") == 0
        assert manager.partitions() == [0]
        assert manager.total_records() == 50

    def test_write_empty_run_is_noop(self):
        manager = RunManager(MemoryBackend())
        assert manager.write_run(0, "from", "L0", [], 1024 * 8) is None
        assert manager.run_count() == 0

    def test_unknown_table_rejected(self):
        manager = RunManager(MemoryBackend())
        with pytest.raises(ValueError):
            manager.add_run(0, "bogus", None)

    def test_runs_for_block_range_uses_bloom(self):
        manager = RunManager(MemoryBackend())
        manager.write_run(0, "from", "L0", _records(range(0, 100)), 1024 * 8)
        manager.write_run(0, "from", "L0", _records(range(5_000, 5_100)), 1024 * 8)
        candidates = manager.runs_for_block_range([0], 10, 5)
        assert len(candidates) == 1
        candidates = manager.runs_for_block_range([0], 5_050, 5)
        assert len(candidates) == 1
        assert manager.runs_for_block_range([0], 200_000, 5) == []

    def test_iter_table_merges_runs(self):
        manager = RunManager(MemoryBackend())
        manager.write_run(0, "from", "L0", _records([1, 4, 7]), 1024 * 8)
        manager.write_run(0, "from", "L0", _records([2, 4, 9]), 1024 * 8)
        merged = [r.block for r in manager.iter_table(0, "from")]
        assert merged == [1, 2, 4, 4, 7, 9]
        assert list(manager.iter_table(0, "to")) == []

    def test_replace_partition_deletes_old_files(self):
        backend = MemoryBackend()
        cache = PageCache(1024 * 1024)
        manager = RunManager(backend, cache=cache)
        manager.write_run(0, "from", "L0", _records(range(20)), 1024 * 8)
        manager.write_run(0, "to", "L0", [ToRecord(1, 1, 0, 0, 2)], 1024 * 8)
        old_names = [run.name for run in manager.runs_for(0)]
        replacement = manager.write_run(1, "from", "L0", _records([500]), 1024 * 8)
        # Swap in an empty partition 0.
        deleted = manager.replace_partition(0, {"from": [], "to": [], "combined": []})
        assert sorted(deleted) == sorted(old_names)
        for name in old_names:
            assert not backend.exists(name)
        assert manager.runs_for(0) == []
        assert manager.runs_for(1) == [replacement]

    def test_level0_run_count_and_sizes(self):
        manager = RunManager(MemoryBackend())
        manager.write_run(0, "from", "L0", _records(range(10)), 1024 * 8)
        manager.write_run(0, "to", "L0", [ToRecord(2, 1, 0, 0, 3)], 1024 * 8)
        assert manager.level0_run_count() == 2
        assert manager.total_size_bytes() > 0
        assert manager.bloom_memory_bytes() > 0

    def test_partitioned_runs_are_separate(self):
        manager = RunManager(MemoryBackend())
        manager.write_run(0, "from", "L0", _records([5]), 1024 * 8)
        manager.write_run(3, "from", "L0", _records([3 * (1 << 20) + 7]), 1024 * 8)
        assert manager.partitions() == [0, 3]
        assert len(manager.runs_for(0)) == 1
        assert len(manager.runs_for(3)) == 1
