"""Deep clone-chain coverage: equivalence and memory behaviour.

The incremental :func:`~repro.core.inheritance.expand_clones` generator is
locked to the retained :func:`~repro.core.inheritance.materialized_expand`
over randomly generated clone DAGs (hypothesis), over deep linear chains and
branching trees, and through the full Backlog query path.  The tracemalloc
tests assert the property the streaming rework exists for: the generator's
transient working set stays flat as the query result grows, while the
materialised expansion's grows linearly with it.
"""

from __future__ import annotations

import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.inheritance import CloneGraph, expand_clones, materialized_expand
from repro.core.records import CombinedRecord, INFINITY
from repro.fsim.blockdev import MemoryBackend


# --------------------------------------------------- hypothesis equivalence


@st.composite
def clone_graphs(draw):
    """A random clone forest: every child clones some earlier line."""
    num_clones = draw(st.integers(0, 6))
    graph = CloneGraph()
    for child in range(1, num_clones + 1):
        parent = draw(st.integers(0, child - 1))
        version = draw(st.integers(0, 15))
        graph.add_clone(child, parent, version)
    return graph


_records = st.lists(
    st.builds(
        CombinedRecord,
        st.integers(0, 8),           # block
        st.integers(1, 3),           # inode
        st.integers(0, 2),           # offset
        st.integers(0, 6),           # line
        st.integers(0, 10),          # from (0 = override)
        st.one_of(st.integers(11, 20), st.just(INFINITY)),  # to
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(clone_graphs(), _records)
def test_streaming_expansion_matches_materialized(graph, records):
    """Property: identical output over random clone DAGs and record sets."""
    expected = materialized_expand(records, graph)
    streamed = list(expand_clones(sorted(records), graph))
    assert streamed == expected


@settings(max_examples=100, deadline=None)
@given(clone_graphs(), _records, _records)
def test_streaming_expansion_handles_duplicate_gathers(graph, records, extra):
    """Duplicated input records (re-gathered copies) change nothing."""
    doubled = records + records + extra
    expected = materialized_expand(doubled, graph)
    streamed = list(expand_clones(sorted(doubled), graph))
    assert streamed == expected


# ------------------------------------------------------ deep, wide chains


def _linear_chain(depth: int, version: int = 5) -> CloneGraph:
    graph = CloneGraph()
    for child in range(1, depth + 1):
        graph.add_clone(child, child - 1, version)
    return graph


def _parent_records(num_blocks: int) -> list:
    return [CombinedRecord(block, 1 + block % 7, block % 3, 0, 1, INFINITY)
            for block in range(num_blocks)]


def test_deep_linear_chain_inherits_to_every_line():
    depth = 32
    graph = _linear_chain(depth)
    records = _parent_records(10)
    out = list(expand_clones(records, graph))
    assert out == materialized_expand(records, graph)
    assert len(out) == len(records) * (depth + 1)
    assert {r.line for r in out} == set(range(depth + 1))


def test_deep_chain_with_overrides_at_every_other_level():
    depth = 16
    graph = _linear_chain(depth)
    records = [CombinedRecord(9, 1, 0, 0, 1, INFINITY)]
    records += [CombinedRecord(9, 1, 0, line, 0, 8) for line in range(2, depth + 1, 2)]
    out = list(expand_clones(sorted(records), graph))
    assert out == materialized_expand(records, graph)
    # Overridden lines keep only their override record; others inherit.
    for line in range(2, depth + 1, 2):
        assert CombinedRecord(9, 1, 0, line, 0, INFINITY) not in out
    for line in range(1, depth + 1, 2):
        assert CombinedRecord(9, 1, 0, line, 0, INFINITY) in out


def test_branching_clone_tree():
    """A full binary tree of clones: every leaf-to-root path inherits."""
    graph = CloneGraph()
    depth = 5
    lines = 2 ** (depth + 1) - 1  # complete binary tree, line 0 is the root
    for child in range(1, lines):
        graph.add_clone(child, (child - 1) // 2, 5)
    records = _parent_records(20)
    out = list(expand_clones(records, graph))
    assert out == materialized_expand(records, graph)
    assert len(out) == len(records) * lines


# ----------------------------------------------------- memory flatness


def _streaming_peak(records, graph) -> int:
    tracemalloc.start()
    count = sum(1 for _ in expand_clones(iter(records), graph))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert count == len(records) * (len(graph.all_lines()))
    return peak


def _materialized_peak(records, graph) -> int:
    tracemalloc.start()
    result = materialized_expand(records, graph)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(result) == len(records) * (len(graph.all_lines()))
    return peak


def test_incremental_expansion_memory_stays_flat():
    """Streaming transient memory is flat in query width; materialised grows.

    This is the acceptance property of the incremental rewrite: quadrupling
    the number of expanded reference groups must not grow the generator's
    working set (it holds one group at a time), while the materialised
    expansion's peak tracks the full result size.
    """
    depth = 12
    graph = _linear_chain(depth)
    narrow = _parent_records(1500)
    wide = _parent_records(6000)

    # The generator's peak is a few KB of group state at *any* width -- far
    # too small for its own growth ratio to be a stable signal (allocator
    # noise dominates), so compare it against the materialised peak of the
    # *narrower* query instead: even at 4x the width, the generator must
    # stay well under a fraction of the smaller materialised working set.
    # The materialised peak is megabytes and grows with the result, so its
    # growth ratio is meaningful directly.
    materialized_narrow = _materialized_peak(narrow, graph)
    for records in (narrow, wide):
        peak = _streaming_peak(records, graph)
        assert peak * 20 < materialized_narrow, (
            f"streaming expansion peaked at {peak} bytes "
            f"(materialised narrow peak: {materialized_narrow})"
        )
    materialized_growth = _materialized_peak(wide, graph) / materialized_narrow
    assert materialized_growth > 2.5, f"materialised expansion grew only {materialized_growth:.2f}x"


def test_incremental_expansion_peak_is_group_sized():
    """The generator's peak is orders of magnitude below the result size."""
    graph = _linear_chain(12)
    records = _parent_records(6000)
    streaming_peak = _streaming_peak(records, graph)
    materialized_peak = _materialized_peak(records, graph)
    assert streaming_peak * 10 < materialized_peak, (
        f"streaming peak {streaming_peak} vs materialised {materialized_peak}"
    )


# ------------------------------------------------- through the query path


def test_backlog_query_sees_every_chain_descendant():
    """End to end: a 20-deep clone chain answers with 21 owners per block."""
    depth = 20
    backlog = Backlog(backend=MemoryBackend(),
                      config=BacklogConfig(track_timing=False))
    backlog.add_reference(block=100, inode=2, offset=0)
    cp = backlog.checkpoint()
    for child in range(1, depth + 1):
        backlog.register_clone(child, child - 1, cp)
    refs = backlog.query(100)
    assert len(refs) == depth + 1
    assert {ref.line for ref in refs} == set(range(depth + 1))
    # Inherited references cover the full version range.
    for ref in refs:
        if ref.line > 0:
            assert ref.ranges == ((0, INFINITY),)


@pytest.mark.parametrize("narrow_dispatch_max_runs", [0, 2], ids=["streaming", "dispatched"])
def test_backlog_deep_chain_queries_agree_across_strategies(narrow_dispatch_max_runs):
    """Both execution strategies answer deep-chain range queries identically."""
    config = BacklogConfig(track_timing=False,
                           narrow_dispatch_max_runs=narrow_dispatch_max_runs)
    backlog = Backlog(backend=MemoryBackend(), config=config)
    for block in range(64):
        backlog.add_reference(block=block, inode=1 + block % 5, offset=block % 4)
    cp = backlog.checkpoint()
    for child in range(1, 16):
        backlog.register_clone(child, child - 1, cp)
    backlog.remove_reference(block=3, inode=1 + 3 % 5, offset=3 % 4, line=0)
    backlog.checkpoint()

    refs = backlog.query_range(0, 64)
    assert {ref.line for ref in refs} == set(range(16))
    # The same answer computed through the retained materialised pipeline.
    from tests.test_streaming_equivalence import _legacy_query
    assert refs == _legacy_query(backlog, 0, 64)
