"""Tests for crash recovery of the back-reference database."""

from __future__ import annotations

import pytest

from repro.core.backlog import Backlog
from repro.core.recovery import parse_run_name, rebuild_run_manager, recover_backlog
from repro.fsim.blockdev import DiskBackend, MemoryBackend
from repro.fsim.filesystem import FileSystem, FileSystemConfig
from repro.fsim.journal import Journal
from repro.core.masking import SnapshotManagerAuthority
from repro.core.verify import verify_backlog


class TestParseRunName:
    def test_valid_names(self):
        assert parse_run_name("p000001/from/L0_0000000003") == (1, "from", "L0", 3)
        assert parse_run_name("p000010/combined/compact_0000000042") == (10, "combined", "compact", 42)

    def test_invalid_names(self):
        assert parse_run_name("naive/conceptual_table") is None
        assert parse_run_name("p1/bogus/L0_1") is None
        assert parse_run_name("random-file.txt") is None


class TestRebuildRunManager:
    def test_rebuild_finds_all_runs(self):
        backend = MemoryBackend()
        original = Backlog(backend=backend)
        for cp in range(3):
            for i in range(20):
                original.add_reference(block=i, inode=1, offset=i, cp=cp + 1)
            original.checkpoint()
        rebuilt = rebuild_run_manager(backend)
        assert rebuilt.run_count() == original.run_manager.run_count()
        assert rebuilt.total_records() == original.run_manager.total_records()

    def test_rebuild_ignores_foreign_files(self):
        backend = MemoryBackend()
        backend.create("unrelated").append_page(b"junk")
        manager = rebuild_run_manager(backend)
        assert manager.run_count() == 0


class TestRecoverBacklog:
    def test_state_before_last_cp_survives_crash(self):
        backend = MemoryBackend()
        original = Backlog(backend=backend)
        original.add_reference(100, 2, 0)
        original.add_reference(101, 2, 1)
        original.checkpoint()
        # Crash: the original instance (and its write stores) disappear.
        recovered = recover_backlog(backend, current_cp=original.current_cp)
        assert {ref.block for ref in recovered.query_range(100, 2)} == {100, 101}

    def test_journal_replay_restores_post_cp_updates(self):
        backend = MemoryBackend()
        journal = Journal()
        original = Backlog(backend=backend)
        original.add_reference(100, 2, 0, cp=1)
        journal.log_add(100, 2, 0, 0, 1)
        original.checkpoint()
        # Journal is truncated at the CP, as the file system would do.
        journal.truncate()
        # Updates after the CP are only in memory + journal.
        original.add_reference(200, 3, 0, cp=2)
        journal.log_add(200, 3, 0, 0, 2)
        original.remove_reference(100, 2, 0, cp=2)
        journal.log_remove(100, 2, 0, 0, 2)

        recovered = recover_backlog(backend, journal=journal, current_cp=2)
        assert recovered.pending_updates() == 2
        assert recovered.query(200)[0].is_live
        assert recovered.query(100)[0].ranges == ((1, 2),)

    def test_recovery_from_disk_backend(self, tmp_path):
        directory = str(tmp_path / "backlog-db")
        backend = DiskBackend(directory)
        original = Backlog(backend=backend)
        for i in range(50):
            original.add_reference(block=i, inode=1, offset=i)
        original.checkpoint()
        # Re-open from a fresh DiskBackend instance, as after a real restart.
        recovered = recover_backlog(DiskBackend(directory), current_cp=2)
        assert len(recovered.query_range(0, 50)) == 50

    def test_full_crash_recovery_against_filesystem(self):
        """End to end: crash after CP + journaled tail, verify against the FS."""
        backend = MemoryBackend()
        backlog = Backlog(backend=backend)
        fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False),
                        listeners=[backlog])
        backlog.set_version_authority(SnapshotManagerAuthority(fs))
        files = [fs.create_file(num_blocks=5) for _ in range(10)]
        fs.take_consistency_point()
        for inode in files[:5]:
            fs.write(inode, 0, 2)
        # Crash now: Backlog's write stores are lost, but the FS journal holds
        # the operations since the last CP.
        recovered = recover_backlog(
            backend,
            journal=fs.journal,
            version_authority=SnapshotManagerAuthority(fs),
            current_cp=fs.global_cp,
        )
        report = verify_backlog(fs, recovered)
        assert report.ok, report.mismatches[:5]


class TestRecoverBacklogEdgeCases:
    """CP inference corner cases: the docstring rule, pinned down."""

    def test_empty_journal_and_no_current_cp_keeps_fresh_default(self):
        backend = MemoryBackend()
        original = Backlog(backend=backend)
        original.add_reference(100, 2, 0)
        original.checkpoint()
        # Nothing to infer from: no explicit CP, an empty journal.
        for journal in (None, Journal()):
            recovered = recover_backlog(backend, journal=journal)
            assert recovered.current_cp == 1
            assert recovered.pending_updates() == 0
            assert {ref.block for ref in recovered.query_range(100, 1)} == {100}

    def test_explicit_current_cp_wins_over_journal_inference(self):
        backend = MemoryBackend()
        original = Backlog(backend=backend)
        original.add_reference(100, 2, 0, cp=1)
        original.checkpoint()
        journal = Journal()
        # A (stale or disagreeing) journal claiming CP 2; the caller knows
        # the file system's counter says 7.
        journal.log_add(200, 3, 0, 0, 2)
        recovered = recover_backlog(backend, journal=journal, current_cp=7)
        assert recovered.current_cp == 7
        # The journal is still replayed -- inference, not replay, is what
        # the explicit value overrides.
        assert recovered.pending_updates() == 1

    def test_backend_with_only_invalid_runs_recovers_empty(self):
        backend = MemoryBackend()
        # Three crash leftovers: an empty file, a truncated garbage run and
        # a foreign non-run file that must simply be ignored.
        backend.create("p000000/from/L0_0000000001")
        backend.create("p000000/to/L0_0000000002").append_page(b"garbage")
        backend.create("unrelated.txt").append_page(b"not a run")
        recovered = recover_backlog(backend)
        assert recovered.run_manager.run_count() == 0
        assert recovered.query_range(0, 1024) == []
        # remove_invalid reclaimed the leftovers but left the foreign file.
        assert not backend.exists("p000000/from/L0_0000000001")
        assert not backend.exists("p000000/to/L0_0000000002")
        assert backend.exists("unrelated.txt")
        # The leftover sequence numbers still advanced the counter, so new
        # runs cannot collide with the deleted names.
        assert recovered.run_manager.next_sequence() == 3
