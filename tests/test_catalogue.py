"""Catalogue snapshots: pinning, epoch reclamation, tombstones, accounting."""

from __future__ import annotations

import pytest

from repro import (
    Backlog,
    BacklogConfig,
    DiskBackend,
    QuerySpec,
    recover_backlog,
    scrub_backend,
)
from repro.core.lsm import (
    TOMBSTONE_SUFFIX,
    parse_tombstone_name,
    tombstone_name,
)
from repro.core.recovery import rebuild_run_manager

CONFIG = dict(partition_size_blocks=256, narrow_dispatch_max_runs=0)


def _backlog(tmp_path):
    return Backlog(backend=DiskBackend(str(tmp_path / "runs")),
                   config=BacklogConfig(**CONFIG))


def _populate(backlog, blocks=512, rounds=4):
    per_round = blocks // rounds
    for round_index in range(rounds):
        for i in range(round_index * per_round, (round_index + 1) * per_round):
            backlog.add_reference(block=i, inode=1 + (i % 7), offset=i)
        backlog.checkpoint()


def _catalogued_names(manager):
    return {run.name for partition in manager.partitions()
            for run in manager.runs_for(partition)}


# -------------------------------------------------------------- snapshot API


class TestSnapshotLifecycle:
    def test_select_pins_and_release_unpins(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        snapshot = backlog.catalogue.select()
        assert backlog.catalogue.pinned_snapshots() == 1
        assert not snapshot.released
        snapshot.release()
        assert snapshot.released
        assert backlog.catalogue.pinned_snapshots() == 0

    def test_release_is_idempotent(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        snapshot = backlog.catalogue.select()
        snapshot.release()
        snapshot.release()          # must not double-decrement
        assert backlog.catalogue.pinned_snapshots() == 0
        other = backlog.catalogue.select()
        assert backlog.catalogue.pinned_snapshots() == 1
        other.release()

    def test_context_manager_releases(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        with backlog.catalogue.select() as snapshot:
            assert snapshot.runs_for_block_range(snapshot.partitions(), 0, 512)
            assert backlog.catalogue.pinned_snapshots() == 1
        assert backlog.catalogue.pinned_snapshots() == 0

    def test_snapshot_runs_are_immune_to_catalogue_mutation(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        with backlog.catalogue.select() as snapshot:
            before = set(snapshot.run_names())
            backlog.maintain()      # retires the L0 runs behind the pin
            assert set(snapshot.run_names()) == before
            live = _catalogued_names(backlog.run_manager)
            assert live.isdisjoint(before) or live != before


# --------------------------------------------------------- epoch reclamation


class TestEpochReclamation:
    def test_no_pins_means_immediate_delete(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        old_names = _catalogued_names(backlog.run_manager)
        backlog.maintain()
        manager = backlog.run_manager
        assert manager.deferred_run_names() == []
        assert manager.deferred_bytes() == 0
        for name in old_names - _catalogued_names(manager):
            assert not backlog.backend.exists(name)
            assert not backlog.backend.exists(tombstone_name(name))

    def test_pin_defers_deletion_and_writes_tombstones(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        manager = backlog.run_manager
        old_names = _catalogued_names(manager)
        snapshot = backlog.catalogue.select()
        backlog.maintain()
        deferred = set(manager.deferred_run_names())
        assert deferred  # compaction retired the pinned L0 files
        assert deferred <= old_names
        assert manager.deferred_bytes() > 0
        for name in deferred:
            assert backlog.backend.exists(name)
            assert backlog.backend.exists(tombstone_name(name))
            assert name in manager.pinned_run_names()
        # Deferred files are not database size.
        assert backlog.database_size_bytes() == sum(
            run.size_bytes for partition in manager.partitions()
            for run in manager.runs_for(partition))

        snapshot.release()
        assert manager.deferred_run_names() == []
        for name in deferred:
            assert not backlog.backend.exists(name)
            assert not backlog.backend.exists(tombstone_name(name))

    def test_release_order_respects_oldest_pin(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        manager = backlog.run_manager
        old_pin = backlog.catalogue.select()          # version V
        backlog.maintain()                            # retires at V+1
        first_wave = set(manager.deferred_run_names())
        assert first_wave
        new_pin = backlog.catalogue.select()          # version >= V+1
        # The newer pin never saw the retired files; only the old pin
        # holds them.
        old_pin.release()
        assert manager.deferred_run_names() == []
        for name in first_wave:
            assert not backlog.backend.exists(name)
        # Retirements behind the *newer* pin still defer.
        _populate(backlog, blocks=512, rounds=2)
        backlog.maintain()
        second_wave = set(manager.deferred_run_names())
        assert second_wave
        new_pin.release()
        assert manager.deferred_run_names() == []

    def test_pinned_snapshot_still_answers_after_retirement(self, tmp_path):
        """The point of it all: a pinned reader's files stay readable."""
        backlog = _backlog(tmp_path)
        _populate(backlog)
        cursor = backlog.select(QuerySpec(first_block=0, num_blocks=512))
        first = next(cursor)                 # cursor now pins the catalogue
        backlog.maintain()
        rest = [(ref.block, ref.inode, ref.offset) for ref in cursor]
        seen = {(first.block, first.inode, first.offset), *rest}
        assert seen == {(i, 1 + (i % 7), i) for i in range(512)}


# ------------------------------------------------------------- frozen views


class TestFrozenViews:
    def test_snapshot_write_store_survives_checkpoint_clear(self, tmp_path):
        backlog = _backlog(tmp_path)
        backlog.add_reference(block=3, inode=9, offset=0)
        backlog.add_reference(block=4, inode=9, offset=1)
        with backlog.catalogue.select() as snapshot:
            assert len(snapshot.ws_from) == 2
            backlog.checkpoint()             # clears the live write stores
            assert len(backlog.ws_from) == 0
            assert len(snapshot.ws_from) == 2    # frozen view is immune

    def test_records_visible_exactly_once_across_checkpoint(self, tmp_path):
        backlog = _backlog(tmp_path)
        backlog.add_reference(block=3, inode=9, offset=0)
        before = backlog.catalogue.select()
        backlog.checkpoint()
        after = backlog.catalogue.select()
        # Before the CP: the record lives in the write store, not in runs.
        assert len(before.ws_from) == 1
        assert not before.runs_for_block_range(before.partitions(), 3, 1)
        # After the CP: in runs, not in the write store.
        assert len(after.ws_from) == 0
        assert after.runs_for_block_range(after.partitions(), 3, 1)
        before.release()
        after.release()

    def test_frozen_deletion_vector_sees_later_suppressions(self, tmp_path):
        """Suppression is monotone hiding: pinned readers honour it too."""
        backlog = _backlog(tmp_path)
        _populate(backlog, blocks=64, rounds=1)
        with backlog.catalogue.select() as snapshot:
            suppressed = backlog.relocate_block(7)
            assert suppressed == 1
            record = next(iter(backlog.select(QuerySpec(8)).all()))
            assert not snapshot.deletion_vector.is_suppressed(record)


# ------------------------------------------------- crash recovery and scrub


class TestTombstoneRecovery:
    def _crash_with_deferred(self, tmp_path):
        """A backend state as left by a crash mid-defer: tombstoned files."""
        backlog = _backlog(tmp_path)
        _populate(backlog)
        pin = backlog.catalogue.select()
        backlog.maintain()
        deferred = set(backlog.run_manager.deferred_run_names())
        assert deferred
        # Simulated crash: the process dies with the pin outstanding.
        del pin
        return backlog.backend, deferred

    def test_rebuild_skips_tombstoned_runs(self, tmp_path):
        backend, deferred = self._crash_with_deferred(tmp_path)
        manager = rebuild_run_manager(backend)
        assert deferred.isdisjoint(_catalogued_names(manager))
        # ... and never hands out a colliding sequence number.
        highest = max(int(name.rsplit("_", 1)[1])
                      for name in deferred | _catalogued_names(manager))
        assert manager.next_sequence() > highest

    def test_recover_backlog_answers_without_tombstoned_runs(self, tmp_path):
        backend, _ = self._crash_with_deferred(tmp_path)
        recovered = recover_backlog(backend, config=BacklogConfig(**CONFIG))
        seen = {(ref.block, ref.inode, ref.offset)
                for ref in recovered.select(QuerySpec(first_block=0,
                                                      num_blocks=512))}
        assert seen == {(i, 1 + (i % 7), i) for i in range(512)}
        assert recovered.catalogue.run_manager is recovered.run_manager

    def test_scrub_reports_deferred_and_reclaims(self, tmp_path):
        backend, deferred = self._crash_with_deferred(tmp_path)
        report = scrub_backend(backend)
        assert set(report.files_deferred) >= deferred
        assert report.clean                  # deferred leftovers are benign
        reclaimed = scrub_backend(backend, reclaim=True)
        assert set(reclaimed.files_deferred) >= deferred
        for name in deferred:
            assert not backend.exists(name)
            assert not backend.exists(tombstone_name(name))
        assert scrub_backend(backend).files_deferred == []

    def test_orphan_tombstone_is_reported_and_removed(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog, blocks=64, rounds=1)
        name = next(iter(_catalogued_names(backlog.run_manager)))
        marker = tombstone_name(name + "9")   # run name that never existed
        # An orphan marker: its run file is gone (deleted before the crash).
        backlog.backend.create(marker).append_page(b"retired")
        report = scrub_backend(backlog.backend)
        assert marker in report.files_deferred
        rebuild_run_manager(backlog.backend, remove_invalid=True)
        assert not backlog.backend.exists(marker)

    def test_tombstone_name_round_trip(self):
        name = "p000001/from/L0_0000000042"
        marker = tombstone_name(name)
        assert marker.endswith(TOMBSTONE_SUFFIX)
        assert parse_tombstone_name(marker) == name
        assert parse_tombstone_name(name) is None
        assert parse_tombstone_name("junk" + TOMBSTONE_SUFFIX) is None


# ---------------------------------------------------------------- accounting


class TestAccounting:
    def test_quarantine_excluded_from_database_size(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        manager = backlog.run_manager
        size_before = backlog.database_size_bytes()
        victim = next(run for partition in manager.partitions()
                      for run in manager.runs_for(partition))
        assert manager.quarantine_run(victim.name)
        assert backlog.database_size_bytes() == size_before - victim.size_bytes
        assert backlog.quarantined_bytes() == victim.size_bytes
        assert backlog.backend.exists(victim.name)   # kept for post-mortem
        # Once an external scrub reclaims the file, the bytes drop to zero.
        backlog.backend.delete(victim.name)
        assert backlog.quarantined_bytes() == 0

    def test_deferred_bytes_track_pending_reclamation(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog)
        with backlog.catalogue.select():
            backlog.maintain()
            assert backlog.deferred_bytes() == sum(
                size for _, _, size in backlog.run_manager._deferred)
            assert backlog.deferred_bytes() > 0
        assert backlog.deferred_bytes() == 0

    def test_double_quarantine_returns_false(self, tmp_path):
        backlog = _backlog(tmp_path)
        _populate(backlog, blocks=64, rounds=1)
        manager = backlog.run_manager
        victim = next(run for partition in manager.partitions()
                      for run in manager.runs_for(partition))
        assert manager.quarantine_run(victim.name) is True
        assert manager.quarantine_run(victim.name) is False
        assert manager.quarantine_run("p000000/from/L0_0000009999") is False


# ---------------------------------------------------------------- misc guards


class TestGuards:
    def test_unknown_table_rejected_by_replace(self, tmp_path):
        backlog = _backlog(tmp_path)
        with pytest.raises(ValueError):
            backlog.run_manager.replace_partition(0, {"sideways": []})
