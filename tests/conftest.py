"""Shared fixtures for the Backlog reproduction test suite.

Worker-pool wiring: ``BacklogConfig`` defaults its ``flush_workers`` /
``maintenance_workers`` from the ``REPRO_FLUSH_WORKERS`` /
``REPRO_MAINTENANCE_WORKERS`` environment variables, so exporting
``REPRO_FLUSH_WORKERS=4`` runs this entire suite -- every test that does not
explicitly pin its worker counts -- through the partition-sharded parallel
flush and compaction paths.  CI has a matrix leg doing exactly that on every
push; ``pytest_report_header`` below surfaces the active counts so a log
always says which mode it exercised.
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro import (
    Backlog,
    BacklogConfig,
    DiskBackend,
    DiskImageBackend,
    FileSystem,
    FileSystemConfig,
    MemoryBackend,
    SnapshotManagerAuthority,
)
from repro.fsim.dedup import DedupConfig
from repro.fsim.snapshots import SnapshotPolicy


def pytest_report_header(config):
    defaults = BacklogConfig()
    chaos_seed = os.environ.get("REPRO_CHAOS_SEED", "20100223 (default)")
    return [
        (f"backlog workers: flush={defaults.flush_workers} "
         f"maintenance={defaults.maintenance_workers} "
         f"query={defaults.query_workers} "
         f"(REPRO_FLUSH_WORKERS / REPRO_MAINTENANCE_WORKERS / "
         f"REPRO_QUERY_WORKERS)"),
        # The cluster tests default their shard count from the same knob the
        # library does, so a CI leg can sweep shard counts via the env alone.
        f"cluster shards: {defaults.cluster_shards} (REPRO_CLUSTER_SHARDS)",
        # CI rotates the chaos seed per run; echo it so any failure in
        # tests/test_chaos.py can be reproduced locally with the same value.
        f"chaos seed: {chaos_seed} (REPRO_CHAOS_SEED)",
    ]


#: Storage backends the differential tier sweeps.  Tests requesting the
#: ``backend_factory`` fixture run once per kind: in-memory (the reference),
#: one batched file per page file, and one block-addressed image file.
BACKEND_KINDS = ("memory", "disk", "image")


@pytest.fixture(params=BACKEND_KINDS)
def backend_factory(request, tmp_path):
    """A factory of fresh storage backends of one parameterized kind.

    Each call returns an *independent* backend (its own directory or image
    file), so a test can build several systems side by side -- e.g. a
    reference instance and a candidate instance over the same workload.
    The chosen kind is exposed as ``factory.kind``.
    """
    counter = itertools.count()

    def make():
        index = next(counter)
        if request.param == "memory":
            return MemoryBackend()
        if request.param == "disk":
            return DiskBackend(str(tmp_path / f"disk-{index}"))
        return DiskImageBackend(str(tmp_path / f"image-{index}.img"))

    make.kind = request.param
    return make


@pytest.fixture
def rng():
    """A deterministic random generator for tests that need randomness."""
    return random.Random(1234)


@pytest.fixture
def shard_factory(tmp_path):
    """A factory of :class:`~repro.cluster.ShardedBacklog` clusters.

    Mirrors ``backend_factory``: each call builds an *independent* cluster
    (its own directory when durable), so a test can stand up a reference
    and a candidate side by side -- e.g. shards=1 against shards=3 over the
    same replayed workload.  Every cluster is closed (workers joined) at
    teardown even when the test fails.  ``num_shards=None`` inherits
    ``BacklogConfig.cluster_shards``, i.e. ``REPRO_CLUSTER_SHARDS``.
    """
    from repro.cluster import ShardedBacklog

    counter = itertools.count()
    created = []

    def make(num_shards=None, config=None, durable=False, **kwargs):
        index = next(counter)
        cluster = ShardedBacklog(
            num_shards=num_shards,
            config=config or BacklogConfig(partition_size_blocks=64),
            directory=str(tmp_path / f"cluster-{index}") if durable else None,
            **kwargs,
        )
        created.append(cluster)
        return cluster

    yield make
    for cluster in created:
        cluster.close()


def build_system(
    ops_per_cp: int = 10**9,
    dedup: DedupConfig | None = DedupConfig(),
    backlog_config: BacklogConfig | None = None,
    policy: SnapshotPolicy | None = None,
):
    """Create a (FileSystem, Backlog) pair wired together.

    ``ops_per_cp`` defaults to effectively-infinite so tests control
    consistency points explicitly.
    """
    backlog = Backlog(config=backlog_config)
    fs_config = FileSystemConfig(
        ops_per_cp=ops_per_cp,
        auto_cp=False,
        dedup=dedup,
        snapshot_policy=policy or SnapshotPolicy(),
    )
    fs = FileSystem(fs_config, listeners=[backlog])
    backlog.set_version_authority(SnapshotManagerAuthority(fs))
    return fs, backlog


@pytest.fixture
def system():
    """A connected (FileSystem, Backlog) pair with default settings."""
    return build_system()


@pytest.fixture
def fs(system):
    return system[0]


@pytest.fixture
def backlog(system):
    return system[1]
