"""Tests for the in-memory write store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import FromRecord, ToRecord
from repro.core.write_store import WriteStore


class TestTypeSafety:
    def test_rejects_unknown_table(self):
        with pytest.raises(ValueError):
            WriteStore("combined")

    def test_from_store_rejects_to_records(self):
        store = WriteStore("from")
        with pytest.raises(TypeError):
            store.insert(ToRecord(1, 1, 0, 0, 5))

    def test_to_store_rejects_from_records(self):
        store = WriteStore("to")
        with pytest.raises(TypeError):
            store.insert(FromRecord(1, 1, 0, 0, 5))


class TestInsertRemove:
    def test_insert_and_len(self):
        store = WriteStore("from")
        store.insert(FromRecord(10, 1, 0, 0, 3))
        store.insert(FromRecord(11, 1, 1, 0, 3))
        assert len(store) == 2
        assert store

    def test_duplicate_insert_is_idempotent(self):
        store = WriteStore("from")
        record = FromRecord(10, 1, 0, 0, 3)
        store.insert(record)
        store.insert(record)
        assert len(store) == 1
        assert store.inserts == 2

    def test_remove_present_and_absent(self):
        store = WriteStore("to")
        record = ToRecord(10, 1, 0, 0, 3)
        store.insert(record)
        assert store.remove(record) is True
        assert store.remove(record) is False
        assert len(store) == 0
        assert not store.may_contain_block(10)

    def test_clear(self):
        store = WriteStore("from")
        for block in range(20):
            store.insert(FromRecord(block, 1, 0, 0, 1))
        store.clear()
        assert len(store) == 0
        assert store.distinct_blocks() == []


class TestLookups:
    def test_contains_and_find(self):
        store = WriteStore("from")
        record = FromRecord(10, 2, 5, 0, 7)
        store.insert(record)
        assert store.contains(10, 2, 5, 0, 7)
        assert not store.contains(10, 2, 5, 0, 8)
        assert store.find(10, 2, 5, 0, 7) == record
        assert store.find(10, 2, 5, 0, 8) is None

    def test_records_for_key(self):
        store = WriteStore("from")
        store.insert(FromRecord(10, 2, 5, 0, 7))
        store.insert(FromRecord(10, 2, 5, 0, 9))
        store.insert(FromRecord(10, 2, 6, 0, 9))
        records = store.records_for_key(10, 2, 5, 0)
        assert [r.from_cp for r in records] == [7, 9]

    def test_records_for_block_and_range(self):
        store = WriteStore("to")
        for block in [5, 6, 7, 20]:
            store.insert(ToRecord(block, 1, 0, 0, 2))
        assert [r.block for r in store.records_for_block(6)] == [6]
        assert [r.block for r in store.records_for_block_range(5, 3)] == [5, 6, 7]
        assert store.records_for_block_range(8, 10) == []

    def test_distinct_blocks_tracking(self):
        store = WriteStore("from")
        store.insert(FromRecord(10, 1, 0, 0, 1))
        store.insert(FromRecord(10, 2, 0, 0, 1))
        store.insert(FromRecord(11, 1, 0, 0, 1))
        assert store.distinct_blocks() == [10, 11]
        store.remove(FromRecord(10, 1, 0, 0, 1))
        assert store.may_contain_block(10)
        store.remove(FromRecord(10, 2, 0, 0, 1))
        assert not store.may_contain_block(10)


class TestIterationOrder:
    def test_sorted_iteration(self):
        store = WriteStore("from")
        records = [
            FromRecord(20, 1, 0, 0, 1),
            FromRecord(10, 2, 0, 0, 1),
            FromRecord(10, 1, 5, 0, 1),
            FromRecord(10, 1, 0, 0, 2),
            FromRecord(10, 1, 0, 0, 1),
        ]
        for record in records:
            store.insert(record)
        assert list(store) == sorted(records, key=FromRecord.sort_key)

    def test_memory_estimate_scales(self):
        store = WriteStore("from")
        assert store.memory_estimate_bytes() == 0
        store.insert(FromRecord(1, 1, 0, 0, 1))
        assert store.memory_estimate_bytes() > 0


_record = st.tuples(
    st.integers(0, 50), st.integers(1, 10), st.integers(0, 10),
    st.integers(0, 3), st.integers(1, 20),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_record, max_size=100))
def test_write_store_matches_set_model(raw_records):
    """Property: the store behaves like a set ordered by the sort key."""
    store = WriteStore("from")
    model = set()
    for fields in raw_records:
        record = FromRecord(*fields)
        store.insert(record)
        model.add(record)
    assert list(store) == sorted(model, key=FromRecord.sort_key)
    assert sorted(store.distinct_blocks()) == sorted({r.block for r in model})
