"""Tests for the write-anywhere file system simulator."""

from __future__ import annotations

import pytest

from repro.fsim.dedup import DedupConfig
from repro.fsim.filesystem import FileSystem, FileSystemConfig, ReferenceListener
from repro.fsim.snapshots import SnapshotPolicy


class RecordingListener(ReferenceListener):
    """Captures every callback for assertions."""

    def __init__(self):
        self.added = []
        self.removed = []
        self.cps = []
        self.clones = []
        self.deleted_snapshots = []

    def on_reference_added(self, block, inode, offset, line, cp):
        self.added.append((block, inode, offset, line, cp))

    def on_reference_removed(self, block, inode, offset, line, cp):
        self.removed.append((block, inode, offset, line, cp))

    def on_consistency_point(self, cp):
        self.cps.append(cp)

    def on_clone_created(self, new_line, parent_line, parent_version, cp):
        self.clones.append((new_line, parent_line, parent_version, cp))

    def on_snapshot_deleted(self, line, version, is_zombie, cp):
        self.deleted_snapshots.append((line, version, is_zombie))


def _plain_fs(**overrides):
    defaults = dict(ops_per_cp=10**9, auto_cp=False, dedup=None)
    defaults.update(overrides)
    return FileSystem(FileSystemConfig(**defaults))


class TestFileOperations:
    def test_create_write_read(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=3)
        assert fs.file_size(inode) == 3
        assert fs.list_files() == [inode]
        pointers = fs.read(inode, 0, 3)
        assert all(p is not None for p in pointers)
        assert fs.counters.read_ops == 3

    def test_write_is_copy_on_write(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=1)
        before = fs.volume().inodes[inode].physical_block(0)
        fs.write(inode, 0, 1)
        after = fs.volume().inodes[inode].physical_block(0)
        assert before != after

    def test_write_validation(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=1)
        with pytest.raises(ValueError):
            fs.write(inode, 0, 0)
        with pytest.raises(KeyError):
            fs.write(999, 0, 1)
        with pytest.raises(KeyError):
            fs.volume(7)

    def test_append_truncate_delete(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=2)
        fs.append(inode, 3)
        assert fs.file_size(inode) == 5
        assert fs.truncate(inode, 1) == 4
        assert fs.file_size(inode) == 1
        assert fs.delete_file(inode) == 1
        assert fs.list_files() == []
        assert fs.counters.files_deleted == 1

    def test_listener_sees_reference_changes(self):
        listener = RecordingListener()
        fs = _plain_fs()
        fs.add_listener(listener)
        inode = fs.create_file(num_blocks=2)
        assert len(listener.added) == 2
        fs.write(inode, 0, 1)          # COW: one add + one remove
        assert len(listener.added) == 3
        assert len(listener.removed) == 1
        fs.delete_file(inode)
        assert len(listener.removed) == 3
        fs.remove_listener(listener)
        fs.create_file(num_blocks=1)
        assert len(listener.added) == 3

    def test_block_ops_counter(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=2)   # 2 adds
        fs.write(inode, 0, 1)                   # 1 add + 1 remove
        fs.delete_file(inode)                   # 2 removes
        assert fs.counters.block_ops == 6


class TestConsistencyPoints:
    def test_cp_number_advances(self):
        fs = _plain_fs()
        fs.create_file(num_blocks=1)
        assert fs.take_consistency_point() == 1
        assert fs.take_consistency_point() == 2
        assert fs.global_cp == 3

    def test_auto_cp_after_threshold(self):
        fs = FileSystem(FileSystemConfig(ops_per_cp=10, auto_cp=True, dedup=None))
        for _ in range(6):
            fs.create_file(num_blocks=5)
        assert fs.counters.consistency_points >= 2

    def test_cp_captures_snapshot_and_freezes_inodes(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=1)
        cp = fs.take_consistency_point()
        snapshot = fs.snapshots.get((0, cp))
        old_block = snapshot.inodes[inode].physical_block(0)
        fs.write(inode, 0, 1)
        # The snapshot keeps the original pointer even though the live file changed.
        assert snapshot.inodes[inode].physical_block(0) == old_block
        assert fs.volume().inodes[inode].physical_block(0) != old_block

    def test_meta_block_writes_accounted(self):
        fs = _plain_fs()
        fs.create_file(num_blocks=1)
        before = fs.counters.meta_block_writes
        fs.take_consistency_point()
        assert fs.counters.meta_block_writes > before

    def test_journal_truncated_at_cp(self):
        fs = _plain_fs(journal_enabled=True)
        fs.create_file(num_blocks=2)
        assert len(fs.journal) == 2
        fs.take_consistency_point()
        assert len(fs.journal) == 0

    def test_physical_data_bytes_tracks_allocations(self):
        fs = _plain_fs()
        assert fs.physical_data_bytes == 0
        fs.create_file(num_blocks=4)
        assert fs.physical_data_bytes == 4 * fs.config.block_size


class TestDeduplication:
    def test_dedup_produces_shared_blocks(self):
        fs = FileSystem(FileSystemConfig(
            ops_per_cp=10**9, auto_cp=False,
            dedup=DedupConfig(duplicate_fraction=0.5), dedup_seed=1,
        ))
        for _ in range(20):
            fs.create_file(num_blocks=20)
        histogram = fs.allocator.refcount_histogram()
        assert any(count >= 2 for count in histogram)

    def test_no_dedup_all_unique(self):
        fs = _plain_fs()
        for _ in range(5):
            fs.create_file(num_blocks=10)
        assert set(fs.allocator.refcount_histogram()) == {1}


class TestSnapshotsAndClones:
    def test_blocks_pinned_by_snapshot_survive_deletion(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=2)
        fs.take_consistency_point()
        fs.delete_file(inode)
        fs.take_consistency_point()
        # The snapshot still pins the blocks.
        assert fs.allocator.physical_blocks_in_use == 2

    def test_clone_creates_new_writable_line(self):
        listener = RecordingListener()
        fs = _plain_fs()
        fs.add_listener(listener)
        inode = fs.create_file(num_blocks=2)
        cp = fs.take_consistency_point()
        line = fs.create_clone(0, cp)
        assert line == 1
        assert listener.clones == [(1, 0, cp, fs.global_cp)]
        assert fs.list_files(line) == [inode]
        # Writing in the clone does not disturb the parent.
        parent_block = fs.volume(0).inodes[inode].physical_block(0)
        fs.write(inode, 0, 1, line=line)
        assert fs.volume(0).inodes[inode].physical_block(0) == parent_block
        assert fs.volume(line).inodes[inode].physical_block(0) != parent_block

    def test_clone_without_version_takes_cp(self):
        fs = _plain_fs()
        fs.create_file(num_blocks=1)
        line = fs.create_clone(0)
        assert line in fs.volumes

    def test_delete_clone_and_root_protection(self):
        fs = _plain_fs()
        fs.create_file(num_blocks=1)
        cp = fs.take_consistency_point()
        line = fs.create_clone(0, cp)
        fs.delete_clone(line)
        assert line not in fs.volumes
        with pytest.raises(ValueError):
            fs.delete_clone(0)

    def test_delete_snapshot_zombie_flag(self):
        listener = RecordingListener()
        fs = _plain_fs()
        fs.add_listener(listener)
        fs.create_file(num_blocks=1)
        cp = fs.take_consistency_point()
        fs.create_clone(0, cp)
        assert fs.delete_snapshot(0, cp) is True
        assert (0, cp, True) in listener.deleted_snapshots

    def test_retention_deletes_old_cps(self):
        policy = SnapshotPolicy(recent_cps=2, hourly_retained=1, nightly_retained=1,
                                cps_per_hour=0, cps_per_night=0)
        fs = _plain_fs(snapshot_policy=policy)
        inode = fs.create_file(num_blocks=1)
        for _ in range(6):
            fs.write(inode, 0, 1)
            fs.take_consistency_point()
        assert len(fs.snapshots.versions(0)) <= 2

    def test_iter_references(self):
        fs = _plain_fs()
        inode = fs.create_file(num_blocks=2)
        live = list(fs.iter_live_references())
        assert {(i, off) for _, i, off, _ in live} == {(inode, 0), (inode, 1)}
        fs.take_consistency_point()
        snap_refs = list(fs.iter_snapshot_references())
        assert len(snap_refs) == 2
        assert fs.live_lines() == [0]
