"""Tests for the From/To outer join, including the paper's worked examples."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.join import combine_for_query, join_tables
from repro.core.records import CombinedRecord, FromRecord, INFINITY, ToRecord


class TestPaperExamples:
    def test_section_4_1_example(self):
        """Inode 2 creates two blocks at CP 4 and truncates to one at CP 7."""
        froms = [FromRecord(100, 2, 0, 0, 4), FromRecord(101, 2, 1, 0, 4)]
        tos = [ToRecord(101, 2, 1, 0, 7)]
        combined = combine_for_query(froms, tos)
        assert CombinedRecord(100, 2, 0, 0, 4, INFINITY) in combined
        assert CombinedRecord(101, 2, 1, 0, 4, 7) in combined
        assert len(combined) == 2

    def test_section_4_2_1_join_example(self):
        """Block 103: inode 4 has it during [10,12) and [16,20); inode 5 from 30."""
        froms = [
            FromRecord(103, 4, 0, 0, 10),
            FromRecord(103, 4, 0, 0, 16),
            FromRecord(103, 5, 2, 0, 30),
        ]
        tos = [
            ToRecord(103, 4, 0, 0, 12),
            ToRecord(103, 4, 0, 0, 20),
        ]
        combined = combine_for_query(froms, tos)
        assert combined == [
            CombinedRecord(103, 4, 0, 0, 10, 12),
            CombinedRecord(103, 4, 0, 0, 16, 20),
            CombinedRecord(103, 5, 2, 0, 30, INFINITY),
        ]

    def test_section_4_2_2_writable_clone_example(self):
        """Block 103 in line 0 from CP 30; overridden in clone line 1 at CP 43."""
        froms = [
            FromRecord(103, 5, 2, 0, 30),
            FromRecord(107, 5, 2, 1, 43),
        ]
        tos = [ToRecord(103, 5, 2, 1, 43)]
        combined = combine_for_query(froms, tos)
        assert CombinedRecord(103, 5, 2, 0, 30, INFINITY) in combined
        assert CombinedRecord(107, 5, 2, 1, 43, INFINITY) in combined
        # The lone To entry joins with an implicit from = 0: an override record.
        assert CombinedRecord(103, 5, 2, 1, 0, 43) in combined


class TestCombineForQuery:
    def test_precomputed_combined_passes_through(self):
        existing = [CombinedRecord(50, 1, 0, 0, 2, 9)]
        result = combine_for_query([], [], existing)
        assert result == existing

    def test_multiple_lifetimes_same_key(self):
        froms = [FromRecord(7, 1, 0, 0, 1), FromRecord(7, 1, 0, 0, 5), FromRecord(7, 1, 0, 0, 9)]
        tos = [ToRecord(7, 1, 0, 0, 3), ToRecord(7, 1, 0, 0, 7)]
        result = combine_for_query(froms, tos)
        assert result == [
            CombinedRecord(7, 1, 0, 0, 1, 3),
            CombinedRecord(7, 1, 0, 0, 5, 7),
            CombinedRecord(7, 1, 0, 0, 9, INFINITY),
        ]

    def test_reference_removed_then_readded_in_clone(self):
        """An override To followed by a later re-allocation in the same line."""
        froms = [FromRecord(9, 3, 0, 1, 50)]
        tos = [ToRecord(9, 3, 0, 1, 43)]
        result = combine_for_query(froms, tos)
        assert result == [
            CombinedRecord(9, 3, 0, 1, 0, 43),
            CombinedRecord(9, 3, 0, 1, 50, INFINITY),
        ]

    def test_result_sorted(self):
        froms = [FromRecord(9, 1, 0, 0, 1), FromRecord(3, 1, 0, 0, 1)]
        result = combine_for_query(froms, [])
        assert [r.block for r in result] == [3, 9]


class TestJoinTables:
    def test_live_records_stay_in_from_table(self):
        """Compaction keeps incomplete records in the From table (§5.2)."""
        froms = [FromRecord(1, 1, 0, 0, 2), FromRecord(2, 1, 1, 0, 3)]
        tos = [ToRecord(1, 1, 0, 0, 5)]
        complete, incomplete = join_tables(froms, tos)
        assert complete == [CombinedRecord(1, 1, 0, 0, 2, 5)]
        assert incomplete == [FromRecord(2, 1, 1, 0, 3)]

    def test_existing_combined_merged_and_sorted(self):
        existing = [CombinedRecord(5, 1, 0, 0, 1, 2)]
        froms = [FromRecord(3, 1, 0, 0, 1)]
        tos = [ToRecord(3, 1, 0, 0, 4)]
        complete, incomplete = join_tables(froms, tos, existing)
        assert complete == [CombinedRecord(3, 1, 0, 0, 1, 4), CombinedRecord(5, 1, 0, 0, 1, 2)]
        assert incomplete == []

    def test_empty_inputs(self):
        complete, incomplete = join_tables([], [])
        assert complete == [] and incomplete == []


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(1, 50), max_size=8),
    st.lists(st.integers(1, 50), max_size=8),
)
def test_join_single_key_properties(from_cps, to_cps):
    """Property checks on a single reference identity.

    * every From CP appears as the start of exactly one output record,
    * every To CP appears as the end of exactly one output record,
    * every bounded record satisfies ``from < to``.
    """
    froms = [FromRecord(1, 1, 0, 0, cp) for cp in set(from_cps)]
    tos = [ToRecord(1, 1, 0, 0, cp) for cp in set(to_cps)]
    result = combine_for_query(froms, tos)

    starts = sorted(r.from_cp for r in result if not r.is_override)
    assert starts == sorted({cp for cp in from_cps})

    ends = sorted(r.to_cp for r in result if not r.is_live)
    assert ends == sorted({cp for cp in to_cps})

    for record in result:
        if not record.is_live:
            assert record.from_cp < record.to_cp
