"""Randomized chaos suite: seeded workloads x fault schedules vs the oracle.

The robustness contract (docs/ARCHITECTURE.md, "Failure model & recovery"):
under injected storage faults every operation either **completes with
correct answers** or **fails atomically, leaving the database recoverable
to the last complete consistency point**.  These tests drive randomized
file-system workloads through a :class:`~repro.fsim.faults.FaultyBackend`
and lock the contract against two independent oracles --
:class:`~repro.baselines.brute_force.BruteForceQuerier` (walks the
file-system tree, never touches the backlog's storage) and
:func:`~repro.core.verify.verify_backlog`.

The workload/fault seed rotates in CI (``REPRO_CHAOS_SEED``, echoed in the
pytest header so failures are reproducible); fault *rates* are chosen so the
suite passes for any seed -- individual faults are probabilistic, the
reactions asserted on are not.  The backend is always disarmed before the
verification phase: assertions exercise the database's reaction to the
faults that already fired, not fresh ones.

Single-mechanism (deterministic, seed-pinned) fault tests live in
``tests/test_faults.py``; this module is the end-to-end layer on top.
"""

from __future__ import annotations

import errno
import os
import random

import pytest

from repro import (
    Backlog,
    BacklogConfig,
    FaultPlan,
    FaultyBackend,
    FileSystem,
    FileSystemConfig,
    MemoryBackend,
    SnapshotManagerAuthority,
    TornWriteError,
    scrub_backend,
)
from repro.baselines.brute_force import BruteForceQuerier
from repro.core.recovery import recover_backlog
from repro.core.verify import verify_backlog

#: Rotated by CI (each run gets a fresh seed); fixed locally for repro runs.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20100223"))

#: Block range comfortably covering every block the workloads allocate.
ALL_BLOCKS = 1 << 22


def build_chaos_system(plan: FaultPlan, config: BacklogConfig | None = None,
                       clock=None, inner=None):
    """A (FileSystem, Backlog, FaultyBackend) triple, backend disarmed.

    ``inner`` substitutes the storage backend underneath the fault wrapper
    (default :class:`MemoryBackend`); the backend-differential smoke uses it
    to drive the same storms through the real disk backends.
    """
    backend = FaultyBackend(inner if inner is not None else MemoryBackend(), plan,
                            clock=clock if clock is not None else lambda _s: None)
    backend.disarm()
    backlog = Backlog(backend=backend,
                      config=config or BacklogConfig(io_retry_backoff_s=0.0))
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False),
                    listeners=[backlog])
    backlog.set_version_authority(SnapshotManagerAuthority(fs))
    return fs, backlog, backend


def _persist(fn, attempts: int = 6):
    """Call ``fn``, retrying on atomic CP failure.

    A flush that exhausts its I/O retries fails the whole consistency point
    atomically -- by contract the caller may simply take the CP again.  With
    the rates used here the chance of ``attempts`` *consecutive* exhausted
    batches is negligible for any seed.
    """
    for attempt in range(attempts):
        try:
            return fn()
        except OSError:
            if attempt == attempts - 1:
                raise


def drive_workload(fs, rng: random.Random, cps: int = 6, ops_per_cp: int = 30):
    """Random create/overwrite/append/snapshot/clone/delete-snapshot mix.

    Every consistency point goes through :func:`_persist`, so the workload
    "completes" even when individual flush attempts hit injected faults.
    """
    files = [(0, fs.create_file(num_blocks=rng.randint(1, 5)))]
    for cp_round in range(cps):
        for _ in range(ops_per_cp):
            roll = rng.random()
            line, inode = rng.choice(files)
            if roll < 0.30:
                new_line = rng.choice([entry[0] for entry in files])
                files.append((new_line, fs.create_file(
                    num_blocks=rng.randint(1, 5), line=new_line)))
            elif roll < 0.70:
                size = fs.volume(line).inodes[inode].size_blocks
                fs.write(inode, rng.randrange(size),
                         num_blocks=rng.randint(1, 2), line=line)
            elif roll < 0.90:
                fs.append(inode, num_blocks=1, line=line)
            elif roll < 0.96 or len(fs.volumes) >= 4:
                # (also the fallthrough once the clone DAG is bushy enough)
                _persist(lambda: fs.take_snapshot(line=line))
            else:
                parent = rng.choice(sorted(fs.volumes))
                clone_line = _persist(lambda: fs.create_clone(parent))
                files.extend((clone_line, number)
                             for number in sorted(fs.volume(clone_line).inodes))
        if cp_round == cps - 2:
            # Retire one retained snapshot so masking is in the mix too.
            snapshots = fs.snapshots.all_snapshots()
            if snapshots:
                victim = rng.choice(sorted(
                    (snap.line, snap.version) for snap in snapshots))
                fs.delete_snapshot(*victim)
        _persist(fs.take_consistency_point)


def assert_answers_match_oracle(fs, backlog) -> None:
    """Every oracle-visible reference is covered by a backlog answer."""
    oracle = BruteForceQuerier(fs).query_range(0, ALL_BLOCKS)
    assert oracle  # the workload must have produced something to check
    covered = {}
    for ref in backlog.query_range(0, ALL_BLOCKS):
        covered[(ref.block, ref.inode, ref.offset, ref.line)] = ref
    for block, inode, offset, line, version in oracle:
        ref = covered.get((block, inode, offset, line))
        assert ref is not None, (block, inode, offset, line)
        assert ref.covers_version(version), (ref, version)


# ------------------------------------------------- scenario A: transient storm


def test_chaos_transient_faults_and_latency_spikes_are_absorbed():
    """Flaky-but-healing storage: retries absorb everything, answers stay exact."""
    spikes = []
    plan = FaultPlan(seed=CHAOS_SEED, read_error_rate=0.05,
                     write_error_rate=0.05, latency_spike_rate=0.08,
                     latency_spike_s=0.25)
    fs, backlog, backend = build_chaos_system(
        plan, BacklogConfig(io_retries=4, io_retry_backoff_s=0.0),
        clock=spikes.append)
    backend.arm()
    drive_workload(fs, random.Random(CHAOS_SEED))
    _persist(backlog.maintain)

    backend.disarm()
    # The storm actually happened...
    assert backend.fault_stats.total > 0
    assert spikes == [0.25] * backend.fault_stats.latency_spikes
    # ...was absorbed by the executor's retry policy, not by luck...
    assert (backlog.stats.flush_pool.retries
            + backlog.stats.maintenance_pool.retries) > 0
    # ...and nothing was lost or quarantined: answers are exactly right.
    assert backlog.run_manager.quarantined == []
    assert_answers_match_oracle(fs, backlog)
    report = verify_backlog(fs, backlog)
    assert report.ok, report.mismatches[:5]


# ------------------------------------------------------- scenario B: ENOSPC


def test_chaos_enospc_fails_cp_atomically_and_both_exits_work():
    """Device fills mid-CP: the CP fails whole; recover *or* free space + retry."""
    fs, backlog, backend = build_chaos_system(FaultPlan(seed=CHAOS_SEED))
    rng = random.Random(CHAOS_SEED + 1)
    drive_workload(fs, rng, cps=3, ops_per_cp=20)
    for _ in range(15):
        line, inode = 0, rng.choice(sorted(fs.volume(0).inodes))
        fs.write(inode, 0, line=line)
    pending_before = backlog.pending_updates()
    runs_before = backlog.run_manager.run_count()
    assert pending_before > 0

    backend.free_space(pages=2)  # a run needs >= 3 pages: this CP cannot fit
    backend.arm()
    with pytest.raises(OSError) as exc_info:
        fs.take_consistency_point()
    backend.disarm()
    assert exc_info.value.errno == errno.ENOSPC

    # Atomic failure: nothing flushed, nothing registered, no leftover files.
    assert backlog.pending_updates() == pending_before
    assert backlog.run_manager.run_count() == runs_before
    registered = {run.name for partition in backlog.run_manager.partitions()
                  for run in backlog.run_manager.runs_for(partition)}
    assert set(backend.list_files()) == registered

    # Exit 1 -- treat it as a crash: the journal still holds the open CP's
    # events, and clone parentage is re-read from the file system's metadata.
    recovered = recover_backlog(
        backend, journal=fs.journal,
        version_authority=SnapshotManagerAuthority(fs),
        current_cp=fs.global_cp,
        clone_parents=fs.snapshots.clone_parentage())
    report = verify_backlog(fs, recovered)
    assert report.ok, report.mismatches[:5]

    # Exit 2 -- free space and simply take the CP again on the live instance.
    backend.free_space(None)
    fs.take_consistency_point()
    assert backlog.pending_updates() == 0
    assert_answers_match_oracle(fs, backlog)
    report = verify_backlog(fs, backlog)
    assert report.ok, report.mismatches[:5]


# -------------------------------------------------- scenario C: torn writes


def test_chaos_torn_write_fails_cp_and_database_recovers():
    """A power-cut page tear: no retry, atomic failure, clean recovery."""
    fs, backlog, backend = build_chaos_system(
        FaultPlan(seed=CHAOS_SEED, torn_write_rate=1.0),
        BacklogConfig(io_retries=4, io_retry_backoff_s=0.0))
    rng = random.Random(CHAOS_SEED + 2)
    drive_workload(fs, rng, cps=3, ops_per_cp=20)
    for _ in range(10):
        fs.write(rng.choice(sorted(fs.volume(0).inodes)), 0)

    backend.arm()  # every page write from here on tears
    with pytest.raises(TornWriteError):
        fs.take_consistency_point()
    backend.disarm()
    assert backend.fault_stats.torn_writes >= 1

    # The torn file was discarded with the rest of the failed batch: the
    # on-device state is exactly the last complete CP, bit-for-bit clean.
    report = scrub_backend(backend)
    assert report.clean, report.summary()

    # Crash now.  Journal replay restores the open CP's tail on top of the
    # last complete CP, and the recovered instance answers correctly.
    recovered = recover_backlog(
        backend, journal=fs.journal,
        version_authority=SnapshotManagerAuthority(fs),
        current_cp=fs.global_cp,
        clone_parents=fs.snapshots.clone_parentage())
    report = verify_backlog(fs, recovered)
    assert report.ok, report.mismatches[:5]
    assert_answers_match_oracle(fs, recovered)


# ------------------------------------------------- scenario D: bit rot at rest


def test_chaos_bit_rot_degrades_queries_and_scrub_reclaims():
    """Silent corruption at rest: quarantine, degraded answers, scrub repair."""
    fs, backlog, backend = build_chaos_system(FaultPlan(seed=CHAOS_SEED))
    rng = random.Random(CHAOS_SEED + 3)
    drive_workload(fs, rng, cps=4, ops_per_cp=25)
    oracle_live = {(block, inode, offset, line)
                   for block, inode, offset, line in fs.iter_live_references()}

    partition = backlog.run_manager.partitions()[0]
    victim = backlog.run_manager.runs_for(partition, "from")[0]
    backend.corrupt_page(victim.name, 0, bit=8 * rng.randrange(64) + 1)

    # Queries must not crash: the damaged run is quarantined and the query
    # re-answered from the survivors -- degraded (a subset of the truth),
    # never wrong (no fabricated references), and stable across re-queries.
    degraded = backlog.query_range(0, ALL_BLOCKS)
    live = {(ref.block, ref.inode, ref.offset, ref.line)
            for ref in degraded if ref.is_live}
    assert live <= oracle_live
    assert backlog.query_range(0, ALL_BLOCKS) == degraded
    assert backlog.stats.query.corrupt_pages_detected >= 1
    assert backlog.stats.query.runs_quarantined == 1
    assert victim.name in backlog.run_manager.quarantined

    # The scrub audit sees exactly what the query path tripped over, and
    # reclaiming leaves a clean device (minus the quarantined run).
    report = scrub_backend(backend)
    assert victim.name in report.runs_corrupt
    assert backend.exists(victim.name)  # quarantine keeps the file for scrub
    repaired = scrub_backend(backend, reclaim=True)
    assert victim.name in repaired.files_reclaimed
    assert not backend.exists(victim.name)
    assert scrub_backend(backend).clean


# ------------------------------------------- scenario E: backend differential


def test_chaos_smoke_every_backend_absorbs_transient_faults(backend_factory):
    """A shortened scenario-A storm over each real storage backend.

    Batched DiskBackend appends and the image backend's shared descriptor
    must absorb transient faults exactly like MemoryBackend: retried I/O
    never duplicates or loses pages, and the answers stay exact.
    """
    plan = FaultPlan(seed=CHAOS_SEED, read_error_rate=0.05,
                     write_error_rate=0.05)
    fs, backlog, backend = build_chaos_system(
        plan, BacklogConfig(io_retries=4, io_retry_backoff_s=0.0),
        inner=backend_factory())
    backend.arm()
    drive_workload(fs, random.Random(CHAOS_SEED), cps=4, ops_per_cp=25)
    _persist(backlog.maintain)

    backend.disarm()
    assert backend.fault_stats.total > 0
    assert backlog.run_manager.quarantined == []
    assert_answers_match_oracle(fs, backlog)
    report = verify_backlog(fs, backlog)
    assert report.ok, report.mismatches[:5]
