"""The coordinator/worker wire protocol: framed, versioned request/response.

Every message is one frame::

    +-------+---------+--------+-----+----------------+---------------+
    | magic | version | opcode | pad | payload length | pickle payload|
    |  4 B  |   1 B   |  1 B   | 2 B |     4 B LE     |   variable    |
    +-------+---------+--------+-----+----------------+---------------+

The header is validated on every receive -- wrong magic, unknown protocol
version, unknown opcode or a length mismatch all raise
:class:`ProtocolError` instead of unpickling garbage.  Payloads are pickled
(stdlib only -- the container has no msgpack, and every payload is built
from our own dataclasses and primitives), and the frame layout is transport
agnostic: today frames travel over a duplex
:class:`multiprocessing.connection.Connection` pipe, but the explicit
length prefix means the identical bytes could stream over a TCP socket for
a true multi-node deployment.

The conversation is strict request/response: the coordinator sends one
request frame and reads exactly one reply frame (:data:`Opcode.OK` or
:data:`Opcode.ERROR`) before the next request on that channel.
:class:`Channel` enforces this with a per-channel lock, which is also what
lets concurrent coordinator threads (HTTP sessions, the churn thread)
multiplex one pipe per worker safely.

An ``ERROR`` reply carries the worker-side exception's type name and
message; :func:`raise_reply_error` re-raises it as the matching local
exception type for the handful of types callers genuinely dispatch on
(``OSError`` for failed flushes, ``ValueError`` for bad specs) and as
:class:`WorkerError` otherwise.
"""

from __future__ import annotations

import pickle
import struct
import threading
from enum import IntEnum
from typing import Any, Tuple

__all__ = [
    "Channel",
    "ChannelClosedError",
    "Opcode",
    "ProtocolError",
    "WorkerError",
    "PROTOCOL_VERSION",
    "encode_frame",
    "decode_frame",
    "raise_reply_error",
]

#: Frame magic: "BacKlog Cluster".
MAGIC = b"BKLC"

#: Bumped whenever the frame layout or any payload schema changes shape, so
#: a mixed-version coordinator/worker pair fails its first exchange loudly.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("<4sBBxxI")

#: Upper bound on a single frame's payload; a length beyond this is treated
#: as a corrupt header rather than an allocation request.
MAX_PAYLOAD_BYTES = 1 << 30


class Opcode(IntEnum):
    """Versioned message kinds (requests, then replies)."""

    # Coordinator -> worker requests.
    SYNC = 1              # (re)install clone graph, suppressions, CP state
    UPDATE = 2            # batch of buffered add/remove reference ops
    CHECKPOINT_PREPARE = 3  # phase one: flush write stores, persist meta
    CHECKPOINT_COMMIT = 4   # phase two: global CP published, advance
    MAINTAIN = 5          # run database maintenance on the shard
    QUERY_OPEN = 6        # open a per-partition sub-query, return a page
    QUERY_PAGE = 7        # continue a sub-query from a resume token
    STATS = 8             # shard counters (query stats, pools, sizes)
    RELOCATE = 9          # suppress stale refs of one moved block
    CLONE = 10            # register a writable clone
    SNAPSHOT_DELETED = 11  # propagate snapshot deletion / zombie state
    FAULT = 12            # test harness: drive the shard's FaultyBackend
    SHUTDOWN = 13         # drain and exit the worker loop

    # Worker -> coordinator replies.
    OK = 64
    ERROR = 65


class ProtocolError(RuntimeError):
    """A malformed or version-incompatible frame."""


class WorkerError(RuntimeError):
    """A worker-side failure relayed over an ERROR reply."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ChannelClosedError(ConnectionError):
    """The transport under a channel broke (worker crash or shutdown).

    Distinct from any *relayed* worker exception on purpose: a relayed
    ``OSError`` means the worker is alive and reported a failure (say, an
    ENOSPC flush), while this means the pipe itself died -- which is the
    coordinator's cue to run the respawn/recover/replay path.
    """


def encode_frame(opcode: Opcode, payload: Any) -> bytes:
    """Serialise one message into its framed wire bytes."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {len(body)} bytes")
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(opcode), len(body)) + body


def decode_frame(data: bytes) -> Tuple[Opcode, Any]:
    """Parse framed wire bytes; raises :class:`ProtocolError` on bad input."""
    if len(data) < _HEADER.size:
        raise ProtocolError(f"short frame: {len(data)} bytes")
    magic, version, opcode, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic: {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this process speaks {PROTOCOL_VERSION}")
    if length > MAX_PAYLOAD_BYTES or len(data) - _HEADER.size != length:
        raise ProtocolError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - _HEADER.size} payload bytes")
    try:
        kind = Opcode(opcode)
    except ValueError as exc:
        raise ProtocolError(f"unknown opcode {opcode}") from exc
    return kind, pickle.loads(data[_HEADER.size:])


def raise_reply_error(payload: Any) -> None:
    """Re-raise a worker's ERROR reply as the matching local exception.

    ``OSError`` keeps its errno so the coordinator's two-phase checkpoint
    surfaces a worker's ENOSPC exactly like a local failed flush would;
    ``ValueError`` keeps spec/token validation errors as client errors.
    Everything else becomes :class:`WorkerError` (the kind is preserved for
    diagnostics) -- the coordinator must not fabricate arbitrary exception
    types from wire data.
    """
    kind = payload.get("kind", "RuntimeError")
    message = payload.get("message", "worker failure")
    if kind == "OSError":
        raise OSError(payload.get("errno") or 0, message)
    if kind == "ValueError":
        raise ValueError(message)
    raise WorkerError(kind, message)


class Channel:
    """One framed request/response conduit to a worker process.

    Wraps a duplex :class:`multiprocessing.connection.Connection`.  The
    lock serialises whole request/response exchanges, so any number of
    coordinator threads can share the channel without interleaving frames.
    """

    def __init__(self, connection) -> None:
        self._connection = connection
        self._lock = threading.Lock()

    def send(self, opcode: Opcode, payload: Any = None) -> None:
        self._connection.send_bytes(encode_frame(opcode, payload))

    def recv(self) -> Tuple[Opcode, Any]:
        return decode_frame(self._connection.recv_bytes())

    def request(self, opcode: Opcode, payload: Any = None) -> Any:
        """One locked request/response round trip.

        Returns the OK reply's payload; re-raises a relayed worker error.
        A closed or broken pipe surfaces as :class:`ChannelClosedError`
        for the coordinator's crash-detection path -- deliberately NOT a
        plain ``OSError``, which is reserved for relayed worker failures.
        """
        with self._lock:
            try:
                self.send(opcode, payload)
                reply, body = self.recv()
            except (EOFError, OSError) as exc:
                raise ChannelClosedError(str(exc) or "pipe closed") from exc
        if reply is Opcode.OK:
            return body
        if reply is Opcode.ERROR:
            raise_reply_error(body)
        raise ProtocolError(f"unexpected reply opcode {reply!r}")

    def close(self) -> None:
        self._connection.close()
