"""The coordinator/worker wire protocol: framed, versioned request/response.

Every message is one frame::

    +-------+---------+--------+-----+----------------+---------------+
    | magic | version | opcode | pad | payload length | pickle payload|
    |  4 B  |   1 B   |  1 B   | 2 B |     4 B LE     |   variable    |
    +-------+---------+--------+-----+----------------+---------------+

The header is validated on every receive -- wrong magic, unknown protocol
version, unknown opcode or a length mismatch all raise
:class:`ProtocolError` instead of unpickling garbage.  Payloads are pickled
(stdlib only -- the container has no msgpack, and every payload is built
from our own dataclasses and primitives), and the frame layout is transport
agnostic: today frames travel over a duplex
:class:`multiprocessing.connection.Connection` pipe, but the explicit
length prefix means the identical bytes could stream over a TCP socket for
a true multi-node deployment.

The conversation is strict request/response: the coordinator sends one
request frame and reads exactly one reply frame (:data:`Opcode.OK` or
:data:`Opcode.ERROR`) before the next request on that channel.
:class:`Channel` enforces this with a per-channel lock, which is also what
lets concurrent coordinator threads (HTTP sessions, the churn thread)
multiplex one pipe per worker safely.

An ``ERROR`` reply carries the worker-side exception's type name and
message; :func:`raise_reply_error` re-raises it as the matching local
exception type for the handful of types callers genuinely dispatch on
(``OSError`` for failed flushes, ``ValueError`` for bad specs) and as
:class:`WorkerError` otherwise.
"""

from __future__ import annotations

import pickle
import struct
import sys
import threading
from array import array
from enum import IntEnum
from functools import partial
from itertools import accumulate, chain
from typing import Any, Iterable, List, Tuple

from repro.core.records import BackReference

__all__ = [
    "Channel",
    "ChannelClosedError",
    "Opcode",
    "ProtocolError",
    "QueryPage",
    "WorkerError",
    "PROTOCOL_VERSION",
    "QUERY_PAGE_VERSION",
    "encode_frame",
    "decode_frame",
    "pack_back_references",
    "unpack_back_references",
    "raise_reply_error",
]

#: Frame magic: "BacKlog Cluster".
MAGIC = b"BKLC"

#: Bumped whenever the frame layout or any payload schema changes shape, so
#: a mixed-version coordinator/worker pair fails its first exchange loudly.
#: Version 1 frames pickle their whole payload; version 2 frames (see
#: :data:`QUERY_PAGE_VERSION`) carry a query page as packed columnar arrays.
PROTOCOL_VERSION = 1

#: Frame version of a packed :class:`QueryPage` reply.  Replies only: every
#: request still travels as a version-1 pickle frame, and a worker that
#: answers with version 2 is talking to a coordinator from the same build
#: (the coordinator spawned it), so decoding accepts both versions while
#: anything newer still fails loudly.
QUERY_PAGE_VERSION = 2

_HEADER = struct.Struct("<4sBBxxI")

#: Upper bound on a single frame's payload; a length beyond this is treated
#: as a corrupt header rather than an allocation request.
MAX_PAYLOAD_BYTES = 1 << 30


class Opcode(IntEnum):
    """Versioned message kinds (requests, then replies)."""

    # Coordinator -> worker requests.
    SYNC = 1              # (re)install clone graph, suppressions, CP state
    UPDATE = 2            # batch of buffered add/remove reference ops
    CHECKPOINT_PREPARE = 3  # phase one: flush write stores, persist meta
    CHECKPOINT_COMMIT = 4   # phase two: global CP published, advance
    MAINTAIN = 5          # run database maintenance on the shard
    QUERY_OPEN = 6        # open a per-partition sub-query, return a page
    QUERY_PAGE = 7        # continue a sub-query from a resume token
    STATS = 8             # shard counters (query stats, pools, sizes)
    RELOCATE = 9          # suppress stale refs of one moved block
    CLONE = 10            # register a writable clone
    SNAPSHOT_DELETED = 11  # propagate snapshot deletion / zombie state
    FAULT = 12            # test harness: drive the shard's FaultyBackend
    SHUTDOWN = 13         # drain and exit the worker loop

    # Worker -> coordinator replies.
    OK = 64
    ERROR = 65


class ProtocolError(RuntimeError):
    """A malformed or version-incompatible frame."""


class WorkerError(RuntimeError):
    """A worker-side failure relayed over an ERROR reply."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ChannelClosedError(ConnectionError):
    """The transport under a channel broke (worker crash or shutdown).

    Distinct from any *relayed* worker exception on purpose: a relayed
    ``OSError`` means the worker is alive and reported a failure (say, an
    ENOSPC flush), while this means the pipe itself died -- which is the
    coordinator's cue to run the respawn/recover/replay path.
    """


class QueryPage:
    """One shard's page of query results, shipped packed instead of pickled.

    The worker builds it from the cursor's *raw* owner tuples
    (:meth:`repro.core.cursor.QueryResult.all_rows`) -- a record that
    travelled the columnar pipeline never becomes a BackReference on the
    worker at all.  :func:`encode_frame` recognises the type and emits a
    version-:data:`QUERY_PAGE_VERSION` frame whose body is the packed
    columnar arrays plus a small pickled metadata dict;
    :func:`decode_frame` materialises it back into exactly the
    ``{"results": [BackReference, ...], "resume_token": ..., "exhausted":
    ..., "stats": ...}`` reply dict the pickle wire always carried, so the
    coordinator's scatter-gather loop is codec-agnostic.
    """

    __slots__ = ("results", "resume_token", "exhausted", "stats")

    def __init__(self, results: List[Tuple], resume_token: Any,
                 exhausted: bool, stats: Any) -> None:
        self.results = results
        self.resume_token = resume_token
        self.exhausted = exhausted
        self.stats = stats


#: Packed page body prefix: number of owners, total number of range pairs.
_REFS_HEADER = struct.Struct("<II")
#: Length prefix of the pickled metadata dict in a version-2 frame body.
_META_HEADER = struct.Struct("<I")

_NATIVE_IS_BE = sys.byteorder == "big"


def _wire_bytes(values: array) -> bytes:
    """The array's items as little-endian wire bytes."""
    if _NATIVE_IS_BE:
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _wire_array(typecode: str, data: bytes) -> array:
    """Little-endian wire bytes back into a native array."""
    values = array(typecode)
    values.frombytes(data)
    if _NATIVE_IS_BE:
        values.byteswap()
    return values


#: ``tuple.__new__`` bound to :class:`BackReference`: what ``_make`` does
#: per call, minus its Python stack frame -- the decode loop's constructor.
_MAKE_REF = partial(tuple.__new__, BackReference)


def pack_back_references(refs: List[Tuple]) -> bytes:
    """Pack owner tuples into flat columnar arrays (the v2 page body).

    ``refs`` holds ``(block, inode, offset, line, ranges)`` tuples --
    :class:`BackReference` or the columnar pipeline's raw owners, both pack
    identically.  Layout: the :data:`_REFS_HEADER` counts, then six flat
    little-endian column sections -- u64 blocks, u64 inodes, u64 offsets,
    u64 lines, u32 range counts, then 2 u64s per range pair.  One C-level
    ``zip`` transposes the tuples into columns and every section fills in
    one C pass; nothing is pickled.
    """
    if not refs:
        return _REFS_HEADER.pack(0, 0)
    blocks, inodes, offsets, lines, ranges_list = zip(*refs)
    counts = array("I", list(map(len, ranges_list)))
    pairs = array("Q", list(chain.from_iterable(chain.from_iterable(ranges_list))))
    return b"".join((
        _REFS_HEADER.pack(len(refs), len(pairs) // 2),
        _wire_bytes(array("Q", blocks)), _wire_bytes(array("Q", inodes)),
        _wire_bytes(array("Q", offsets)), _wire_bytes(array("Q", lines)),
        _wire_bytes(counts), _wire_bytes(pairs)))


def unpack_back_references(data: bytes, offset: int = 0) -> List[BackReference]:
    """Materialise a packed page body into :class:`BackReference` results.

    The inverse of :func:`pack_back_references` *and* the wire's
    materialisation boundary: the one place a shipped owner becomes a
    NamedTuple.  The whole reconstruction is chained C loops -- each column
    decodes with one ``array`` fill, the pair columns interleave lazily
    under ``zip``, and every owner is built by ``tuple.__new__`` directly
    (:data:`_MAKE_REF`).  Raises :class:`ProtocolError` on truncated or
    inconsistent bodies instead of building garbage results.
    """
    view = memoryview(data)[offset:]
    if len(view) < _REFS_HEADER.size:
        raise ProtocolError(f"short query page body: {len(view)} bytes")
    num_refs, num_pairs = _REFS_HEADER.unpack_from(view, 0)
    n8 = num_refs * 8
    counts_start = _REFS_HEADER.size + 4 * n8
    pairs_start = counts_start + num_refs * 4
    pairs_end = pairs_start + num_pairs * 16
    if len(view) != pairs_end:
        raise ProtocolError(
            f"query page length mismatch: {num_refs} owners / {num_pairs} "
            f"pairs need {pairs_end} bytes, got {len(view)}")
    pos = _REFS_HEADER.size
    blocks = _wire_array("Q", view[pos:pos + n8])
    inodes = _wire_array("Q", view[pos + n8:pos + 2 * n8])
    offsets = _wire_array("Q", view[pos + 2 * n8:pos + 3 * n8])
    lines = _wire_array("Q", view[pos + 3 * n8:counts_start])
    counts = _wire_array("I", view[counts_start:pairs_start])
    flat = _wire_array("Q", view[pairs_start:pairs_end])
    if sum(counts) != num_pairs:
        raise ProtocolError("query page range counts do not sum to the pair count")
    pairs = zip(flat[0::2], flat[1::2])
    if counts.count(1) == num_refs:
        # The common shape (every owner one merged range): the 1-tuple
        # range sets come straight off a lazy zip-of-zip.
        rngs: Iterable[Tuple] = zip(pairs)
    else:
        # Mixed counts: cut the pair list by cumulative offsets, everything
        # staying inside C map loops (slice objects -> list slices ->
        # tuples) rather than one islice consumer per owner.
        pair_list = list(pairs)
        bounds = list(accumulate(counts))
        rngs = list(map(tuple, map(pair_list.__getitem__,
                                   map(slice, chain((0,), bounds), bounds))))
    return list(map(_MAKE_REF, zip(blocks, inodes, offsets, lines, rngs)))


def encode_frame(opcode: Opcode, payload: Any) -> bytes:
    """Serialise one message into its framed wire bytes.

    A :class:`QueryPage` payload takes the packed columnar encoding (a
    version-:data:`QUERY_PAGE_VERSION` frame); everything else pickles into
    a version-:data:`PROTOCOL_VERSION` frame exactly as before.
    """
    if type(payload) is QueryPage:
        meta = pickle.dumps(
            {"resume_token": payload.resume_token,
             "exhausted": payload.exhausted,
             "stats": payload.stats},
            protocol=pickle.HIGHEST_PROTOCOL)
        body = (_META_HEADER.pack(len(meta)) + meta
                + pack_back_references(payload.results))
        version = QUERY_PAGE_VERSION
    else:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        version = PROTOCOL_VERSION
    if len(body) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"payload too large: {len(body)} bytes")
    return _HEADER.pack(MAGIC, version, int(opcode), len(body)) + body


def decode_frame(data: bytes) -> Tuple[Opcode, Any]:
    """Parse framed wire bytes; raises :class:`ProtocolError` on bad input.

    Accepts version-1 (pickled payload) and version-2 (packed query page)
    frames; a version-2 body decodes into the same reply dict shape the
    pickle wire carries, so callers never see the codec.
    """
    if len(data) < _HEADER.size:
        raise ProtocolError(f"short frame: {len(data)} bytes")
    magic, version, opcode, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic: {magic!r}")
    if version not in (PROTOCOL_VERSION, QUERY_PAGE_VERSION):
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this process speaks {PROTOCOL_VERSION}")
    if length > MAX_PAYLOAD_BYTES or len(data) - _HEADER.size != length:
        raise ProtocolError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - _HEADER.size} payload bytes")
    try:
        kind = Opcode(opcode)
    except ValueError as exc:
        raise ProtocolError(f"unknown opcode {opcode}") from exc
    if version == QUERY_PAGE_VERSION:
        body = memoryview(data)[_HEADER.size:]
        if len(body) < _META_HEADER.size:
            raise ProtocolError(f"short query page frame: {len(body)} bytes")
        meta_len = _META_HEADER.unpack_from(body, 0)[0]
        meta_end = _META_HEADER.size + meta_len
        if len(body) < meta_end:
            raise ProtocolError("query page metadata overruns the frame")
        reply = pickle.loads(body[_META_HEADER.size:meta_end])
        reply["results"] = unpack_back_references(data, _HEADER.size + meta_end)
        return kind, reply
    return kind, pickle.loads(data[_HEADER.size:])


def raise_reply_error(payload: Any) -> None:
    """Re-raise a worker's ERROR reply as the matching local exception.

    ``OSError`` keeps its errno so the coordinator's two-phase checkpoint
    surfaces a worker's ENOSPC exactly like a local failed flush would;
    ``ValueError`` keeps spec/token validation errors as client errors.
    Everything else becomes :class:`WorkerError` (the kind is preserved for
    diagnostics) -- the coordinator must not fabricate arbitrary exception
    types from wire data.
    """
    kind = payload.get("kind", "RuntimeError")
    message = payload.get("message", "worker failure")
    if kind == "OSError":
        raise OSError(payload.get("errno") or 0, message)
    if kind == "ValueError":
        raise ValueError(message)
    raise WorkerError(kind, message)


class Channel:
    """One framed request/response conduit to a worker process.

    Wraps a duplex :class:`multiprocessing.connection.Connection`.  The
    lock serialises whole request/response exchanges, so any number of
    coordinator threads can share the channel without interleaving frames.
    """

    def __init__(self, connection) -> None:
        self._connection = connection
        self._lock = threading.Lock()

    def send(self, opcode: Opcode, payload: Any = None) -> None:
        self._connection.send_bytes(encode_frame(opcode, payload))

    def recv(self) -> Tuple[Opcode, Any]:
        return decode_frame(self._connection.recv_bytes())

    def request(self, opcode: Opcode, payload: Any = None) -> Any:
        """One locked request/response round trip.

        Returns the OK reply's payload; re-raises a relayed worker error.
        A closed or broken pipe surfaces as :class:`ChannelClosedError`
        for the coordinator's crash-detection path -- deliberately NOT a
        plain ``OSError``, which is reserved for relayed worker failures.
        """
        with self._lock:
            try:
                self.send(opcode, payload)
                reply, body = self.recv()
            except (EOFError, OSError) as exc:
                raise ChannelClosedError(str(exc) or "pipe closed") from exc
        if reply is Opcode.OK:
            return body
        if reply is Opcode.ERROR:
            raise_reply_error(body)
        raise ProtocolError(f"unexpected reply opcode {reply!r}")

    def close(self) -> None:
        self._connection.close()
