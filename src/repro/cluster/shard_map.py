"""Deterministic partition-to-shard placement for the process cluster.

The cluster promotes the partition -- already the unit of deterministic
*thread* parallelism (flush fan-out, parallel compaction, read-side query
fan-out) -- to the unit of *distribution*: every partition is owned by
exactly one worker process, and the owner is a pure function of the
partition id and the shard count.  Partitions are striped round-robin
(``partition % num_shards``), which

* keeps contiguous block ranges spread across workers (a range scan touches
  all shards instead of hammering one),
* puts partition 0 on shard 0, preserving the lazy-gather guarantee that
  ``.first()`` on a whole-device range only ever opens the first shard, and
* makes placement identical across runs and across coordinator restarts
  with zero stored state -- the shard map *is* the function.

Because each partition has exactly one owner, the coordinator's gather can
merge per-shard answers with the same partition-boundary merge the
in-process lazy gather performs: iterate partitions in ascending order,
drain each partition's owner completely, and global ``(block, inode,
offset, line)`` emission order falls out by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.partitioning import Partitioner

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Maps physical blocks to the worker shard that owns them.

    Parameters
    ----------
    num_shards:
        Number of worker processes in the cluster.
    partition_size_blocks:
        Width of each partition (must match the workers'
        :class:`~repro.core.config.BacklogConfig.partition_size_blocks`,
        since placement routes whole partitions).
    """

    num_shards: int
    partition_size_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.partition_size_blocks <= 0:
            raise ValueError("partition_size_blocks must be positive")

    @property
    def partitioner(self) -> Partitioner:
        return Partitioner(self.partition_size_blocks)

    def shard_of_partition(self, partition: int) -> int:
        """Owning shard of ``partition`` (round-robin striping)."""
        if partition < 0:
            raise ValueError("partition ids are non-negative")
        return partition % self.num_shards

    def shard_of_block(self, block: int) -> int:
        """Owning shard of physical ``block``."""
        if block < 0:
            raise ValueError("block numbers are non-negative")
        return (block // self.partition_size_blocks) % self.num_shards

    def subranges(self, first_block: int, num_blocks: int,
                  ) -> Iterator[Tuple[int, int, int, int]]:
        """Decompose a block range at partition boundaries, in block order.

        Yields ``(partition, shard, first_block, num_blocks)`` pieces whose
        concatenation is exactly ``[first_block, first_block + num_blocks)``.
        This decomposition is what makes the scatter-gather *shard-count
        independent*: the sequence of per-partition sub-queries (and hence
        the pages each worker reads to answer them) is the same at one shard
        and at N -- only which process answers each piece changes.
        """
        if num_blocks <= 0:
            return
        size = self.partition_size_blocks
        block = first_block
        end = first_block + num_blocks
        while block < end:
            partition = block // size
            boundary = min(end, (partition + 1) * size)
            yield (partition, self.shard_of_partition(partition),
                   block, boundary - block)
            block = boundary

    def partitions_of_shard(self, shard: int, num_partitions: int) -> List[int]:
        """The first ``num_partitions``-bounded partition ids ``shard`` owns."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard must be in [0, {self.num_shards})")
        return list(range(shard, num_partitions, self.num_shards))
