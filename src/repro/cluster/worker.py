"""The shard worker process: one Backlog slice behind a message loop.

Each worker owns the partitions the :class:`~repro.cluster.shard_map.
ShardMap` stripes onto it -- their write stores, Level-0 runs, compaction
and query pipelines -- as a completely ordinary
:class:`~repro.core.backlog.Backlog` over its own storage backend.  The
process boundary is what buys CPU parallelism: clone-chain expansion and
merge-joins for different partitions no longer share one interpreter lock.

Workers are *spawned*, not forked: the coordinator lives in a thread-heavy
parent (HTTP handler threads, executor pools), and forking a thread-heavy
process can clone held locks into the child.  Spawn re-imports this module
in a clean interpreter, so :func:`worker_main` and every argument it takes
must be picklable module-level state -- which they are: a pipe connection,
plain ints/strings, a frozen :class:`~repro.core.config.BacklogConfig` and
an optional frozen :class:`~repro.fsim.faults.FaultPlan`.

Durability and crash recovery
-----------------------------

A disk-backed shard persists a tiny meta file (``shard-NN.meta.json``,
written via temp-file + ``os.replace``) after every successful checkpoint
*prepare* and every maintenance pass::

    {"cp": <last durably flushed CP>, "sequence": <max run sequence then>,
     "committed": <last globally committed CP>}

On restart, the recovery rule is: delete every **Level-0** run whose
sequence is greater than ``meta.sequence`` (the leftovers of a prepare
that never completed -- they were never acknowledged to the coordinator),
then mount whatever remains through the existing
:func:`~repro.core.recovery.recover_backlog` path, which already skips and
removes invalid partial files and honours ``.retired`` tombstones.
Compaction outputs use the distinct ``compact`` level, so a crash mid-
maintenance never rolls back completed partitions: fully written compact
runs survive the L0-only pruning, and a partition's half-written output is
an invalid file the rebuild deletes (its inputs are still catalogued).
The coordinator then replays the update batches since the shard's last
durable CP -- exactly the journal-replay contract single-process recovery
has always had, with the coordinator's pending log standing in for the
file system journal.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional, Sequence

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.cursor import QuerySpec
from repro.core.lsm import parse_run_name
from repro.core.masking import VersionAuthority
from repro.core.recovery import recover_backlog
from repro.fsim.blockdev import DiskBackend, MemoryBackend
from repro.fsim.faults import FaultPlan, FaultyBackend

from repro.cluster.protocol import Channel, Opcode, QueryPage

__all__ = ["worker_main", "shard_directory", "shard_meta_path"]


def shard_directory(directory: str, shard: int) -> str:
    """The run directory of ``shard`` under a cluster's root directory."""
    return os.path.join(directory, f"shard-{shard:02d}")


def shard_meta_path(directory: str, shard: int) -> str:
    """The durable per-shard checkpoint meta file."""
    return os.path.join(directory, f"shard-{shard:02d}.meta.json")


class _SyncedAuthority(VersionAuthority):
    """The coordinator's view of valid versions, re-applied per request.

    Workers cannot consult the file system's snapshot manager directly (it
    lives in the coordinator process), so every masking-sensitive request
    (query, relocate, maintain) carries a ``{line: sorted versions}`` table
    computed by the coordinator's authority at send time.  ``None`` -- the
    whole table or a single line's entry -- means "all versions valid",
    mirroring :class:`~repro.core.masking.AllVersionsAuthority`.
    """

    def __init__(self) -> None:
        self._table: Optional[Dict[int, Optional[Sequence[int]]]] = None

    def apply(self, state: Optional[Dict[int, Optional[Sequence[int]]]]) -> None:
        # Applied in place, like mutating an ExplicitVersionAuthority in the
        # single-process case: already-built pipelines keep the masking they
        # were constructed with (parked-cursor invalidation is driven by the
        # SNAPSHOT_DELETED event, not by table refreshes -- same as the
        # in-process listener callbacks).
        self._table = state

    def valid_versions(self, line: int) -> Optional[Sequence[int]]:
        if self._table is None:
            return None
        return self._table.get(line)


def _max_run_sequence(backend) -> int:
    """Highest run sequence currently on the backend (0 when empty)."""
    highest = 0
    for name in backend.list_files():
        parsed = parse_run_name(name)
        if parsed is not None:
            highest = max(highest, parsed[3])
    return highest


class _ShardWorker:
    """Backlog slice + request dispatch for one worker process."""

    def __init__(self, shard: int, num_shards: int, directory: Optional[str],
                 config: BacklogConfig, fault_plan: Optional[FaultPlan],
                 time_scale: float = 0.0) -> None:
        self.shard = shard
        self.num_shards = num_shards
        self.directory = directory
        self.config = config
        self._plan = fault_plan
        self._time_scale = time_scale
        self.authority = _SyncedAuthority()
        self.faulty: Optional[FaultyBackend] = None
        self.meta: Dict[str, int] = {"cp": 0, "sequence": 0, "committed": 0}
        self._meta_path: Optional[str] = None
        self._disk: Optional[DiskBackend] = None
        self.backlog = self._mount()

    # ------------------------------------------------------------- mounting

    def _mount(self) -> Backlog:
        if self.directory is None:
            backend: Any = MemoryBackend()
            if self._plan is not None:
                backend = self.faulty = FaultyBackend(backend, self._plan)
                self.faulty.disarm()
            return Backlog(backend=self._throttled(backend), config=self.config,
                           version_authority=self.authority)
        self._disk = DiskBackend(shard_directory(self.directory, self.shard))
        self._meta_path = shard_meta_path(self.directory, self.shard)
        if os.path.exists(self._meta_path):
            with open(self._meta_path, "r", encoding="utf-8") as handle:
                self.meta.update(json.load(handle))
        # The recovery rule: Level-0 runs past the last acknowledged
        # sequence are unacknowledged prepare leftovers -- drop them before
        # the catalogue rebuild ever sees them.  Compact-level outputs are
        # never pruned by sequence (see the module docstring).
        for name in list(self._disk.list_files()):
            parsed = parse_run_name(name)
            if (parsed is not None and parsed[2] == "L0"
                    and parsed[3] > self.meta["sequence"]):
                self._disk.delete(name)
        backend = self._disk
        if self._plan is not None:
            backend = self.faulty = FaultyBackend(backend, self._plan)
            self.faulty.disarm()
        backlog = recover_backlog(
            self._throttled(backend), config=self.config,
            version_authority=self.authority,
            current_cp=self.meta["cp"] + 1 if self.meta["cp"] else None)
        backlog.run_manager.reserve_through(self.meta["sequence"])
        return backlog

    def _throttled(self, backend):
        """Optionally wrap the mount in device-time modelling.

        ``time_scale > 0`` makes every page transfer cost (GIL-releasing)
        simulated device time inside this worker process -- the same
        :class:`ThrottledBackend` regime the flush/query benchmarks use, so
        shard-scaling measurements reflect device overlap on any host.  The
        wrapper sits outermost: fault injection and recovery still see the
        raw page stream.
        """
        if self._time_scale <= 0.0:
            return backend
        from repro.fsim.blockdev import ThrottledBackend
        return ThrottledBackend(backend, time_scale=self._time_scale)

    # ------------------------------------------------------------ durability

    def _persist_meta(self) -> None:
        if self._meta_path is None:
            return
        # Sequence is read off the real directory listing (not the faulty
        # wrapper): the meta records which runs are *acknowledged*, and the
        # listing is the ground truth for what the prepare just wrote.
        self.meta["sequence"] = _max_run_sequence(self._disk)
        tmp = self._meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._meta_path)

    # ------------------------------------------------------------- handlers

    def handle(self, opcode: Opcode, payload: Any) -> Any:
        if opcode is Opcode.SYNC:
            return self._handle_sync(payload)
        if opcode is Opcode.UPDATE:
            return self._handle_update(payload)
        if opcode is Opcode.CHECKPOINT_PREPARE:
            return self._handle_prepare(payload)
        if opcode is Opcode.CHECKPOINT_COMMIT:
            return self._handle_commit(payload)
        if opcode is Opcode.MAINTAIN:
            return self._handle_maintain(payload)
        if opcode in (Opcode.QUERY_OPEN, Opcode.QUERY_PAGE):
            return self._handle_query(payload)
        if opcode is Opcode.STATS:
            return self._handle_stats()
        if opcode is Opcode.RELOCATE:
            return self._handle_relocate(payload)
        if opcode is Opcode.CLONE:
            return self._handle_clone(payload)
        if opcode is Opcode.SNAPSHOT_DELETED:
            return self._handle_snapshot_deleted(payload)
        if opcode is Opcode.FAULT:
            return self._handle_fault(payload)
        if opcode is Opcode.SHUTDOWN:
            self.backlog.close()
            return {"shard": self.shard}
        raise ValueError(f"worker cannot handle opcode {opcode!r}")

    def _handle_sync(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        for line, parent, version in payload.get("clones", ()):
            try:
                self.backlog.clone_graph.add_clone(line, parent, version)
            except ValueError:
                pass  # already registered (SYNC is idempotent by design)
        for block, inode, offset, line in payload.get("suppressed", ()):
            self.backlog.deletion_vector.suppress(block, inode, offset, line)
        self.backlog.zombies = set(
            tuple(pair) for pair in payload.get("zombies", ()))
        self.authority.apply(payload.get("authority"))
        current_cp = payload.get("current_cp")
        if current_cp is not None and current_cp > self.backlog.current_cp:
            self.backlog.current_cp = current_cp
        return {"shard": self.shard, "cp": self.meta["cp"],
                "current_cp": self.backlog.current_cp}

    def _handle_update(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        for kind, block, inode, offset, line, cp in payload["ops"]:
            if kind == "add":
                self.backlog.add_reference(block, inode, offset, line, cp=cp)
            elif kind == "remove":
                self.backlog.remove_reference(block, inode, offset, line, cp=cp)
            else:
                raise ValueError(f"unknown update kind {kind!r}")
        return {"pending": self.backlog.pending_updates()}

    def _handle_prepare(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cp = payload["cp"]
        self.authority.apply(payload.get("authority"))
        # May raise OSError (ENOSPC, exhausted retries): the flush is atomic
        # -- nothing registered, write stores intact -- and the error reply
        # carries the errno back to the coordinator's two-phase logic.
        self.backlog.on_consistency_point(cp)
        self.meta["cp"] = cp
        self._persist_meta()
        last = self.backlog.stats.checkpoints[-1]
        return {"cp": cp, "stats": dataclasses.asdict(last)}

    def _handle_commit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.meta["committed"] = payload["cp"]
        self._persist_meta()
        return {"cp": payload["cp"]}

    def _handle_maintain(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.authority.apply(payload.get("authority"))
        result = self.backlog.maintain()
        self._persist_meta()
        return {
            "stats": dataclasses.asdict(result),
            "deletion_vector": len(list(self.backlog.deletion_vector.keys())),
        }

    def _handle_query(self, payload: Dict[str, Any]) -> QueryPage:
        self.authority.apply(payload.get("authority"))
        fields = dict(payload["spec"])
        spec = QuerySpec(**fields)
        query_stats = self.backlog.stats.query
        before = query_stats.snapshot_counters()
        cursor = self.backlog.select(spec)
        # Drain raw owner tuples: the packed v2 QUERY_PAGE frame ships them
        # as flat columnar arrays, so no BackReference is ever built (or
        # pickled) on the worker -- the coordinator's decode materialises.
        results = cursor.all_rows()
        after = query_stats.snapshot_counters()
        return QueryPage(
            results=results,
            resume_token=cursor.resume_token,
            exhausted=cursor.exhausted,
            stats={name: after[name] - before[name] for name in after},
        )

    def _handle_stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "pending_updates": self.backlog.pending_updates(),
            "prepared_cp": self.meta["cp"],
            "committed_cp": self.meta["committed"],
            "service": self.backlog.service_stats(),
        }

    def _handle_relocate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.authority.apply(payload.get("authority"))
        vector = self.backlog.deletion_vector
        before = set(vector.keys())
        suppressed = self.backlog.relocate_block(
            payload["block"], payload.get("new_block"))
        added = [key for key in vector.keys() if key not in before]
        return {"suppressed": suppressed, "keys": added}

    def _handle_clone(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.backlog.on_clone_created(
            payload["line"], payload["parent_line"],
            payload["parent_version"], payload["cp"])
        return {}

    def _handle_snapshot_deleted(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.backlog.on_snapshot_deleted(
            payload["line"], payload["version"],
            payload["is_zombie"], payload["cp"])
        return {}

    def _handle_fault(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        action = payload["action"]
        if action == "exit":
            # Simulated crash for the recovery tests: no reply, no cleanup,
            # no atexit -- the pipe breaks and the coordinator's crash
            # detection takes over.
            os._exit(17)
        if self.faulty is None:
            raise ValueError("shard has no fault plan installed")
        if action == "arm":
            self.faulty.arm()
        elif action == "disarm":
            self.faulty.disarm()
        elif action == "free_space":
            self.faulty.free_space(payload.get("pages"))
        else:
            raise ValueError(f"unknown fault action {action!r}")
        return {"armed": self.faulty.armed}


def worker_main(connection, shard: int, num_shards: int,
                directory: Optional[str], config: BacklogConfig,
                fault_plan: Optional[FaultPlan] = None,
                time_scale: float = 0.0) -> None:
    """Entry point of a spawned shard worker process.

    Mounts (or recovers) the shard's Backlog, announces itself with one
    unsolicited OK frame carrying its recovered state, then serves framed
    requests until SHUTDOWN, a broken pipe (coordinator death), or an
    injected crash.  Request handling is strictly serial -- parallelism
    inside a shard still comes from the Backlog's own worker pools, and
    parallelism across shards comes from there being N of these processes.
    """
    channel = Channel(connection)
    try:
        worker = _ShardWorker(shard, num_shards, directory, config, fault_plan,
                              time_scale)
    except Exception as exc:  # pragma: no cover - mount failures are fatal
        channel.send(Opcode.ERROR,
                     {"kind": type(exc).__name__, "message": str(exc),
                      "errno": getattr(exc, "errno", None)})
        return
    channel.send(Opcode.OK, {
        "shard": shard,
        "pid": os.getpid(),
        "cp": worker.meta["cp"],
        "committed": worker.meta["committed"],
        "recovered_runs": worker.backlog.run_manager.run_count(),
    })
    while True:
        try:
            opcode, payload = channel.recv()
        except (EOFError, OSError):
            break
        try:
            reply = worker.handle(opcode, payload)
        except Exception as exc:
            channel.send(Opcode.ERROR, {
                "kind": type(exc).__name__,
                "message": str(exc),
                "errno": getattr(exc, "errno", None),
            })
            continue
        channel.send(Opcode.OK, reply)
        if opcode is Opcode.SHUTDOWN:
            break
