"""The cluster coordinator: a Backlog-shaped facade over N worker processes.

:class:`ShardedBacklog` is the process-cluster counterpart of
:class:`~repro.core.backlog.Backlog`: it accepts the same update, clone,
snapshot, checkpoint, maintenance, relocation and query calls (and the same
:class:`~repro.fsim.filesystem.ReferenceListener` callbacks, so a
:class:`~repro.fsim.FileSystem` can drive a cluster exactly like a single
instance), but owns no records itself -- every partition's data lives in
the worker process the :class:`~repro.cluster.shard_map.ShardMap` assigns
it to, and the coordinator's job is routing, fan-out and merge.

Determinism is inherited, not re-proven: the coordinator decomposes every
operation into per-partition pieces *before* anything crosses a process
boundary, and the decomposition depends only on the partitioner -- never on
the shard count.  An update batch routes each op by its block's partition;
a query becomes the identical sequence of per-partition sub-queries whether
one worker answers them all or three workers answer a third each.  That is
the whole equivalence argument, and ``tests/test_parallel_equivalence.py``
enforces its observable consequences: answers, resume-token page
boundaries and folded ``QueryStats.pages_read`` are identical at shards
1 and 3, and identical to a single in-process Backlog.

Two-phase checkpoints
---------------------

``checkpoint()`` drains the per-shard update buffers, then runs **prepare**
on every shard (each flushes its write stores -- atomically, PR 6 contract
-- and persists its shard meta), and only when *every* shard acknowledged
does the coordinator durably publish the global CP (``cluster.meta.json``)
and broadcast **commit**.  A shard that fails prepare (ENOSPC, torn write,
crash) fails the whole checkpoint with every surviving shard's write
stores intact and the coordinator's pending update log untouched, so the
caller retries the checkpoint exactly like a failed single-process CP; a
shard that *died* is respawned, recovered from its own meta via
:func:`~repro.core.recovery.recover_backlog`, re-synced (clone graph,
suppressions, zombies) and replayed the pending updates it lost.  No
partial CP is ever visible: the published global CP only moves after all
shards are durable, and un-checkpointed updates are always queryable from
exactly one place (a worker's write stores, or the replay log of a worker
being revived).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.config import BacklogConfig
from repro.core.cursor import QuerySpec, encode_resume_token
from repro.core.masking import VersionAuthority
from repro.core.records import BackReference
from repro.core.stats import BacklogStats, CheckpointStats, MaintenanceStats
from repro.fsim.faults import FaultPlan
from repro.fsim.filesystem import ReferenceListener

from repro.cluster.protocol import Channel, ChannelClosedError, Opcode
from repro.cluster.shard_map import ShardMap
from repro.cluster.worker import worker_main

__all__ = [
    "ClusterError",
    "ClusterCheckpointError",
    "ClusterQueryResult",
    "ShardedBacklog",
]


class ClusterError(RuntimeError):
    """A cluster-level failure (dead unrecoverable worker, closed cluster)."""


class ClusterCheckpointError(ClusterError):
    """A two-phase checkpoint failed in prepare; no global CP was published.

    The cluster is still consistent: prepared shards flushed durably,
    failed shards kept their write stores (or were revived and replayed),
    and every buffered update remains queryable.  Retrying ``checkpoint()``
    after clearing the fault re-prepares the same CP.
    """


class _Worker:
    """Coordinator-side handle of one spawned shard process."""

    def __init__(self, index: int, process, channel: Channel,
                 hello: Dict[str, Any]) -> None:
        self.index = index
        self.process = process
        self.channel = channel
        self.pid: int = hello["pid"]
        self.prepared_cp: int = hello["cp"]


def _cluster_meta_path(directory: str) -> str:
    return os.path.join(directory, "cluster.meta.json")


class ClusterQueryResult:
    """The cluster's lazy scatter-gather cursor.

    Mirrors :class:`~repro.core.cursor.QueryResult`'s surface -- iteration,
    the terminal helpers, ``emitted`` / ``exhausted`` / ``resume_token`` --
    over pages fetched from the owning shards.  Sub-queries are issued
    per partition, in ascending partition order, each drained completely
    before the next partition is opened: the same partition-boundary merge
    the in-process lazy gather performs, so emission order is globally
    sorted and ``.first()`` on a whole-device range contacts only the shard
    owning the first partition.

    Tokens minted here are shard-extended (v2): the owner identity plus the
    emitting shard index.  Routing on resume is still by block -- the shard
    component is diagnostic -- so cluster tokens also resume correctly on a
    single-process Backlog and vice versa.
    """

    def __init__(self, cluster: "ShardedBacklog", spec: QuerySpec) -> None:
        self._cluster = cluster
        self.spec = spec
        self._stream: Optional[Iterator[Tuple[int, BackReference]]] = None
        self._emitted = 0
        self._last: Optional[BackReference] = None
        self._last_shard: Optional[int] = None
        self._exhausted = False
        self._page_full = False

    # ------------------------------------------------------------ iteration

    def __iter__(self) -> "ClusterQueryResult":
        return self

    def __next__(self) -> BackReference:
        if self._exhausted or self._page_full:
            raise StopIteration
        if self._stream is None:
            spec = self.spec
            if self._last is not None:
                # Reopen after an early release (first()/close()): resume
                # after the last-emitted owner, like the in-process cursor.
                spec = spec.after(encode_resume_token(self._last))
                if spec.limit is not None:
                    spec = spec.with_limit(spec.limit - self._emitted)
            self._stream = self._cluster._scatter(spec)
        try:
            shard, ref = next(self._stream)
        except StopIteration:
            limit = self.spec.limit
            if limit is None or self._emitted < limit:
                self._exhausted = True
            self._stream = None
            raise
        self._emitted += 1
        self._last = ref
        self._last_shard = shard
        if self.spec.limit is not None and self._emitted >= self.spec.limit:
            self._page_full = True
            self.close()
        return ref

    def close(self) -> None:
        """Abandon the cursor early, releasing the scatter generator."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # ------------------------------------------------------------ terminals

    def all(self) -> List[BackReference]:
        return list(self)

    def first(self) -> Optional[BackReference]:
        ref = next(self, None)
        self.close()
        return ref

    def one_or_none(self) -> Optional[BackReference]:
        first = next(self, None)
        if first is None:
            return None
        second = next(self, None)
        self.close()
        if second is not None:
            raise ValueError(
                f"expected at most one back reference, got several starting "
                f"with {first} and {second}")
        return first

    def count(self) -> int:
        return sum(1 for _ in self)

    def limit(self, limit: int) -> "ClusterQueryResult":
        if self._stream is not None or self._emitted:
            raise RuntimeError("limit() must be applied before iteration starts")
        return ClusterQueryResult(self._cluster, self.spec.with_limit(limit))

    # --------------------------------------------------------- cursor state

    @property
    def emitted(self) -> int:
        return self._emitted

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def resume_token(self) -> Optional[str]:
        if self._exhausted:
            return None
        if self._last is None:
            return self.spec.resume_token
        return encode_resume_token(self._last, shard=self._last_shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "exhausted" if self._exhausted else f"emitted={self._emitted}"
        return f"<ClusterQueryResult {self.spec!r} {state}>"


class ShardedBacklog(ReferenceListener):
    """Shard the device block range across N worker processes.

    Parameters
    ----------
    num_shards:
        Worker process count; defaults to
        :attr:`~repro.core.config.BacklogConfig.cluster_shards` (which
        honours ``REPRO_CLUSTER_SHARDS``).
    config:
        The :class:`~repro.core.config.BacklogConfig` every worker builds
        its Backlog slice from (the partition size also parameterises the
        shard map).
    directory:
        Root directory for durable shards: each worker stores its runs
        under ``<directory>/shard-NN`` plus a recovery meta file, and the
        coordinator publishes the global CP to ``cluster.meta.json``.
        ``None`` (default) gives memory-backed workers -- fast, but a dead
        worker is unrecoverable then.
    version_source:
        The coordinator-side :class:`~repro.core.masking.VersionAuthority`
        (the file system's snapshot manager, or an explicit table).  Its
        view is serialised into every masking-sensitive request, so workers
        mask with the same versions a single-process query would have.
    fault_plans:
        Test hook: ``{shard_index: FaultPlan}`` wraps that worker's backend
        in a :class:`~repro.fsim.faults.FaultyBackend` (spawned disarmed;
        drive it with :meth:`debug_fault`).
    update_batch_size:
        Buffered ops per shard before the coordinator pushes an UPDATE
        batch ahead of the next checkpoint.
    query_page_records:
        Internal page size of the scatter-gather cursor: the per-partition
        sub-query limit used to bound a single reply frame.
    time_scale:
        When positive, every worker wraps its backend in a
        :class:`~repro.fsim.blockdev.ThrottledBackend` with this scale:
        page transfers cost (GIL-releasing) simulated device time inside
        the worker processes.  Benchmark hook -- it makes cross-shard
        overlap measurable regardless of the host's core count.
    """

    def __init__(
        self,
        num_shards: Optional[int] = None,
        config: Optional[BacklogConfig] = None,
        directory: Optional[str] = None,
        version_source: Optional[VersionAuthority] = None,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
        update_batch_size: int = 256,
        query_page_records: int = 512,
        time_scale: float = 0.0,
    ) -> None:
        self.config = config or BacklogConfig()
        self.num_shards = num_shards if num_shards is not None else self.config.cluster_shards
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.shard_map = ShardMap(self.num_shards, self.config.partition_size_blocks)
        self.directory = directory
        self.version_source = version_source
        self.stats = BacklogStats()
        self.current_cp = 1
        self.committed_cp = 0
        self._update_batch_size = update_batch_size
        self._query_page_records = query_page_records
        self._fault_plans = dict(fault_plans or {})
        self._time_scale = time_scale
        self._lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self._closed = False
        self._ops_this_cp = 0
        #: Per-shard update log since that shard's last *acknowledged*
        #: prepare: the cluster's replay journal.  ``_sent[i]`` marks the
        #: prefix already pushed to the live worker incarnation.
        self._pending: List[List[Tuple]] = [[] for _ in range(self.num_shards)]
        self._sent: List[int] = [0] * self.num_shards
        #: Retained cluster-wide state re-installed into revived workers.
        self._clones: List[Tuple[int, int, int]] = []
        self._zombies: Set[Tuple[int, int]] = set()
        self._suppressed: List[Set[Tuple[int, int, int, int]]] = [
            set() for _ in range(self.num_shards)]
        self._known_lines: Set[int] = {0}
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            meta_path = _cluster_meta_path(directory)
            if os.path.exists(meta_path):
                with open(meta_path, "r", encoding="utf-8") as handle:
                    self.committed_cp = json.load(handle)["cp"]
                self.current_cp = self.committed_cp + 1
        self._context = multiprocessing.get_context("spawn")
        self._workers: List[_Worker] = [
            self._spawn(index) for index in range(self.num_shards)]
        for worker in self._workers:
            self._sync(worker)

    # ----------------------------------------------------------- lifecycle

    def _spawn(self, index: int) -> _Worker:
        parent_end, child_end = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=worker_main,
            args=(child_end, index, self.num_shards, self.directory,
                  self.config, self._fault_plans.get(index),
                  self._time_scale),
            name=f"backlog-shard-{index:02d}",
            daemon=True,
        )
        process.start()
        child_end.close()
        channel = Channel(parent_end)
        opcode, hello = channel.recv()
        if opcode is not Opcode.OK:
            raise ClusterError(
                f"shard {index} failed to start: {hello.get('kind')}: "
                f"{hello.get('message')}")
        return _Worker(index, process, channel, hello)

    def _sync(self, worker: _Worker) -> None:
        """(Re)install coordinator-retained state into a worker."""
        worker.channel.request(Opcode.SYNC, {
            "clones": list(self._clones),
            "suppressed": sorted(self._suppressed[worker.index]),
            "zombies": sorted(self._zombies),
            "authority": self._authority_state(),
            "current_cp": self.current_cp,
        })

    def _revive(self, index: int) -> _Worker:
        """Respawn a dead worker and recover it to the cluster's state.

        Directory-backed shards recover their durable runs through the
        worker's own meta-driven ``recover_backlog`` mount, then receive a
        SYNC plus a replay of every pending update the dead incarnation's
        write stores lost.  Memory-backed shards have nothing to recover
        from -- their death is unrecoverable data loss, reported loudly.
        """
        dead = self._workers[index]
        try:
            dead.channel.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if dead.process.is_alive():
            dead.process.terminate()
        dead.process.join(timeout=5)
        if self.directory is None:
            self._closed = True
            raise ClusterError(
                f"shard {index} worker died; memory-backed shards cannot "
                f"recover (give the cluster a directory)")
        worker = self._spawn(index)
        self._workers[index] = worker
        self._sync(worker)
        if worker.prepared_cp >= self.current_cp:
            # The dead incarnation durably flushed the in-flight CP before
            # the reply was lost: its pending log is already on disk.
            self._pending[index].clear()
        self._sent[index] = 0
        self._push_updates(index)
        return worker

    def close(self) -> None:
        """Shut down every worker (drain its loop, join the process)."""
        with self._lock:
            if self._closed and not any(w.process.is_alive() for w in self._workers):
                return
            self._closed = True
            for worker in self._workers:
                try:
                    worker.channel.request(Opcode.SHUTDOWN, {})
                except (ChannelClosedError, ClusterError):
                    pass
                try:
                    worker.channel.close()
                except OSError:  # pragma: no cover
                    pass
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=5)

    def __enter__(self) -> "ShardedBacklog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def worker_pids(self) -> List[int]:
        """Live worker process ids, shard order (smoke tests kill by pid)."""
        return [worker.pid for worker in self._workers]

    # ------------------------------------------------------------ plumbing

    def _ensure_open(self) -> None:
        if self._closed:
            raise ClusterError("cluster is closed")

    def _authority_state(self) -> Optional[Dict[int, Optional[List[int]]]]:
        if self.version_source is None:
            return None
        state: Dict[int, Optional[List[int]]] = {}
        for line in self._known_lines:
            versions = self.version_source.valid_versions(line)
            state[line] = None if versions is None else list(versions)
        return state

    def _call(self, index: int, opcode: Opcode, payload: Any,
              retry: bool = True) -> Any:
        """One RPC with transparent dead-worker recovery.

        A broken pipe (the worker crashed or was killed) triggers a revive
        -- respawn, recover, re-sync, replay -- and, for idempotent
        requests, a single retry against the new incarnation.  Worker-side
        *errors* (an ENOSPC flush, a bad spec) are not transport failures
        and propagate to the caller unchanged.
        """
        worker = self._workers[index]
        try:
            return worker.channel.request(opcode, payload)
        except ChannelClosedError:
            with self._lock:
                if self._workers[index] is worker:
                    self._revive(index)
            if retry:
                return self._call(index, opcode, payload, retry=False)
            raise

    def _push_updates(self, index: int) -> None:
        """Send the unsent suffix of a shard's pending update log."""
        pending = self._pending[index]
        if self._sent[index] >= len(pending):
            return
        batch = pending[self._sent[index]:]
        self._call(index, Opcode.UPDATE, {"ops": batch}, retry=False)
        self._sent[index] = len(pending)

    def _drain(self, index: int) -> None:
        with self._lock:
            try:
                self._push_updates(index)
            except ChannelClosedError:
                self._revive(index)
                self._push_updates(index)

    # ------------------------------------------------- ReferenceListener API

    def on_reference_added(self, block: int, inode: int, offset: int,
                           line: int, cp: int) -> None:
        self._buffer_update("add", block, inode, offset, line, cp)

    def on_reference_removed(self, block: int, inode: int, offset: int,
                             line: int, cp: int) -> None:
        self._buffer_update("remove", block, inode, offset, line, cp)

    def _buffer_update(self, kind: str, block: int, inode: int, offset: int,
                       line: int, cp: int) -> None:
        with self._lock:
            self._ensure_open()
            index = self.shard_map.shard_of_block(block)
            self._pending[index].append((kind, block, inode, offset, line, cp))
            self._known_lines.add(line)
            self._ops_this_cp += 1
            if kind == "add":
                self.stats.references_added += 1
            else:
                self.stats.references_removed += 1
            if len(self._pending[index]) - self._sent[index] >= self._update_batch_size:
                self._drain(index)

    def on_clone_created(self, new_line: int, parent_line: int,
                         parent_version: int, cp: int) -> None:
        with self._lock:
            self._ensure_open()
            self._clones.append((new_line, parent_line, parent_version))
            self._known_lines.add(new_line)
            for index in range(self.num_shards):
                try:
                    self._call(index, Opcode.CLONE, {
                        "line": new_line, "parent_line": parent_line,
                        "parent_version": parent_version, "cp": cp})
                except ChannelClosedError:  # pragma: no cover - revive resyncs
                    pass

    def on_snapshot_deleted(self, line: int, version: int, is_zombie: bool,
                            cp: int) -> None:
        with self._lock:
            self._ensure_open()
            if is_zombie:
                self._zombies.add((line, version))
            else:
                self._zombies.discard((line, version))
            for index in range(self.num_shards):
                try:
                    self._call(index, Opcode.SNAPSHOT_DELETED, {
                        "line": line, "version": version,
                        "is_zombie": is_zombie, "cp": cp})
                except ChannelClosedError:  # pragma: no cover - revive resyncs
                    pass

    def on_consistency_point(self, cp: int) -> None:
        self._checkpoint_at(cp)

    # --------------------------------------------------------- standalone API

    def add_reference(self, block: int, inode: int, offset: int, line: int = 0,
                      cp: Optional[int] = None) -> None:
        self.on_reference_added(block, inode, offset, line,
                                cp if cp is not None else self.current_cp)

    def remove_reference(self, block: int, inode: int, offset: int,
                         line: int = 0, cp: Optional[int] = None) -> None:
        self.on_reference_removed(block, inode, offset, line,
                                  cp if cp is not None else self.current_cp)

    def set_version_authority(self, authority: VersionAuthority) -> None:
        """Install the coordinator-side version authority (Backlog parity).

        Workers never see this object directly -- the coordinator serialises
        its view into every masking-sensitive request -- so swapping it here
        takes effect on the next query/maintain/checkpoint, exactly like
        mutating a single-process Backlog's authority.
        """
        self.version_source = authority

    def register_clone(self, new_line: int, parent_line: int,
                       parent_version: int) -> None:
        self.on_clone_created(new_line, parent_line, parent_version,
                              self.current_cp)

    def checkpoint(self) -> int:
        """Two-phase consistency point across every shard; returns the CP."""
        cp = self.current_cp
        self._checkpoint_at(cp)
        return cp

    def _checkpoint_at(self, cp: int) -> None:
        with self._lock:
            self._ensure_open()
            state = self._authority_state()
            failures: List[Tuple[int, BaseException]] = []
            prepared: List[Dict[str, Any]] = []
            for index in range(self.num_shards):
                try:
                    self._drain(index)
                    reply = self._call(
                        index, Opcode.CHECKPOINT_PREPARE,
                        {"cp": cp, "authority": state}, retry=False)
                except ChannelClosedError as exc:
                    # The worker died mid-prepare.  _call already revived
                    # and replayed it (directory mode); the checkpoint
                    # still fails -- the caller retries it as a whole.
                    failures.append((index, exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - relayed worker error
                    failures.append((index, exc))
                    continue
                # This shard's updates are durable: prune its replay log.
                self._pending[index].clear()
                self._sent[index] = 0
                prepared.append(reply["stats"])
            if failures:
                shards = ", ".join(str(index) for index, _ in failures)
                raise ClusterCheckpointError(
                    f"checkpoint {cp} failed in prepare on shard(s) {shards}: "
                    f"{failures[0][1]}") from failures[0][1]
            self._publish(cp)
            for index in range(self.num_shards):
                try:
                    self._call(index, Opcode.CHECKPOINT_COMMIT, {"cp": cp})
                except (ChannelClosedError, ClusterError):  # pragma: no cover
                    # Commit is advisory bookkeeping; a revived worker's
                    # durable prepare already covers the published CP.
                    pass
            self.current_cp = cp + 1
            self._fold_checkpoint(cp, prepared)

    def _publish(self, cp: int) -> None:
        """Durably publish the global CP (phase two's commit record)."""
        self.committed_cp = cp
        if self.directory is None:
            return
        path = _cluster_meta_path(self.directory)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"cp": cp, "shards": self.num_shards}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _fold_checkpoint(self, cp: int, prepared: List[Dict[str, Any]]) -> None:
        pruned = sum(stats["pruned_pairs"] for stats in prepared)
        self.stats.pruned_pairs += pruned
        self.stats.consistency_points += 1
        self.stats.flush_seconds += max(
            (stats["flush_seconds"] for stats in prepared), default=0.0)
        self.stats.checkpoints.append(CheckpointStats(
            cp=cp,
            block_ops=self._ops_this_cp,
            persistent_ops=sum(s["persistent_ops"] for s in prepared),
            pages_written=sum(s["pages_written"] for s in prepared),
            flush_seconds=max((s["flush_seconds"] for s in prepared), default=0.0),
            ws_records_flushed=sum(s["ws_records_flushed"] for s in prepared),
            pruned_pairs=pruned,
            cumulative_update_seconds=self.stats.update_seconds,
        ))
        self._ops_this_cp = 0

    # ----------------------------------------------------------- maintenance

    def maintain(self) -> MaintenanceStats:
        """Fan database maintenance out to every shard; fold the tallies."""
        with self._lock:
            self._ensure_open()
            state = self._authority_state()
            replies = []
            for index in range(self.num_shards):
                self._drain(index)
                reply = self._call(index, Opcode.MAINTAIN, {"authority": state})
                replies.append(reply)
                if reply["deletion_vector"] == 0:
                    # The shard's compactor folded its suppressions into the
                    # rewritten runs and cleared its vector; stop replaying
                    # them into future revivals of this shard.
                    self._suppressed[index].clear()
            folded = MaintenanceStats(
                sequence=max(r["stats"]["sequence"] for r in replies),
                partitions_processed=sum(
                    r["stats"]["partitions_processed"] for r in replies),
                records_in=sum(r["stats"]["records_in"] for r in replies),
                records_out=sum(r["stats"]["records_out"] for r in replies),
                records_purged=sum(r["stats"]["records_purged"] for r in replies),
                bytes_before=sum(r["stats"]["bytes_before"] for r in replies),
                bytes_after=sum(r["stats"]["bytes_after"] for r in replies),
                seconds=max(r["stats"]["seconds"] for r in replies),
            )
            self.stats.maintenance_runs.append(folded)
            return folded

    def relocate_block(self, old_block: int, new_block: Optional[int] = None) -> int:
        """Suppress stale references of a moved block on its owning shard."""
        with self._lock:
            self._ensure_open()
            index = self.shard_map.shard_of_block(old_block)
            self._drain(index)
            reply = self._call(index, Opcode.RELOCATE, {
                "block": old_block, "new_block": new_block,
                "authority": self._authority_state()})
            self._suppressed[index].update(
                (key.block, key.inode, key.offset, key.line)
                for key in reply["keys"])
            return reply["suppressed"]

    # -------------------------------------------------------------- queries

    def select(self, spec: Optional[QuerySpec] = None, /, **kwargs) -> ClusterQueryResult:
        """Open a lazy scatter-gather cursor (the cluster's ``select``)."""
        self._ensure_open()
        if spec is None:
            spec = QuerySpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a QuerySpec or keyword fields, not both")
        return ClusterQueryResult(self, spec)

    def query(self, block: int) -> List[BackReference]:
        return self.select(QuerySpec(block)).all()

    def query_range(self, first_block: int, num_blocks: int) -> List[BackReference]:
        return self.select(QuerySpec(first_block, num_blocks)).all()

    def owners_at_version(self, block: int, version: int) -> List[BackReference]:
        return self.select(QuerySpec(block).at_version(version)).all()

    def live_owners(self, block: int) -> List[BackReference]:
        return self.select(QuerySpec(block).live()).all()

    @property
    def query_stats(self):
        return self.stats.query

    def _scatter(self, spec: QuerySpec) -> Iterator[Tuple[int, BackReference]]:
        """Per-partition sub-queries against the owning shards, in order.

        The decomposition (and hence each worker's page reads) depends only
        on the partitioner, never the shard count; per-shard page tallies
        are folded into the coordinator's :class:`QueryStats` as each reply
        arrives, which is what keeps ``pages_read`` exact across the
        process boundary.
        """
        with self._stats_lock:
            self.stats.query.queries += 1
            self.stats.query.cursors_opened += 1
        resume_key = spec.resume_key
        remaining = spec.limit
        for partition, shard, first, count in self.shard_map.subranges(
                spec.first_block, spec.num_blocks):
            token: Optional[str] = None
            if resume_key is not None:
                if resume_key.block >= first + count:
                    continue  # partition lies wholly before the token
                if resume_key.block >= first:
                    token = encode_resume_token(resume_key)
                resume_key = None  # later partitions scan fresh
            opcode = Opcode.QUERY_OPEN
            while True:
                page_limit = (self._query_page_records if remaining is None
                              else min(remaining, self._query_page_records))
                with self._lock:
                    self._drain(shard)
                reply = self._call(shard, opcode, {
                    "authority": self._authority_state(),
                    "spec": {
                        "first_block": first,
                        "num_blocks": count,
                        "version_window": spec.version_window,
                        "live_only": spec.live_only,
                        "lines": spec.lines,
                        "inodes": spec.inodes,
                        "limit": page_limit,
                        "resume_token": token,
                    },
                })
                delta = dict(reply["stats"])
                delta.pop("queries", None)
                delta.pop("cursors_opened", None)
                with self._stats_lock:
                    self.stats.query.add_counters(delta)
                for ref in reply["results"]:
                    yield shard, ref
                    if remaining is not None:
                        remaining -= 1
                if remaining is not None and remaining <= 0:
                    return
                if reply["exhausted"]:
                    break
                token = reply["resume_token"]
                opcode = Opcode.QUERY_PAGE

    # ----------------------------------------------------------- accounting

    def _broadcast_stats(self) -> List[Dict[str, Any]]:
        return [self._call(index, Opcode.STATS, {})
                for index in range(self.num_shards)]

    def pinned_snapshots(self) -> int:
        """Snapshots pinned across all shards (0 between worker requests)."""
        return sum(shard["service"]["pinned_snapshots"]
                   for shard in self._broadcast_stats())

    def database_size_bytes(self) -> int:
        return sum(shard["service"]["database_size_bytes"]
                   for shard in self._broadcast_stats())

    def quarantined_bytes(self) -> int:
        return sum(shard["service"]["quarantined_bytes"]
                   for shard in self._broadcast_stats())

    def deferred_bytes(self) -> int:
        return sum(shard["service"]["deferred_bytes"]
                   for shard in self._broadcast_stats())

    def pending_updates(self) -> int:
        """Updates buffered anywhere: coordinator log + worker write stores."""
        with self._lock:
            unsent = sum(len(self._pending[i]) - self._sent[i]
                         for i in range(self.num_shards))
        return unsent + sum(shard["pending_updates"]
                            for shard in self._broadcast_stats())

    def service_stats(self) -> Dict[str, Any]:
        """Cluster counters in the same shape ``Backlog.service_stats`` has.

        Coordinator-level query counters (folded exactly from per-shard
        tallies) plus a ``"shards"`` breakdown, so ``GET /stats`` over a
        cluster shows both the merged view and each worker's own pools.
        """
        shards = self._broadcast_stats()
        query = self.stats.query
        return {
            "queries": query.queries,
            "cursors_opened": query.cursors_opened,
            "resume_cache_hits": query.resume_cache_hits,
            "pages_read": query.pages_read,
            "query": query.to_dict(),
            "flush_pool": self.stats.flush_pool.to_dict(),
            "maintenance_pool": self.stats.maintenance_pool.to_dict(),
            "query_pool": self.stats.query_pool.to_dict(),
            "pinned_snapshots": sum(
                s["service"]["pinned_snapshots"] for s in shards),
            "database_size_bytes": sum(
                s["service"]["database_size_bytes"] for s in shards),
            "quarantined_bytes": sum(
                s["service"]["quarantined_bytes"] for s in shards),
            "deferred_bytes": sum(
                s["service"]["deferred_bytes"] for s in shards),
            "cluster": {
                "num_shards": self.num_shards,
                "committed_cp": self.committed_cp,
                "current_cp": self.current_cp,
                "worker_pids": self.worker_pids(),
            },
            "shards": shards,
        }

    # ------------------------------------------------------------ test hooks

    def debug_fault(self, shard: int, action: str,
                    pages: Optional[int] = None) -> Dict[str, Any]:
        """Drive a shard's FaultyBackend (arm/disarm/free_space)."""
        return self._call(shard, Opcode.FAULT,
                          {"action": action, "pages": pages})

    def debug_kill(self, shard: int) -> int:
        """Hard-crash a worker (``os._exit`` -- no reply, no cleanup).

        Returns the killed pid.  The next request routed to the shard
        detects the broken pipe and runs the revive path.
        """
        pid = self._workers[shard].pid
        self._workers[shard].channel.send(Opcode.FAULT, {"action": "exit"})
        self._workers[shard].process.join(timeout=5)
        return pid
