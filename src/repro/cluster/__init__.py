"""Process-cluster deployment of the back-reference database.

A :class:`ShardedBacklog` coordinator stripes the device's partitions
across N spawned worker processes (:mod:`repro.cluster.worker`), each
owning an ordinary single-process :class:`~repro.core.backlog.Backlog`
over its own storage, and speaks a framed, versioned request/response
protocol (:mod:`repro.cluster.protocol`) over one pipe per worker.
Placement is the pure function in :mod:`repro.cluster.shard_map`; queries
scatter per-partition sub-queries to the owning shards and gather them
with the same partition-boundary merge the in-process lazy gather uses,
so answers, emission order, resume-token pagination and exact page
accounting are identical to a single-process Backlog.
"""

from repro.cluster.coordinator import (
    ClusterCheckpointError,
    ClusterError,
    ClusterQueryResult,
    ShardedBacklog,
)
from repro.cluster.protocol import (
    Channel,
    ChannelClosedError,
    Opcode,
    ProtocolError,
    WorkerError,
)
from repro.cluster.shard_map import ShardMap
from repro.cluster.worker import shard_directory, shard_meta_path, worker_main

__all__ = [
    "Channel",
    "ChannelClosedError",
    "ClusterCheckpointError",
    "ClusterError",
    "ClusterQueryResult",
    "Opcode",
    "ProtocolError",
    "ShardMap",
    "ShardedBacklog",
    "WorkerError",
    "shard_directory",
    "shard_meta_path",
    "worker_main",
]
