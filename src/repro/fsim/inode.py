"""Inodes: the logical objects that own physical blocks.

An inode is modelled as an ordered mapping from logical file offset (in
blocks) to physical block number.  Indirect blocks are not materialised as
separate objects -- the simulator only needs to know *how many* metadata
blocks a file of a given size dirties at a consistency point, which
:meth:`Inode.meta_blocks` computes from the pointer fan-out -- but the
logical->physical map itself is exact, because that is what back references
are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["POINTERS_PER_INDIRECT_BLOCK", "Inode"]

#: Number of 64-bit block pointers that fit in one 4 KB indirect block.
POINTERS_PER_INDIRECT_BLOCK = 512


@dataclass
class Inode:
    """A file (or other filesystem object) owning a set of physical blocks.

    Attributes
    ----------
    number:
        The inode number, unique within a volume (and stable across clones,
        which is what makes structural inheritance work).
    blocks:
        Mapping of logical block offset -> physical block number.  Sparse
        files simply omit offsets.
    """

    number: int
    blocks: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------ inspection

    @property
    def num_blocks(self) -> int:
        """Number of allocated logical blocks (holes excluded)."""
        return len(self.blocks)

    @property
    def size_blocks(self) -> int:
        """Logical size in blocks: one past the highest allocated offset."""
        if not self.blocks:
            return 0
        return max(self.blocks) + 1

    def physical_block(self, offset: int) -> Optional[int]:
        """Physical block backing logical ``offset``, or ``None`` for a hole."""
        return self.blocks.get(offset)

    def offsets_of(self, physical_block: int) -> List[int]:
        """All logical offsets that point at ``physical_block``.

        A deduplicated file may reference the same physical block from more
        than one offset.
        """
        return sorted(off for off, blk in self.blocks.items() if blk == physical_block)

    def iter_blocks(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(offset, physical_block)`` in offset order."""
        return iter(sorted(self.blocks.items()))

    def meta_blocks(self) -> int:
        """Metadata blocks dirtied when this inode changes within a CP.

        One block for the inode itself plus enough single-level indirect
        blocks to hold all of its block pointers.  This is only used for
        accounting the base (non-Backlog) cost of a consistency point.
        """
        size = self.size_blocks
        indirect = (size + POINTERS_PER_INDIRECT_BLOCK - 1) // POINTERS_PER_INDIRECT_BLOCK
        return 1 + indirect

    # -------------------------------------------------------------- mutation

    def set_block(self, offset: int, physical_block: int) -> Optional[int]:
        """Point logical ``offset`` at ``physical_block``.

        Returns the physical block previously mapped at that offset (the
        caller is responsible for dropping its reference), or ``None`` if the
        offset was a hole.
        """
        if offset < 0:
            raise ValueError(f"negative file offset {offset}")
        previous = self.blocks.get(offset)
        self.blocks[offset] = physical_block
        return previous

    def clear_block(self, offset: int) -> Optional[int]:
        """Remove the mapping at ``offset`` and return the old physical block."""
        return self.blocks.pop(offset, None)

    def truncate(self, new_size_blocks: int) -> List[Tuple[int, int]]:
        """Truncate the file to ``new_size_blocks`` logical blocks.

        Returns the ``(offset, physical_block)`` pairs that were removed, in
        offset order, so the caller can drop their references.
        """
        if new_size_blocks < 0:
            raise ValueError("cannot truncate to a negative size")
        removed = [
            (off, blk) for off, blk in sorted(self.blocks.items()) if off >= new_size_blocks
        ]
        for off, _ in removed:
            del self.blocks[off]
        return removed

    def copy(self) -> "Inode":
        """Return an independent copy (used when freezing snapshots)."""
        return Inode(number=self.number, blocks=dict(self.blocks))
