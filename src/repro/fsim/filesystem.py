"""The write-anywhere file system simulator.

:class:`FileSystem` ties the substrate together: volumes (one per snapshot
line), inodes, copy-on-write block allocation, deduplication, consistency
points, snapshots, writable clones, and the listener interface through which
a back-reference implementation (Backlog or one of the baselines) observes
every reference change.

The simulator follows the paper's ``fsim`` in storing *only metadata*: data
block contents are never materialised, and the only thing written to the
simulated storage device is whatever the attached back-reference
implementation chooses to persist.

Consistency-point semantics
---------------------------
The global CP number starts at 1.  Every block operation performed after CP
``n-1`` completes and before CP ``n`` completes is tagged with CP number
``n``; completing a consistency point captures snapshot version ``n`` in each
volume's line and advances the global CP number.  This matches the paper's
convention that a snapshot's version is the global CP number at which it was
created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.fsim.allocator import BlockAllocator
from repro.fsim.blockdev import PAGE_SIZE
from repro.fsim.dedup import DedupConfig, DedupEngine
from repro.fsim.inode import Inode
from repro.fsim.journal import Journal
from repro.fsim.snapshots import SnapshotId, SnapshotManager, SnapshotPolicy

__all__ = ["FileSystemConfig", "ReferenceListener", "Volume", "FileSystem"]


class ReferenceListener:
    """Interface through which back-reference implementations observe the FS.

    Backlog (and each baseline) subclasses this and receives a callback for
    every reference addition and removal, for every consistency point, and
    for the snapshot events that affect back-reference bookkeeping.  All
    callbacks are synchronous and must not mutate the file system.
    """

    def on_reference_added(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """A live pointer (inode, offset) -> block was created in ``line`` at CP ``cp``."""

    def on_reference_removed(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """A live pointer (inode, offset) -> block was removed in ``line`` at CP ``cp``."""

    def on_consistency_point(self, cp: int) -> None:
        """Consistency point ``cp`` is completing; durable state must be flushed."""

    def on_clone_created(self, new_line: int, parent_line: int, parent_version: int, cp: int) -> None:
        """A writable clone ``new_line`` was created from ``(parent_line, parent_version)``."""

    def on_snapshot_deleted(self, line: int, version: int, is_zombie: bool, cp: int) -> None:
        """Snapshot ``(line, version)`` was deleted; ``is_zombie`` if clones remain."""


@dataclass(frozen=True)
class FileSystemConfig:
    """Tunable parameters of the simulated file system.

    The defaults mirror the paper's WAFL-like configuration: 4 KB blocks and
    a consistency point after every 32 000 block operations.  (The wall-clock
    10-second CP trigger is expressed by workloads explicitly calling
    :meth:`FileSystem.take_consistency_point`, since the simulator has no
    real-time clock.)
    """

    block_size: int = PAGE_SIZE
    ops_per_cp: int = 32_000
    auto_cp: bool = True
    dedup: Optional[DedupConfig] = DedupConfig()
    snapshot_policy: SnapshotPolicy = field(default_factory=SnapshotPolicy)
    journal_enabled: bool = True
    dedup_seed: int = 17


@dataclass
class Volume:
    """A writable file-system image: the live head of one snapshot line."""

    line: int
    inodes: Dict[int, Inode] = field(default_factory=dict)
    next_inode: int = 2  # inode 1 is reserved for the root directory, as usual
    #: Inode numbers whose Inode object is shared with a retained snapshot and
    #: must be copied before modification (inode-granularity copy-on-write).
    frozen: Set[int] = field(default_factory=set)

    def writable_inode(self, inode_number: int) -> Inode:
        """Return the inode, copying it first if a snapshot shares it."""
        inode = self.inodes[inode_number]
        if inode_number in self.frozen:
            inode = inode.copy()
            self.inodes[inode_number] = inode
            self.frozen.discard(inode_number)
        return inode

    def freeze_all(self) -> None:
        """Mark every inode as shared with the snapshot just captured."""
        self.frozen = set(self.inodes)

    @property
    def num_files(self) -> int:
        return len(self.inodes)

    def total_block_references(self) -> int:
        return sum(inode.num_blocks for inode in self.inodes.values())


@dataclass
class FileSystemCounters:
    """Aggregate activity counters used by the benchmark harness."""

    block_ops: int = 0               # reference additions + removals
    data_block_writes: int = 0       # COW data-block writes (new allocations + dedup refs)
    meta_block_writes: int = 0       # inode/indirect/root writes charged at CPs
    read_ops: int = 0
    files_created: int = 0
    files_deleted: int = 0
    consistency_points: int = 0
    clones_created: int = 0
    snapshots_deleted: int = 0


class FileSystem:
    """A write-anywhere file system with snapshots, clones and deduplication."""

    def __init__(
        self,
        config: Optional[FileSystemConfig] = None,
        listeners: Optional[Iterable[ReferenceListener]] = None,
    ) -> None:
        self.config = config or FileSystemConfig()
        self.listeners: List[ReferenceListener] = list(listeners or [])
        self.allocator = BlockAllocator()
        self.snapshots = SnapshotManager(self.config.snapshot_policy)
        self.dedup = (
            DedupEngine(self.config.dedup, seed=self.config.dedup_seed)
            if self.config.dedup is not None
            else None
        )
        self.journal = Journal() if self.config.journal_enabled else None
        self.counters = FileSystemCounters()
        self.global_cp = 1
        self._ops_since_cp = 0
        self._dirty_inodes: Set[Tuple[int, int]] = set()
        self.volumes: Dict[int, Volume] = {0: Volume(line=0)}
        self.snapshots.register_line(0, None)

    # ------------------------------------------------------------- listeners

    def add_listener(self, listener: ReferenceListener) -> None:
        """Attach a back-reference implementation (or any observer)."""
        self.listeners.append(listener)

    def remove_listener(self, listener: ReferenceListener) -> None:
        self.listeners.remove(listener)

    # ------------------------------------------------------------ file API

    def volume(self, line: int = 0) -> Volume:
        """The writable volume at the head of ``line``."""
        try:
            return self.volumes[line]
        except KeyError:
            raise KeyError(f"no writable volume for line {line}") from None

    def create_file(self, num_blocks: int = 0, line: int = 0) -> int:
        """Create a new file with ``num_blocks`` freshly written blocks."""
        volume = self.volume(line)
        inode_number = volume.next_inode
        volume.next_inode += 1
        volume.inodes[inode_number] = Inode(number=inode_number)
        self.counters.files_created += 1
        if num_blocks:
            self.write(inode_number, 0, num_blocks, line=line)
        else:
            self._mark_dirty(line, inode_number)
        return inode_number

    def write(self, inode: int, offset: int, num_blocks: int = 1, line: int = 0) -> None:
        """Write (copy-on-write) ``num_blocks`` blocks starting at ``offset``."""
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        volume = self.volume(line)
        if inode not in volume.inodes:
            raise KeyError(f"inode {inode} does not exist in line {line}")
        node = volume.writable_inode(inode)
        for logical in range(offset, offset + num_blocks):
            self._write_block(volume, node, logical)
        self._mark_dirty(line, inode)
        self._maybe_auto_cp()

    def append(self, inode: int, num_blocks: int = 1, line: int = 0) -> None:
        """Append ``num_blocks`` blocks at the end of the file."""
        volume = self.volume(line)
        node = volume.inodes[inode]
        self.write(inode, node.size_blocks, num_blocks, line=line)

    def read(self, inode: int, offset: int, num_blocks: int = 1, line: int = 0) -> List[Optional[int]]:
        """Read block pointers (metadata-only read; counted but otherwise free)."""
        volume = self.volume(line)
        node = volume.inodes[inode]
        self.counters.read_ops += num_blocks
        return [node.physical_block(off) for off in range(offset, offset + num_blocks)]

    def truncate(self, inode: int, new_size_blocks: int, line: int = 0) -> int:
        """Truncate a file, dropping references beyond ``new_size_blocks``.

        Returns the number of block references removed.
        """
        volume = self.volume(line)
        node = volume.writable_inode(inode)
        removed = node.truncate(new_size_blocks)
        for offset, block in removed:
            self._remove_reference(volume, inode, offset, block)
        if removed:
            self._mark_dirty(line, inode)
            self._maybe_auto_cp()
        return len(removed)

    def delete_file(self, inode: int, line: int = 0) -> int:
        """Delete a file, removing every block reference it held.

        Returns the number of block references removed.
        """
        volume = self.volume(line)
        node = volume.writable_inode(inode)
        removed = node.truncate(0)
        for offset, block in removed:
            self._remove_reference(volume, inode, offset, block)
        del volume.inodes[inode]
        volume.frozen.discard(inode)
        self._dirty_inodes.discard((line, inode))
        self.counters.files_deleted += 1
        self._maybe_auto_cp()
        return len(removed)

    def file_size(self, inode: int, line: int = 0) -> int:
        """Logical size of a file in blocks."""
        return self.volume(line).inodes[inode].size_blocks

    def list_files(self, line: int = 0) -> List[int]:
        """Inode numbers of all files in the live image of ``line``."""
        return sorted(self.volume(line).inodes)

    # ---------------------------------------------------- consistency points

    def take_consistency_point(self) -> int:
        """Complete the current consistency point and return its CP number."""
        cp = self.global_cp
        # Charge the metadata writes the write-anywhere update chain implies:
        # every dirty inode rewrites its inode block and indirect blocks, and
        # the volume root / superblock is rewritten once per dirty volume.
        dirty_volumes: Set[int] = set()
        for line, inode_number in self._dirty_inodes:
            volume = self.volumes.get(line)
            if volume is None or inode_number not in volume.inodes:
                continue
            self.counters.meta_block_writes += volume.inodes[inode_number].meta_blocks()
            dirty_volumes.add(line)
        self.counters.meta_block_writes += len(dirty_volumes) + 1  # roots + superblock
        self._dirty_inodes.clear()

        # Let the attached back-reference implementations flush.
        for listener in self.listeners:
            listener.on_consistency_point(cp)

        # Capture a snapshot of every volume at this CP and apply retention.
        for line, volume in self.volumes.items():
            self.snapshots.capture(line, cp, dict(volume.inodes))
            volume.freeze_all()
            for deleted in self.snapshots.apply_retention(line, cp):
                self.counters.snapshots_deleted += 1
                for listener in self.listeners:
                    listener.on_snapshot_deleted(deleted.line, deleted.version, False, cp)

        # The journal's contents are now durable via the CP.
        if self.journal is not None:
            self.journal.truncate()

        # Blocks whose lifetime no longer overlaps any retained version can go
        # back to the free pool.
        self.allocator.reclaim(self.snapshots.all_retained_versions(cp))

        self.counters.consistency_points += 1
        self.global_cp = cp + 1
        self._ops_since_cp = 0
        return cp

    # -------------------------------------------------- snapshots and clones

    def take_snapshot(self, line: int = 0) -> SnapshotId:
        """Force a consistency point and return the snapshot id it captured."""
        cp = self.take_consistency_point()
        return SnapshotId(line, cp)

    def create_clone(self, parent_line: int, parent_version: Optional[int] = None) -> int:
        """Create a writable clone of a snapshot and return its new line id.

        If ``parent_version`` is omitted the most recent retained snapshot of
        ``parent_line`` is used (taking one first if none exists).
        """
        if parent_version is None:
            versions = self.snapshots.versions(parent_line)
            if not versions:
                self.take_consistency_point()
                versions = self.snapshots.versions(parent_line)
            parent_version = versions[-1]
        parent_id = SnapshotId(parent_line, parent_version)
        snapshot = self.snapshots.get(parent_id)
        new_line = self.snapshots.new_line(parent_id)

        clone_volume = Volume(line=new_line)
        clone_volume.inodes = dict(snapshot.inodes)
        clone_volume.freeze_all()
        clone_volume.next_inode = max(clone_volume.inodes, default=1) + 1
        self.volumes[new_line] = clone_volume

        # The clone's image makes every block in the snapshot live again (or
        # more shared); this is pure allocator bookkeeping -- structural
        # inheritance means no back-reference records are written.
        for inode in snapshot.inodes.values():
            for _, block in inode.iter_blocks():
                self.allocator.add_ref_or_revive(block)

        self.counters.clones_created += 1
        cp = self.global_cp
        for listener in self.listeners:
            listener.on_clone_created(new_line, parent_line, parent_version, cp)
        return new_line

    def delete_clone(self, line: int) -> None:
        """Delete a writable clone volume and all references it holds."""
        if line == 0:
            raise ValueError("cannot delete the root volume")
        volume = self.volume(line)
        for inode_number in list(volume.inodes):
            self.delete_file(inode_number, line=line)
        del self.volumes[line]

    def delete_snapshot(self, line: int, version: int) -> bool:
        """Delete a retained snapshot; returns True if it became a zombie."""
        is_zombie = self.snapshots.delete(SnapshotId(line, version))
        self.counters.snapshots_deleted += 1
        cp = self.global_cp
        for listener in self.listeners:
            listener.on_snapshot_deleted(line, version, is_zombie, cp)
        return is_zombie

    # ------------------------------------------------------------ inspection

    @property
    def physical_data_bytes(self) -> int:
        """Bytes of physical data currently pinned on the (virtual) data disk."""
        return self.allocator.physical_blocks_in_use * self.config.block_size

    def live_lines(self) -> List[int]:
        """Lines with a writable volume or at least one retained snapshot."""
        lines = set(self.volumes)
        for snap in self.snapshots.all_snapshots():
            lines.add(snap.line)
        return sorted(lines)

    def iter_live_references(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(block, inode, offset, line)`` for every live reference."""
        for line, volume in sorted(self.volumes.items()):
            for inode_number, inode in sorted(volume.inodes.items()):
                for offset, block in inode.iter_blocks():
                    yield block, inode_number, offset, line

    def iter_snapshot_references(self) -> Iterator[Tuple[int, int, int, int, int]]:
        """Yield ``(block, inode, offset, line, version)`` for retained snapshots."""
        for snap in self.snapshots.all_snapshots():
            for inode_number, inode in sorted(snap.inodes.items()):
                for offset, block in inode.iter_blocks():
                    yield block, inode_number, offset, snap.line, snap.version

    # --------------------------------------------------------------- internals

    def _mark_dirty(self, line: int, inode: int) -> None:
        self._dirty_inodes.add((line, inode))

    def _maybe_auto_cp(self) -> None:
        if self.config.auto_cp and self._ops_since_cp >= self.config.ops_per_cp:
            self.take_consistency_point()

    def _write_block(self, volume: Volume, node: Inode, offset: int) -> None:
        """Copy-on-write one logical block of ``node``."""
        cp = self.global_cp
        previous = node.physical_block(offset)

        duplicate = self.dedup.maybe_duplicate() if self.dedup is not None else None
        if duplicate is not None and self.allocator.is_allocated(duplicate) and duplicate != previous:
            block = duplicate
            self.allocator.add_ref(block)
        else:
            block = self.allocator.allocate(cp)
            if self.dedup is not None:
                self.dedup.observe_new_block(block)

        node.set_block(offset, block)
        self.counters.data_block_writes += 1
        self._notify_added(block, node.number, offset, volume.line, cp)

        if previous is not None:
            self._drop_block(volume, node.number, offset, previous, cp)

    def _remove_reference(self, volume: Volume, inode: int, offset: int, block: int) -> None:
        cp = self.global_cp
        self._drop_block(volume, inode, offset, block, cp)

    def _drop_block(self, volume: Volume, inode: int, offset: int, block: int, cp: int) -> None:
        remaining = self.allocator.drop_ref(block, cp)
        if remaining == 0 and self.dedup is not None:
            self.dedup.forget_block(block)
        self._notify_removed(block, inode, offset, volume.line, cp)

    def _notify_added(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        self.counters.block_ops += 1
        self._ops_since_cp += 1
        if self.journal is not None:
            self.journal.log_add(block, inode, offset, line, cp)
        for listener in self.listeners:
            listener.on_reference_added(block, inode, offset, line, cp)

    def _notify_removed(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        self.counters.block_ops += 1
        self._ops_since_cp += 1
        if self.journal is not None:
            self.journal.log_remove(block, inode, offset, line, cp)
        for listener in self.listeners:
            listener.on_reference_removed(block, inode, offset, line, cp)
