"""Snapshot lines, versions, writable clones, and retention.

The paper models the snapshot space as *lines* (Figure 3): taking a
consistency point creates a new version within the latest line, while creating
a writable clone of an existing snapshot starts a new line.  A snapshot or
consistency point is uniquely identified by the pair ``(line, version)`` where
``version`` is the global CP number at which it was captured.

This module tracks:

* which snapshot versions exist and are retained in each line (the retention
  policy mirrors the paper's configuration of a few recent CPs promoted to
  hourly and nightly snapshots),
* the clone parentage graph (needed by Backlog's structural-inheritance
  expansion at query time), and
* *zombies* -- snapshots that have been deleted but were previously cloned,
  whose back references must not be purged while descendants remain
  (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.fsim.inode import Inode

__all__ = ["SnapshotId", "Snapshot", "SnapshotPolicy", "SnapshotManager"]


class SnapshotId(NamedTuple):
    """Identity of a snapshot or consistency point."""

    line: int
    version: int


@dataclass
class Snapshot:
    """A retained point-in-time image of one volume.

    The inode table is a shallow copy of the volume's table at capture time;
    individual :class:`~repro.fsim.inode.Inode` objects are shared with the
    live volume until the volume modifies them (inode-granularity
    copy-on-write, handled by the file system).
    """

    line: int
    version: int
    inodes: Dict[int, Inode]
    kind: str = "cp"  # "cp", "hourly", "nightly", or "user"

    @property
    def id(self) -> SnapshotId:
        return SnapshotId(self.line, self.version)

    def total_block_references(self) -> int:
        """Total number of (inode, offset) -> block pointers in this image."""
        return sum(inode.num_blocks for inode in self.inodes.values())


@dataclass(frozen=True)
class SnapshotPolicy:
    """Which consistency points are promoted to retained snapshots.

    The defaults approximate the paper's configuration: four hourly and four
    nightly snapshots, plus a handful of the most recent consistency points.
    Because the simulator's notion of time is the global CP number, "hourly"
    and "nightly" are expressed as CP strides.
    """

    recent_cps: int = 4
    hourly_retained: int = 4
    nightly_retained: int = 4
    cps_per_hour: int = 10
    cps_per_night: int = 100

    def classify(self, cp_number: int) -> str:
        """Return the strongest promotion this CP is eligible for."""
        if self.cps_per_night > 0 and cp_number % self.cps_per_night == 0:
            return "nightly"
        if self.cps_per_hour > 0 and cp_number % self.cps_per_hour == 0:
            return "hourly"
        return "cp"


class SnapshotManager:
    """Tracks snapshot lines, retained versions, clones and zombies."""

    def __init__(self, policy: Optional[SnapshotPolicy] = None) -> None:
        self.policy = policy or SnapshotPolicy()
        self._snapshots: Dict[SnapshotId, Snapshot] = {}
        #: line -> (parent line, parent version); line 0 has no parent.
        self._parents: Dict[int, Optional[SnapshotId]] = {0: None}
        #: (line, version) -> set of child lines cloned from that snapshot.
        self._children: Dict[SnapshotId, Set[int]] = {}
        self._next_line = 1
        #: Deleted-but-cloned snapshots whose back references must survive.
        self._zombies: Set[SnapshotId] = set()
        #: Snapshots deleted outright (their versions can be masked away).
        self._deleted_versions: Dict[int, Set[int]] = {}

    # -------------------------------------------------------------- creation

    def register_line(self, line: int, parent: Optional[SnapshotId]) -> None:
        """Record the existence of a snapshot line (used for the root volume)."""
        self._parents.setdefault(line, parent)

    def new_line(self, parent: SnapshotId) -> int:
        """Start a new line cloned from ``parent`` and return its id."""
        if parent not in self._snapshots:
            raise KeyError(f"cannot clone unknown snapshot {parent}")
        line = self._next_line
        self._next_line += 1
        self._parents[line] = parent
        self._children.setdefault(parent, set()).add(line)
        return line

    def capture(self, line: int, version: int, inodes: Dict[int, Inode]) -> Snapshot:
        """Retain the given inode table as snapshot ``(line, version)``."""
        if line not in self._parents:
            raise KeyError(f"unknown snapshot line {line}")
        snap = Snapshot(line=line, version=version, inodes=inodes,
                        kind=self.policy.classify(version))
        self._snapshots[snap.id] = snap
        return snap

    # -------------------------------------------------------------- deletion

    def delete(self, snapshot_id: SnapshotId) -> bool:
        """Delete a snapshot.

        If the snapshot has been cloned it becomes a *zombie*: the image is
        released but its identity is remembered so that Backlog's maintenance
        does not purge back references that clones still inherit.  Returns
        ``True`` when the snapshot became a zombie.
        """
        snapshot_id = SnapshotId(*snapshot_id)
        if snapshot_id not in self._snapshots:
            raise KeyError(f"unknown snapshot {snapshot_id}")
        del self._snapshots[snapshot_id]
        self._deleted_versions.setdefault(snapshot_id.line, set()).add(snapshot_id.version)
        if self._children.get(snapshot_id):
            self._zombies.add(snapshot_id)
            return True
        return False

    def apply_retention(self, line: int, current_cp: int) -> List[SnapshotId]:
        """Delete snapshots in ``line`` that fall outside the retention policy.

        Returns the ids of the snapshots that were deleted.  Cloned snapshots
        are never deleted by retention (they become zombies only via explicit
        deletion), mirroring the paper's rule that cloned snapshots' back
        references must be preserved.
        """
        policy = self.policy
        versions = self.versions(line)
        keep: Set[int] = set()
        recent = [v for v in versions if v > current_cp - policy.recent_cps]
        keep.update(recent)
        hourly = [v for v in versions if self._snapshots[SnapshotId(line, v)].kind in ("hourly", "nightly")]
        keep.update(hourly[-(policy.hourly_retained + policy.nightly_retained):])
        nightly = [v for v in versions if self._snapshots[SnapshotId(line, v)].kind == "nightly"]
        keep.update(nightly[-policy.nightly_retained:])
        deleted: List[SnapshotId] = []
        for version in versions:
            if version in keep:
                continue
            sid = SnapshotId(line, version)
            if self._children.get(sid):
                continue
            self.delete(sid)
            deleted.append(sid)
        return deleted

    def drop_dead_zombies(self, live_lines: Iterable[int]) -> List[SnapshotId]:
        """Forget zombies whose descendant lines have all been removed.

        ``live_lines`` is the set of lines that still exist (have a live
        volume or retained snapshots).  Returns the zombie ids dropped; their
        back references become purgeable at the next maintenance run.
        """
        live = set(live_lines)
        dropped: List[SnapshotId] = []
        for zombie in sorted(self._zombies):
            descendants = self._descendant_lines(zombie)
            if not (descendants & live):
                dropped.append(zombie)
        for zombie in dropped:
            self._zombies.discard(zombie)
        return dropped

    def _descendant_lines(self, snapshot_id: SnapshotId) -> Set[int]:
        result: Set[int] = set()
        frontier = list(self._children.get(snapshot_id, ()))
        while frontier:
            line = frontier.pop()
            if line in result:
                continue
            result.add(line)
            for sid, children in self._children.items():
                if sid.line == line:
                    frontier.extend(children)
        return result

    # --------------------------------------------------------------- queries

    def get(self, snapshot_id: SnapshotId) -> Snapshot:
        return self._snapshots[SnapshotId(*snapshot_id)]

    def exists(self, snapshot_id: SnapshotId) -> bool:
        return SnapshotId(*snapshot_id) in self._snapshots

    def versions(self, line: int) -> List[int]:
        """Sorted retained snapshot versions in ``line``."""
        return sorted(v for (ln, v) in self._snapshots if ln == line)

    def all_snapshots(self) -> List[Snapshot]:
        return [self._snapshots[sid] for sid in sorted(self._snapshots)]

    def lines(self) -> List[int]:
        return sorted(self._parents)

    def parent_of(self, line: int) -> Optional[SnapshotId]:
        """The snapshot from which ``line`` was cloned (None for the root line)."""
        return self._parents.get(line)

    def clones_of(self, snapshot_id: SnapshotId) -> List[int]:
        """Lines cloned directly from the given snapshot."""
        return sorted(self._children.get(SnapshotId(*snapshot_id), ()))

    def clone_parentage(self) -> List[Tuple[int, int, int]]:
        """``(line, parent_line, parent_version)`` for every cloned line.

        The full clone topology in one call -- this is what
        :func:`~repro.core.recovery.recover_backlog` replays to rebuild a
        Backlog's clone graph after a crash: parentage is file-system
        metadata (it survives in the write-anywhere tree), not part of the
        back-reference database itself.
        """
        result = []
        for line in sorted(self._parents):
            parent = self._parents[line]
            if parent is not None:
                result.append((line, parent.line, parent.version))
        return result

    def clone_points(self, line: int) -> List[Tuple[int, SnapshotId]]:
        """All ``(child_line, cloned_snapshot)`` pairs whose parent is ``line``."""
        result = []
        for sid, children in self._children.items():
            if sid.line == line:
                for child in children:
                    result.append((child, sid))
        return sorted(result)

    def zombies(self) -> List[SnapshotId]:
        return sorted(self._zombies)

    def is_zombie(self, snapshot_id: SnapshotId) -> bool:
        return SnapshotId(*snapshot_id) in self._zombies

    def deleted_versions(self, line: int) -> List[int]:
        """Versions of ``line`` that have been deleted (excluding zombies)."""
        dead = self._deleted_versions.get(line, set())
        return sorted(v for v in dead if SnapshotId(line, v) not in self._zombies)

    def retained_versions(self, line: int, current_cp: Optional[int] = None) -> List[int]:
        """Versions still reachable in ``line``: retained snapshots and zombies.

        If ``current_cp`` is given it is included to represent the live file
        system image of the line.
        """
        versions = set(self.versions(line))
        versions.update(v for (ln, v) in self._zombies if ln == line)
        if current_cp is not None:
            versions.add(current_cp)
        return sorted(versions)

    def all_retained_versions(self, current_cp: Optional[int] = None) -> List[int]:
        """Union of retained versions across all lines (for block reclaim)."""
        versions: Set[int] = set()
        for line in self.lines():
            versions.update(self.retained_versions(line, current_cp))
        return sorted(versions)
