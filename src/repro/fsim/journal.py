"""A logical operation journal for crash recovery.

Write-anywhere file systems that keep a journal (on disk or NVRAM) can replay
operations issued since the last consistency point to recover state lost in a
crash.  Backlog relies on exactly this property (§5.4): the write stores live
only in memory between consistency points, and after a failure they are
rebuilt by replaying the journal alongside the rest of the file system state.

The journal records *logical* back-reference events -- reference added,
reference removed -- rather than file-system operations, because that is the
granularity at which the write store must be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

__all__ = ["JournalRecord", "Journal"]


@dataclass(frozen=True)
class JournalRecord:
    """One logical event since the last consistency point.

    ``kind`` is ``"add"`` or ``"remove"``; the remaining fields identify the
    back reference exactly as the write store sees it.
    """

    kind: str
    block: int
    inode: int
    offset: int
    line: int
    cp: int

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise ValueError(f"unknown journal record kind {self.kind!r}")


class Journal:
    """Accumulates records between consistency points.

    The journal is truncated when a consistency point completes (all state it
    protected is now durable).  ``replay`` feeds the records since the last
    CP back into a pair of callbacks, which is how
    :class:`repro.core.recovery.RecoveryManager` rebuilds the write stores.
    """

    def __init__(self) -> None:
        self._records: List[JournalRecord] = []
        self._records_since_mount: int = 0

    def __len__(self) -> int:
        return len(self._records)

    def log_add(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Record that a reference (block <- inode/offset in line) was added."""
        self._records.append(JournalRecord("add", block, inode, offset, line, cp))
        self._records_since_mount += 1

    def log_remove(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Record that a reference was removed."""
        self._records.append(JournalRecord("remove", block, inode, offset, line, cp))
        self._records_since_mount += 1

    def truncate(self) -> int:
        """Discard all records (called when a consistency point completes).

        Returns the number of records discarded.
        """
        count = len(self._records)
        self._records.clear()
        return count

    def records(self) -> Tuple[JournalRecord, ...]:
        """The records logged since the last consistency point."""
        return tuple(self._records)

    def replay(
        self,
        on_add: Callable[[int, int, int, int, int], None],
        on_remove: Callable[[int, int, int, int, int], None],
    ) -> int:
        """Replay pending records into the provided callbacks.

        Returns the number of records replayed.
        """
        for record in self._records:
            if record.kind == "add":
                on_add(record.block, record.inode, record.offset, record.line, record.cp)
            else:
                on_remove(record.block, record.inode, record.offset, record.line, record.cp)
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)
