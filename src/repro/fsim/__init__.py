"""``fsim`` -- a write-anywhere file system simulator.

This package is a Python re-implementation of the custom simulator the paper
used to evaluate Backlog in isolation from a production file system.  It
models the *metadata* behaviour of a WAFL-style write-anywhere file system:

* files are trees of block pointers (inode -> indirect blocks -> data blocks),
* no block is ever updated in place -- every logical overwrite allocates a new
  physical block (copy-on-write) and the old block is freed only when no
  retained snapshot still references it,
* updates accumulate in memory and are applied at *consistency points* (CPs),
* snapshots are retained consistency points; writable clones fork a new
  *snapshot line*,
* block-level deduplication can make a newly written block share an existing
  physical block.

Data block contents are never stored (exactly as in the paper's ``fsim``);
only the back-reference metadata produced by the workload is written to the
simulated storage device.
"""

from repro.fsim.blockdev import (
    IOStats,
    MemoryBackend,
    DiskBackend,
    DiskImageBackend,
    PageFile,
    StorageBackend,
)
from repro.fsim.cache import PageCache
from repro.fsim.faults import (
    FaultEvent,
    FaultPlan,
    FaultStats,
    FaultyBackend,
    TornWriteError,
    TransientIOError,
    is_transient_fault,
)
from repro.fsim.allocator import BlockAllocator
from repro.fsim.inode import Inode
from repro.fsim.snapshots import SnapshotId, Snapshot, SnapshotManager, SnapshotPolicy
from repro.fsim.dedup import DedupConfig, DedupEngine
from repro.fsim.journal import Journal, JournalRecord
from repro.fsim.filesystem import (
    FileSystem,
    FileSystemConfig,
    ReferenceListener,
    Volume,
)

__all__ = [
    "IOStats",
    "MemoryBackend",
    "DiskBackend",
    "DiskImageBackend",
    "PageFile",
    "StorageBackend",
    "PageCache",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
    "FaultyBackend",
    "TornWriteError",
    "TransientIOError",
    "is_transient_fault",
    "BlockAllocator",
    "Inode",
    "SnapshotId",
    "Snapshot",
    "SnapshotManager",
    "SnapshotPolicy",
    "DedupConfig",
    "DedupEngine",
    "Journal",
    "JournalRecord",
    "FileSystem",
    "FileSystemConfig",
    "ReferenceListener",
    "Volume",
]
