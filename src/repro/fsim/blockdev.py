"""Simulated storage for back-reference metadata.

The paper stores the Backlog read-store files on a dedicated disk and reports
*I/O writes (4 KB pages) per block operation* as its headline overhead metric.
To reproduce that metric without depending on the host machine's storage, this
module provides a page-granularity storage abstraction with exact I/O
accounting:

* :class:`MemoryBackend` keeps page data in memory (fast, used by tests and
  most benchmarks),
* :class:`DiskBackend` writes real files in a directory (used when the caller
  wants the read stores to survive process restarts, e.g. the recovery tests).

Both backends expose the same :class:`PageFile` interface and share the
:class:`IOStats` counters, so higher layers never care which one they run on.
A simple seek + transfer cost model converts page counts into simulated device
time; the paper's absolute figures came from a 15K RPM SAS drive with about
60 MB/s of write throughput, and the defaults mirror that device.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "PAGE_SIZE",
    "IOStats",
    "DeviceModel",
    "PageFile",
    "StorageBackend",
    "MemoryBackend",
    "DiskBackend",
]

#: Page size used throughout the simulator (WAFL and btrfs both use 4 KB).
PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Running I/O counters for a storage backend."""

    pages_written: int = 0
    pages_read: int = 0
    files_created: int = 0
    files_deleted: int = 0

    @property
    def bytes_written(self) -> int:
        return self.pages_written * PAGE_SIZE

    @property
    def bytes_read(self) -> int:
        return self.pages_read * PAGE_SIZE

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(
            pages_written=self.pages_written,
            pages_read=self.pages_read,
            files_created=self.files_created,
            files_deleted=self.files_deleted,
        )

    def delta(self, since: "IOStats") -> "IOStats":
        """Return the counter increase since an earlier snapshot."""
        return IOStats(
            pages_written=self.pages_written - since.pages_written,
            pages_read=self.pages_read - since.pages_read,
            files_created=self.files_created - since.files_created,
            files_deleted=self.files_deleted - since.files_deleted,
        )

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.files_created = 0
        self.files_deleted = 0


@dataclass(frozen=True)
class DeviceModel:
    """A first-order disk cost model (seek + sequential transfer).

    The model is intentionally simple: it exists so that benchmarks can report
    a *simulated* device time alongside measured CPU time, not to predict real
    hardware latency.
    """

    seek_time_s: float = 0.004
    write_bandwidth_bytes_per_s: float = 60e6
    read_bandwidth_bytes_per_s: float = 90e6

    def write_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to write ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.write_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer

    def read_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to read ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.read_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer


class PageFile:
    """A page-addressable file hosted by a :class:`StorageBackend`.

    Pages are appended (the read store is written strictly sequentially,
    bottom-up) and read back by index.  Appended pages shorter than
    ``PAGE_SIZE`` are zero-padded, matching how a real page write behaves.
    """

    def __init__(self, backend: "StorageBackend", name: str) -> None:
        self._backend = backend
        self.name = name

    # Subclasses provide _append/_read/_num_pages; the public wrappers do the
    # accounting so that every backend counts I/O identically.

    def append_page(self, data: bytes) -> int:
        """Write ``data`` as the next page and return its page index."""
        if len(data) > PAGE_SIZE:
            raise ValueError(f"page data of {len(data)} bytes exceeds PAGE_SIZE")
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        index = self._append(data)
        self._backend.stats.pages_written += 1
        return index

    def read_page(self, index: int) -> bytes:
        """Read the page at ``index`` (0-based)."""
        if index < 0 or index >= self.num_pages:
            raise IndexError(f"page {index} out of range in {self.name!r}")
        self._backend.stats.pages_read += 1
        return self._read(index)

    @property
    def num_pages(self) -> int:
        return self._num_pages()

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    # -- backend specific hooks ------------------------------------------------

    def _append(self, data: bytes) -> int:
        raise NotImplementedError

    def _read(self, index: int) -> bytes:
        raise NotImplementedError

    def _num_pages(self) -> int:
        raise NotImplementedError


class StorageBackend:
    """Abstract page-file store with shared I/O accounting."""

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        self.stats = IOStats()
        self.device = device or DeviceModel()

    def create(self, name: str) -> PageFile:
        """Create (or truncate) the named page file."""
        raise NotImplementedError

    def open(self, name: str) -> PageFile:
        """Open an existing page file for reading."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Delete the named page file."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def list_files(self) -> List[str]:
        raise NotImplementedError

    def total_pages(self) -> int:
        """Total pages currently stored across all files."""
        total = 0
        for name in self.list_files():
            total += self.open(name).num_pages
        return total

    def total_bytes(self) -> int:
        return self.total_pages() * PAGE_SIZE


class _MemoryPageFile(PageFile):
    def __init__(self, backend: "MemoryBackend", name: str, pages: List[bytes]) -> None:
        super().__init__(backend, name)
        self._pages = pages

    def _append(self, data: bytes) -> int:
        self._pages.append(data)
        return len(self._pages) - 1

    def _read(self, index: int) -> bytes:
        return self._pages[index]

    def _num_pages(self) -> int:
        return len(self._pages)


class MemoryBackend(StorageBackend):
    """Stores page files in process memory.

    The default backend for tests and benchmarks: I/O is still counted page
    by page, but nothing touches the host file system.
    """

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self._files: Dict[str, List[bytes]] = {}

    def create(self, name: str) -> PageFile:
        self._files[name] = []
        self.stats.files_created += 1
        return _MemoryPageFile(self, name, self._files[name])

    def open(self, name: str) -> PageFile:
        if name not in self._files:
            raise FileNotFoundError(name)
        return _MemoryPageFile(self, name, self._files[name])

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundError(name)
        del self._files[name]
        self.stats.files_deleted += 1

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)


class _DiskPageFile(PageFile):
    def __init__(self, backend: "DiskBackend", name: str, path: str) -> None:
        super().__init__(backend, name)
        self._path = path

    def _append(self, data: bytes) -> int:
        with open(self._path, "ab") as handle:
            handle.write(data)
        return self._num_pages() - 1

    def _read(self, index: int) -> bytes:
        with open(self._path, "rb") as handle:
            handle.seek(index * PAGE_SIZE)
            return handle.read(PAGE_SIZE)

    def _num_pages(self) -> int:
        try:
            return os.path.getsize(self._path) // PAGE_SIZE
        except OSError:
            return 0


class DiskBackend(StorageBackend):
    """Stores page files as real files under ``directory``.

    File names may contain ``/`` which is mapped to a flat, escaped file name
    so that callers can use hierarchical run names without creating
    directories.
    """

    def __init__(self, directory: str, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        safe = name.replace(os.sep, "__").replace("/", "__")
        return os.path.join(self.directory, safe)

    def create(self, name: str) -> PageFile:
        path = self._path(name)
        with open(path, "wb"):
            pass
        self.stats.files_created += 1
        return _DiskPageFile(self, name, path)

    def open(self, name: str) -> PageFile:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        return _DiskPageFile(self, name, path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        os.remove(path)
        self.stats.files_deleted += 1

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_files(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            names.append(entry.replace("__", "/"))
        return names
