"""Simulated storage for back-reference metadata.

The paper stores the Backlog read-store files on a dedicated disk and reports
*I/O writes (4 KB pages) per block operation* as its headline overhead metric.
To reproduce that metric without depending on the host machine's storage, this
module provides a page-granularity storage abstraction with exact I/O
accounting:

* :class:`MemoryBackend` keeps page data in memory (fast, used by tests and
  most benchmarks),
* :class:`DiskBackend` writes real files in a directory (used when the caller
  wants the read stores to survive process restarts, e.g. the recovery tests).

Both backends expose the same :class:`PageFile` interface and share the
:class:`IOStats` counters, so higher layers never care which one they run on.
A simple seek + transfer cost model converts page counts into simulated device
time; the paper's absolute figures came from a 15K RPM SAS drive with about
60 MB/s of write throughput, and the defaults mirror that device.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "PAGE_SIZE",
    "IOStats",
    "DeviceModel",
    "PageFile",
    "StorageBackend",
    "MemoryBackend",
    "DiskBackend",
    "ThrottledBackend",
]

#: Page size used throughout the simulator (WAFL and btrfs both use 4 KB).
PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Running I/O counters for a storage backend.

    The counters are incremented through the ``count_*`` methods, which take
    a lock: the flush and maintenance executors drive page writes from
    several worker threads at once, and a bare ``stats.pages_written += 1``
    is a read-modify-write that loses updates under that concurrency (the
    regression test in ``tests/test_parallel_equivalence.py`` hammers
    exactly this).  Reads of the plain fields, and ``snapshot``/``delta``/
    ``reset``, are only ever performed from the coordinating thread between
    dispatches, so they stay lock-free.
    """

    pages_written: int = 0
    pages_read: int = 0
    files_created: int = 0
    files_deleted: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def count_pages_written(self, pages: int = 1) -> None:
        with self._lock:
            self.pages_written += pages

    def count_pages_read(self, pages: int = 1) -> None:
        with self._lock:
            self.pages_read += pages

    def count_file_created(self) -> None:
        with self._lock:
            self.files_created += 1

    def count_file_deleted(self) -> None:
        with self._lock:
            self.files_deleted += 1

    # Locks are not copyable; copies get fresh ones (a copied stats object
    # belongs to a new backend, never to the threads of the original).

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def bytes_written(self) -> int:
        return self.pages_written * PAGE_SIZE

    @property
    def bytes_read(self) -> int:
        return self.pages_read * PAGE_SIZE

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(
            pages_written=self.pages_written,
            pages_read=self.pages_read,
            files_created=self.files_created,
            files_deleted=self.files_deleted,
        )

    def delta(self, since: "IOStats") -> "IOStats":
        """Return the counter increase since an earlier snapshot."""
        return IOStats(
            pages_written=self.pages_written - since.pages_written,
            pages_read=self.pages_read - since.pages_read,
            files_created=self.files_created - since.files_created,
            files_deleted=self.files_deleted - since.files_deleted,
        )

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.files_created = 0
        self.files_deleted = 0


@dataclass(frozen=True)
class DeviceModel:
    """A first-order disk cost model (seek + sequential transfer).

    The model is intentionally simple: it exists so that benchmarks can report
    a *simulated* device time alongside measured CPU time, not to predict real
    hardware latency.
    """

    seek_time_s: float = 0.004
    write_bandwidth_bytes_per_s: float = 60e6
    read_bandwidth_bytes_per_s: float = 90e6

    def write_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to write ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.write_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer

    def read_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to read ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.read_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer


class PageFile:
    """A page-addressable file hosted by a :class:`StorageBackend`.

    Pages are appended (the read store is written strictly sequentially,
    bottom-up) and read back by index.  Appended pages shorter than
    ``PAGE_SIZE`` are zero-padded, matching how a real page write behaves.
    """

    def __init__(self, backend: "StorageBackend", name: str) -> None:
        self._backend = backend
        self.name = name

    # Subclasses provide _append/_read/_num_pages; the public wrappers do the
    # accounting so that every backend counts I/O identically.

    def append_page(self, data: bytes) -> int:
        """Write ``data`` as the next page and return its page index."""
        if len(data) > PAGE_SIZE:
            raise ValueError(f"page data of {len(data)} bytes exceeds PAGE_SIZE")
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        index = self._append(data)
        self._backend.stats.count_pages_written()
        return index

    def read_page(self, index: int) -> bytes:
        """Read the page at ``index`` (0-based)."""
        if index < 0 or index >= self.num_pages:
            raise IndexError(f"page {index} out of range in {self.name!r}")
        self._backend.stats.count_pages_read()
        return self._read(index)

    @property
    def num_pages(self) -> int:
        return self._num_pages()

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    # -- backend specific hooks ------------------------------------------------

    def _append(self, data: bytes) -> int:
        raise NotImplementedError

    def _read(self, index: int) -> bytes:
        raise NotImplementedError

    def _num_pages(self) -> int:
        raise NotImplementedError


class StorageBackend:
    """Abstract page-file store with shared I/O accounting."""

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        self.stats = IOStats()
        self.device = device or DeviceModel()

    def create(self, name: str) -> PageFile:
        """Create (or truncate) the named page file."""
        raise NotImplementedError

    def open(self, name: str) -> PageFile:
        """Open an existing page file for reading."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Delete the named page file."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def list_files(self) -> List[str]:
        raise NotImplementedError

    def total_pages(self) -> int:
        """Total pages currently stored across all files."""
        total = 0
        for name in self.list_files():
            total += self.open(name).num_pages
        return total

    def total_bytes(self) -> int:
        return self.total_pages() * PAGE_SIZE


class _MemoryPageFile(PageFile):
    def __init__(self, backend: "MemoryBackend", name: str, pages: List[bytes]) -> None:
        super().__init__(backend, name)
        self._pages = pages

    def _append(self, data: bytes) -> int:
        self._pages.append(data)
        return len(self._pages) - 1

    def _read(self, index: int) -> bytes:
        return self._pages[index]

    def _num_pages(self) -> int:
        return len(self._pages)


class MemoryBackend(StorageBackend):
    """Stores page files in process memory.

    The default backend for tests and benchmarks: I/O is still counted page
    by page, but nothing touches the host file system.
    """

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self._files: Dict[str, List[bytes]] = {}

    def create(self, name: str) -> PageFile:
        self._files[name] = []
        self.stats.count_file_created()
        return _MemoryPageFile(self, name, self._files[name])

    def open(self, name: str) -> PageFile:
        if name not in self._files:
            raise FileNotFoundError(name)
        return _MemoryPageFile(self, name, self._files[name])

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundError(name)
        del self._files[name]
        self.stats.count_file_deleted()

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)


class _DiskPageFile(PageFile):
    def __init__(self, backend: "DiskBackend", name: str, path: str) -> None:
        super().__init__(backend, name)
        self._path = path

    def _append(self, data: bytes) -> int:
        with open(self._path, "ab") as handle:
            handle.write(data)
        return self._num_pages() - 1

    def _read(self, index: int) -> bytes:
        with open(self._path, "rb") as handle:
            handle.seek(index * PAGE_SIZE)
            return handle.read(PAGE_SIZE)

    def _num_pages(self) -> int:
        try:
            return os.path.getsize(self._path) // PAGE_SIZE
        except OSError:
            return 0


class DiskBackend(StorageBackend):
    """Stores page files as real files under ``directory``.

    File names may contain ``/`` which is mapped to a flat, escaped file name
    so that callers can use hierarchical run names without creating
    directories.
    """

    def __init__(self, directory: str, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        safe = name.replace(os.sep, "__").replace("/", "__")
        return os.path.join(self.directory, safe)

    def create(self, name: str) -> PageFile:
        path = self._path(name)
        with open(path, "wb"):
            pass
        self.stats.count_file_created()
        return _DiskPageFile(self, name, path)

    def open(self, name: str) -> PageFile:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        return _DiskPageFile(self, name, path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        os.remove(path)
        self.stats.count_file_deleted()

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_files(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            names.append(entry.replace("__", "/"))
        return names


class _ThrottledPageFile(PageFile):
    def __init__(self, backend: "ThrottledBackend", inner: PageFile) -> None:
        super().__init__(backend, inner.name)
        self._inner = inner

    def _append(self, data: bytes) -> int:
        index = self._inner._append(data)
        self._backend._charge_write()
        return index

    def _read(self, index: int) -> bytes:
        data = self._inner._read(index)
        self._backend._charge_read()
        return data

    def _num_pages(self) -> int:
        return self._inner._num_pages()


class ThrottledBackend(StorageBackend):
    """A backend wrapper that makes simulated device time actually elapse.

    Every page transfer sleeps for the :class:`DeviceModel` transfer cost of
    one page (scaled by ``time_scale``), so wall-clock measurements over this
    backend include the device component a :class:`MemoryBackend` elides.
    Because ``time.sleep`` releases the GIL, concurrent writers overlap their
    device time exactly the way independent partition flushes overlap on real
    hardware -- which is what the ``flush_parallel`` benchmark section uses
    this backend to measure.  Seek time is deliberately excluded: the read
    store is written strictly sequentially, so per-page charging of the
    transfer cost is the model's honest per-operation figure.

    I/O accounting (:class:`IOStats`) is shared with the wrapped backend, so
    counters read identically whichever handle the caller keeps.
    """

    def __init__(self, inner: StorageBackend,
                 device: Optional[DeviceModel] = None,
                 time_scale: float = 1.0) -> None:
        super().__init__(device or inner.device)
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        self.inner = inner
        self.stats = inner.stats  # one shared set of counters
        self.time_scale = time_scale
        self._write_sleep = time_scale * PAGE_SIZE / self.device.write_bandwidth_bytes_per_s
        self._read_sleep = time_scale * PAGE_SIZE / self.device.read_bandwidth_bytes_per_s

    def _charge_write(self) -> None:
        if self._write_sleep > 0.0:
            time.sleep(self._write_sleep)

    def _charge_read(self) -> None:
        if self._read_sleep > 0.0:
            time.sleep(self._read_sleep)

    def create(self, name: str) -> PageFile:
        return _ThrottledPageFile(self, self.inner.create(name))

    def open(self, name: str) -> PageFile:
        return _ThrottledPageFile(self, self.inner.open(name))

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list_files(self) -> List[str]:
        return self.inner.list_files()
