"""Simulated storage for back-reference metadata.

The paper stores the Backlog read-store files on a dedicated disk and reports
*I/O writes (4 KB pages) per block operation* as its headline overhead metric.
To reproduce that metric without depending on the host machine's storage, this
module provides a page-granularity storage abstraction with exact I/O
accounting:

* :class:`MemoryBackend` keeps page data in memory (fast, used by tests and
  most benchmarks),
* :class:`DiskBackend` writes one real file per page file in a directory
  (used when the caller wants the read stores to survive process restarts,
  e.g. the recovery tests).  Run writes are batched: a created page file
  holds one descriptor and buffers appends until a single ``os.pwrite``
  flush, instead of the historical open/append/close per page.
* :class:`DiskImageBackend` packs every page file into *one* image file --
  a block-addressed device in the fs-sim ``DiskEmulator`` style -- served
  through a single descriptor with positional ``os.pread``/``os.pwrite``,
  so concurrent readers and writers overlap actual file I/O without any
  per-file handle churn.

All backends expose the same :class:`PageFile` interface and share the
:class:`IOStats` counters, so higher layers never care which one they run on.
A simple seek + transfer cost model converts page counts into simulated device
time; the paper's absolute figures came from a 15K RPM SAS drive with about
60 MB/s of write throughput, and the defaults mirror that device.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "PAGE_SIZE",
    "IOStats",
    "DeviceModel",
    "PageFile",
    "StorageBackend",
    "MemoryBackend",
    "DiskBackend",
    "DiskImageBackend",
    "ThrottledBackend",
]

#: Page size used throughout the simulator (WAFL and btrfs both use 4 KB).
PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Running I/O counters for a storage backend.

    The counters are incremented through the ``count_*`` methods, which take
    a lock: the flush and maintenance executors drive page writes from
    several worker threads at once, and a bare ``stats.pages_written += 1``
    is a read-modify-write that loses updates under that concurrency (the
    regression test in ``tests/test_parallel_equivalence.py`` hammers
    exactly this).  Reads of the plain fields, and ``snapshot``/``delta``/
    ``reset``, are only ever performed from the coordinating thread between
    dispatches, so they stay lock-free.

    Read tallies
    ------------
    Per-query page-read attribution cannot be derived from the shared
    ``pages_read`` counter: with concurrent queries (and the query engine's
    partition fan-out) a before/after sample of the global counter charges
    one query with another's reads.  Instead, each thread keeps a stack of
    *read tallies*: :meth:`push_read_tally` opens a scope, every page read
    counted on that thread also increments the innermost open tally, and
    :meth:`pop_read_tally` closes the scope and returns its exact count.
    A fan-out worker drains its partition under its own tally and hands the
    count back with its records; the consuming thread folds it into *its*
    open tally via :meth:`add_tallied_reads` (the global counter already saw
    those reads on the worker, so only the tally is adjusted).  The stack is
    ``threading.local``, so tallies are race-free by construction.
    """

    pages_written: int = 0
    pages_read: int = 0
    files_created: int = 0
    files_deleted: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _local: threading.local = field(default_factory=threading.local,
                                    repr=False, compare=False)

    def count_pages_written(self, pages: int = 1) -> None:
        with self._lock:
            self.pages_written += pages

    def count_pages_read(self, pages: int = 1) -> None:
        with self._lock:
            self.pages_read += pages
        tallies = getattr(self._local, "tallies", None)
        if tallies:
            tallies[-1] += pages

    # ------------------------------------------------ per-thread read tallies

    def push_read_tally(self) -> None:
        """Open a read-tally scope on the calling thread."""
        tallies = getattr(self._local, "tallies", None)
        if tallies is None:
            tallies = self._local.tallies = []
        tallies.append(0)

    def pop_read_tally(self) -> int:
        """Close the innermost tally scope and return its page-read count."""
        return self._local.tallies.pop()

    def add_tallied_reads(self, pages: int) -> None:
        """Fold reads already counted on another thread into the open tally.

        Used when a fan-out worker's drained partition is consumed: the
        worker's reads hit the global counter when they happened, so only
        the consuming thread's tally attribution is adjusted here.  A no-op
        when the calling thread has no open tally.
        """
        tallies = getattr(self._local, "tallies", None)
        if tallies:
            tallies[-1] += pages

    def count_file_created(self) -> None:
        with self._lock:
            self.files_created += 1

    def count_file_deleted(self) -> None:
        with self._lock:
            self.files_deleted += 1

    # Locks and thread-local tallies are not copyable; copies get fresh ones
    # (a copied stats object belongs to a new backend, never to the threads
    # of the original).

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        state.pop("_local", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def bytes_written(self) -> int:
        return self.pages_written * PAGE_SIZE

    @property
    def bytes_read(self) -> int:
        return self.pages_read * PAGE_SIZE

    def snapshot(self) -> "IOStats":
        """Return a copy of the current counters."""
        return IOStats(
            pages_written=self.pages_written,
            pages_read=self.pages_read,
            files_created=self.files_created,
            files_deleted=self.files_deleted,
        )

    def delta(self, since: "IOStats") -> "IOStats":
        """Return the counter increase since an earlier snapshot."""
        return IOStats(
            pages_written=self.pages_written - since.pages_written,
            pages_read=self.pages_read - since.pages_read,
            files_created=self.files_created - since.files_created,
            files_deleted=self.files_deleted - since.files_deleted,
        )

    def reset(self) -> None:
        self.pages_written = 0
        self.pages_read = 0
        self.files_created = 0
        self.files_deleted = 0


@dataclass(frozen=True)
class DeviceModel:
    """A first-order disk cost model (seek + sequential transfer).

    The model is intentionally simple: it exists so that benchmarks can report
    a *simulated* device time alongside measured CPU time, not to predict real
    hardware latency.
    """

    seek_time_s: float = 0.004
    write_bandwidth_bytes_per_s: float = 60e6
    read_bandwidth_bytes_per_s: float = 90e6

    def write_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to write ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.write_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer

    def read_cost(self, pages: int, sequential_runs: int = 1) -> float:
        """Estimated seconds to read ``pages`` pages in ``sequential_runs`` extents."""
        if pages <= 0:
            return 0.0
        transfer = pages * PAGE_SIZE / self.read_bandwidth_bytes_per_s
        return sequential_runs * self.seek_time_s + transfer


class PageFile:
    """A page-addressable file hosted by a :class:`StorageBackend`.

    Pages are appended (the read store is written strictly sequentially,
    bottom-up) and read back by index.  Appended pages shorter than
    ``PAGE_SIZE`` are zero-padded, matching how a real page write behaves.
    """

    def __init__(self, backend: "StorageBackend", name: str) -> None:
        self._backend = backend
        self.name = name

    # Subclasses provide _append/_read/_num_pages; the public wrappers do the
    # accounting so that every backend counts I/O identically.

    def append_page(self, data: bytes) -> int:
        """Write ``data`` as the next page and return its page index."""
        if len(data) > PAGE_SIZE:
            raise ValueError(f"page data of {len(data)} bytes exceeds PAGE_SIZE")
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        index = self._append(data)
        self._backend.stats.count_pages_written()
        return index

    def read_page(self, index: int) -> bytes:
        """Read the page at ``index`` (0-based)."""
        if index < 0 or index >= self.num_pages:
            raise IndexError(f"page {index} out of range in {self.name!r}")
        self._backend.stats.count_pages_read()
        return self._read(index)

    @property
    def num_pages(self) -> int:
        return self._num_pages()

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    # -- backend specific hooks ------------------------------------------------

    def _append(self, data: bytes) -> int:
        raise NotImplementedError

    def _read(self, index: int) -> bytes:
        raise NotImplementedError

    def _num_pages(self) -> int:
        raise NotImplementedError


class StorageBackend:
    """Abstract page-file store with shared I/O accounting."""

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        self.stats = IOStats()
        self.device = device or DeviceModel()

    def create(self, name: str) -> PageFile:
        """Create (or truncate) the named page file."""
        raise NotImplementedError

    def open(self, name: str) -> PageFile:
        """Open an existing page file for reading."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Delete the named page file."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def list_files(self) -> List[str]:
        raise NotImplementedError

    def total_pages(self) -> int:
        """Total pages currently stored across all files."""
        total = 0
        for name in self.list_files():
            total += self.open(name).num_pages
        return total

    def total_bytes(self) -> int:
        return self.total_pages() * PAGE_SIZE


class _MemoryPageFile(PageFile):
    def __init__(self, backend: "MemoryBackend", name: str, pages: List[bytes]) -> None:
        super().__init__(backend, name)
        self._pages = pages

    def _append(self, data: bytes) -> int:
        self._pages.append(data)
        return len(self._pages) - 1

    def _read(self, index: int) -> bytes:
        return self._pages[index]

    def _num_pages(self) -> int:
        return len(self._pages)


class MemoryBackend(StorageBackend):
    """Stores page files in process memory.

    The default backend for tests and benchmarks: I/O is still counted page
    by page, but nothing touches the host file system.
    """

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self._files: Dict[str, List[bytes]] = {}

    def create(self, name: str) -> PageFile:
        self._files[name] = []
        self.stats.count_file_created()
        return _MemoryPageFile(self, name, self._files[name])

    def open(self, name: str) -> PageFile:
        if name not in self._files:
            raise FileNotFoundError(name)
        return _MemoryPageFile(self, name, self._files[name])

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundError(name)
        del self._files[name]
        self.stats.count_file_deleted()

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)


def _escape_name(name: str) -> str:
    """Reversible flat-file escape for hierarchical page-file names.

    ``_`` becomes ``_u`` before ``/`` becomes ``__``, so the decoded form is
    unambiguous even for names that legitimately contain ``__`` (the
    historical one-way ``name.replace("/", "__")`` corrupted those on the
    ``list_files`` round trip).  ``_unescape_name`` inverts exactly;
    ``tests/test_blockdev.py`` holds the round trip with a property test.
    """
    return name.replace("_", "_u").replace("/", "__")


def _unescape_name(entry: str) -> str:
    """Invert :func:`_escape_name` (``__`` -> ``/`` first, then ``_u`` -> ``_``)."""
    return entry.replace("__", "/").replace("_u", "_")


#: Buffered appends per created disk page file before an automatic flush.
_DISK_FLUSH_PAGES = 256

#: Live created (buffering) handles keyed by absolute file path.  Module
#: level on purpose: a *different* DiskBackend instance over the same
#: directory (the recovery tests' restart pattern) must still observe
#: buffered appends, so any backend flushes the registered writer before
#: opening, deleting or overwriting the file.  Weak values: a writer dropped
#: by its owner flushes in ``__del__`` and needs no bookkeeping here.
_LIVE_WRITERS: "weakref.WeakValueDictionary[str, _DiskPageFile]" = \
    weakref.WeakValueDictionary()


class _DiskPageFile(PageFile):
    """One persistent descriptor per handle, with batched appends.

    A handle created through :meth:`DiskBackend.create` buffers appended
    pages and writes them with a single positional ``os.pwrite`` per batch
    (at most every ``_DISK_FLUSH_PAGES`` pages, or when a reader needs the
    bytes), so a run write costs one open + a handful of large writes
    instead of an open/append/close per page.  Reads use ``os.pread`` on the
    same descriptor -- positional, so concurrent readers never race on a
    shared file offset.  Handles from :meth:`DiskBackend.open` are read-only
    views over the on-disk bytes; the backend flushes any live writer for
    the name before handing one out.
    """

    def __init__(self, backend: "DiskBackend", name: str, path: str,
                 fd: Optional[int] = None, writable: bool = False) -> None:
        super().__init__(backend, name)
        self._path = path
        self._fd = fd
        self._writable = writable
        self._pending: List[bytes] = []
        self._pages = 0 if writable else self._disk_pages()
        self._flushed = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Write every buffered page with one positional ``os.pwrite``."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        payload = b"".join(self._pending)
        os.pwrite(self._fd, payload, self._flushed * PAGE_SIZE)
        self._flushed += len(self._pending)
        self._pending.clear()

    def close(self) -> None:
        """Flush buffered pages and release the descriptor (idempotent)."""
        with self._lock:
            fd, self._fd = self._fd, None
            if fd is None:
                return
            if self._pending:
                payload = b"".join(self._pending)
                os.pwrite(fd, payload, self._flushed * PAGE_SIZE)
                self._flushed += len(self._pending)
                self._pending.clear()
            os.close(fd)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown order
        try:
            self.close()
        except OSError:
            pass

    # -------------------------------------------------------------- backend

    def _ensure_fd(self) -> int:
        if self._fd is None:
            self._fd = os.open(self._path, os.O_RDONLY)
        return self._fd

    def _append(self, data: bytes) -> int:
        if not self._writable:
            # Appending through an open() handle is not the run-write path;
            # keep the simple historical behaviour for any direct caller.
            with open(self._path, "ab") as handle:
                handle.write(data)
            self._pages = self._disk_pages()
            return self._pages - 1
        with self._lock:
            self._pending.append(data)
            index = self._pages
            self._pages += 1
            if len(self._pending) >= _DISK_FLUSH_PAGES:
                self._flush_locked()
        return index

    def _read(self, index: int) -> bytes:
        if self._writable:
            with self._lock:
                self._flush_locked()
                fd = self._fd
        else:
            with self._lock:
                fd = self._ensure_fd()
        return os.pread(fd, PAGE_SIZE, index * PAGE_SIZE)

    def _num_pages(self) -> int:
        if self._writable:
            return self._pages
        return self._disk_pages()

    def _disk_pages(self) -> int:
        try:
            return os.path.getsize(self._path) // PAGE_SIZE
        except OSError:
            return 0


class DiskBackend(StorageBackend):
    """Stores page files as real files under ``directory``.

    File names may contain ``/`` which is mapped to a flat, *reversibly*
    escaped file name (see :func:`_escape_name`) so that callers can use
    hierarchical run names without creating directories.  Created files
    batch their appends (see :class:`_DiskPageFile`); the backend tracks
    live writers so :meth:`open` and :meth:`delete` always observe the
    buffered pages.
    """

    def __init__(self, directory: str, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.abspath(os.path.join(self.directory, _escape_name(name)))

    @staticmethod
    def _flush_writer(path: str) -> None:
        writer = _LIVE_WRITERS.get(path)
        if writer is not None:
            writer.flush()

    def create(self, name: str) -> PageFile:
        path = self._path(name)
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        handle = _DiskPageFile(self, name, path, fd=fd, writable=True)
        _LIVE_WRITERS[path] = handle
        self.stats.count_file_created()
        return handle

    def open(self, name: str) -> PageFile:
        path = self._path(name)
        self._flush_writer(path)
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        return _DiskPageFile(self, name, path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        writer = _LIVE_WRITERS.pop(path, None)
        if writer is not None:
            writer.close()
        if not os.path.exists(path):
            raise FileNotFoundError(name)
        os.remove(path)
        self.stats.count_file_deleted()

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_files(self) -> List[str]:
        return [_unescape_name(entry) for entry in sorted(os.listdir(self.directory))]

    def overwrite_page(self, name: str, page_index: int, data: bytes) -> None:
        """In-place page overwrite (fault injection's bit-rot-at-rest hook)."""
        path = self._path(name)
        self._flush_writer(path)
        with open(path, "r+b") as handle:
            handle.seek(page_index * PAGE_SIZE)
            handle.write(data)


class _ImagePageFile(PageFile):
    """A page file whose pages live inside a :class:`DiskImageBackend` image."""

    def __init__(self, backend: "DiskImageBackend", name: str) -> None:
        super().__init__(backend, name)

    def _append(self, data: bytes) -> int:
        backend: DiskImageBackend = self._backend
        index, image_page = backend._allocate_page(self.name)
        os.pwrite(backend._fd, data, image_page * PAGE_SIZE)
        return index

    def _read(self, index: int) -> bytes:
        backend: DiskImageBackend = self._backend
        image_page = backend._image_page(self.name, index)
        return os.pread(backend._fd, PAGE_SIZE, image_page * PAGE_SIZE)

    def _num_pages(self) -> int:
        return self._backend._file_pages(self.name)


class DiskImageBackend(StorageBackend):
    """Block-addressed storage inside one image file (fs-sim ``DiskEmulator`` style).

    Every page file's pages are allocated out of a single on-disk image,
    served through one descriptor with positional ``os.pread``/``os.pwrite``
    -- real, GIL-releasing file I/O with no per-file open/close at all, which
    is what lets parallel flush and parallel query gather overlap *actual*
    device time.  The name -> page-extent table and the free list live in
    memory (the image is a device, not a file system): contents do not
    survive the process, so recovery-style tests that reopen storage belong
    on :class:`DiskBackend`.  Deleted files return their pages to the free
    list; the image grows to its high-water mark and is never truncated.
    """

    def __init__(self, image_path: str, device: Optional[DeviceModel] = None) -> None:
        super().__init__(device)
        self.image_path = image_path
        parent = os.path.dirname(image_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fd = os.open(image_path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
        # name -> image page numbers, in logical page order.  Guarded by
        # _lock together with the free list; the data transfers themselves
        # are positional and run outside the lock.
        self._tables: Dict[str, List[int]] = {}
        self._free: List[int] = []
        self._next_page = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------ allocation

    def _allocate_page(self, name: str) -> "tuple[int, int]":
        with self._lock:
            pages = self._tables.get(name)
            if pages is None:
                raise FileNotFoundError(name)
            if self._free:
                image_page = self._free.pop()
            else:
                image_page = self._next_page
                self._next_page += 1
            pages.append(image_page)
            return len(pages) - 1, image_page

    def _image_page(self, name: str, index: int) -> int:
        with self._lock:
            return self._tables[name][index]

    def _file_pages(self, name: str) -> int:
        with self._lock:
            pages = self._tables.get(name)
            return len(pages) if pages is not None else 0

    # -------------------------------------------------------------- backend

    def create(self, name: str) -> PageFile:
        with self._lock:
            freed = self._tables.pop(name, None)
            if freed:
                self._free.extend(freed)
            self._tables[name] = []
        self.stats.count_file_created()
        return _ImagePageFile(self, name)

    def open(self, name: str) -> PageFile:
        with self._lock:
            if name not in self._tables:
                raise FileNotFoundError(name)
        return _ImagePageFile(self, name)

    def delete(self, name: str) -> None:
        with self._lock:
            pages = self._tables.pop(name, None)
            if pages is None:
                raise FileNotFoundError(name)
            self._free.extend(pages)
        self.stats.count_file_deleted()

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def list_files(self) -> List[str]:
        with self._lock:
            return sorted(self._tables)

    def overwrite_page(self, name: str, page_index: int, data: bytes) -> None:
        """In-place page overwrite (fault injection's bit-rot-at-rest hook)."""
        image_page = self._image_page(name, page_index)
        os.pwrite(self._fd, data, image_page * PAGE_SIZE)

    def close(self) -> None:
        """Release the image descriptor (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown order
        try:
            self.close()
        except (OSError, AttributeError):
            pass


class _ThrottledPageFile(PageFile):
    def __init__(self, backend: "ThrottledBackend", inner: PageFile) -> None:
        super().__init__(backend, inner.name)
        self._inner = inner

    def _append(self, data: bytes) -> int:
        index = self._inner._append(data)
        self._backend._charge_write()
        return index

    def _read(self, index: int) -> bytes:
        data = self._inner._read(index)
        self._backend._charge_read()
        return data

    def _num_pages(self) -> int:
        return self._inner._num_pages()


class ThrottledBackend(StorageBackend):
    """A backend wrapper that makes simulated device time actually elapse.

    Every page transfer sleeps for the :class:`DeviceModel` transfer cost of
    one page (scaled by ``time_scale``), so wall-clock measurements over this
    backend include the device component a :class:`MemoryBackend` elides.
    Because ``time.sleep`` releases the GIL, concurrent writers overlap their
    device time exactly the way independent partition flushes overlap on real
    hardware -- which is what the ``flush_parallel`` benchmark section uses
    this backend to measure.  Seek time is deliberately excluded: the read
    store is written strictly sequentially, so per-page charging of the
    transfer cost is the model's honest per-operation figure.

    I/O accounting (:class:`IOStats`) is shared with the wrapped backend, so
    counters read identically whichever handle the caller keeps.
    """

    def __init__(self, inner: StorageBackend,
                 device: Optional[DeviceModel] = None,
                 time_scale: float = 1.0) -> None:
        super().__init__(device or inner.device)
        if time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        self.inner = inner
        self.stats = inner.stats  # one shared set of counters
        self.time_scale = time_scale
        self._write_sleep = time_scale * PAGE_SIZE / self.device.write_bandwidth_bytes_per_s
        self._read_sleep = time_scale * PAGE_SIZE / self.device.read_bandwidth_bytes_per_s

    def _charge_write(self) -> None:
        if self._write_sleep > 0.0:
            time.sleep(self._write_sleep)

    def _charge_read(self) -> None:
        if self._read_sleep > 0.0:
            time.sleep(self._read_sleep)

    def create(self, name: str) -> PageFile:
        return _ThrottledPageFile(self, self.inner.create(name))

    def open(self, name: str) -> PageFile:
        return _ThrottledPageFile(self, self.inner.open(name))

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list_files(self) -> List[str]:
        return self.inner.list_files()
