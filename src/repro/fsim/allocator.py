"""Physical block allocation with snapshot-aware deferred freeing.

In a write-anywhere file system a physical block cannot be reused as soon as
the live file system stops referencing it: any retained snapshot whose tree
was captured while the block was allocated still points at it.  The allocator
therefore keeps, for every block whose live references have dropped to zero,
the half-open range of consistency points during which it was referenced, and
only returns the block to the free pool once no retained snapshot version
falls inside that range.

Deduplication adds plain reference counting on top: several logical pointers
(different inodes, offsets, or volumes) may share one physical block, and the
block only becomes a candidate for freeing when the last live reference goes
away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["AllocatorStats", "BlockAllocator"]


@dataclass
class AllocatorStats:
    """Counters describing allocator activity."""

    allocations: int = 0
    frees: int = 0
    deferred: int = 0
    reclaimed: int = 0


@dataclass
class _DeferredFree:
    """A block waiting for the snapshots that pin it to go away."""

    block: int
    first_cp: int
    last_cp: int  # exclusive: the CP at which the last live reference was dropped


class BlockAllocator:
    """Allocates physical block numbers and tracks live reference counts.

    The allocator hands out monotonically increasing block numbers, recycling
    numbers from the free list first (lowest first) so that the physical
    address space stays dense -- this matters for the horizontal-partitioning
    experiments, which split the back-reference database by physical block
    ranges.
    """

    def __init__(self) -> None:
        self._next_block = 0
        self._free: List[int] = []
        self._refcounts: Dict[int, int] = {}
        self._first_cp: Dict[int, int] = {}
        self._deferred: List[_DeferredFree] = []
        self.stats = AllocatorStats()

    # ------------------------------------------------------------ allocation

    def allocate(self, current_cp: int) -> int:
        """Allocate a fresh physical block with one live reference."""
        if self._free:
            block = self._free.pop()
        else:
            block = self._next_block
            self._next_block += 1
        self._refcounts[block] = 1
        self._first_cp[block] = current_cp
        self.stats.allocations += 1
        return block

    def add_ref(self, block: int) -> int:
        """Add a live reference to an already-allocated block (dedup/clone).

        Returns the new reference count.
        """
        if block not in self._refcounts:
            raise KeyError(f"block {block} is not allocated")
        self._refcounts[block] += 1
        return self._refcounts[block]

    def drop_ref(self, block: int, current_cp: int) -> int:
        """Drop a live reference; defer the free until snapshots allow it.

        Returns the remaining live reference count.
        """
        count = self._refcounts.get(block)
        if count is None:
            raise KeyError(f"block {block} is not allocated")
        if count == 1:
            del self._refcounts[block]
            first_cp = self._first_cp.pop(block)
            self._deferred.append(_DeferredFree(block, first_cp, current_cp))
            self.stats.frees += 1
            self.stats.deferred += 1
            return 0
        self._refcounts[block] = count - 1
        return count - 1

    def revive(self, block: int) -> None:
        """Bring a deferred (snapshot-only) block back to one live reference.

        This happens when a writable clone is created from a snapshot that
        references blocks the live file system has already stopped using: the
        clone's image makes them live again.  The block keeps its original
        allocation CP.
        """
        for index, entry in enumerate(self._deferred):
            if entry.block == block:
                del self._deferred[index]
                self._refcounts[block] = 1
                self._first_cp[block] = entry.first_cp
                self.stats.deferred -= 1
                return
        raise KeyError(f"block {block} is not deferred")

    def add_ref_or_revive(self, block: int) -> int:
        """Add a live reference, reviving the block if it was deferred."""
        if block in self._refcounts:
            return self.add_ref(block)
        self.revive(block)
        return 1

    # --------------------------------------------------------------- queries

    def refcount(self, block: int) -> int:
        """Live reference count of ``block`` (0 if not live)."""
        return self._refcounts.get(block, 0)

    def is_allocated(self, block: int) -> bool:
        return block in self._refcounts

    @property
    def live_blocks(self) -> int:
        """Number of blocks with at least one live reference."""
        return len(self._refcounts)

    @property
    def physical_blocks_in_use(self) -> int:
        """Blocks that cannot be reused yet (live + pinned by snapshots)."""
        return len(self._refcounts) + len(self._deferred)

    @property
    def deferred_blocks(self) -> int:
        return len(self._deferred)

    def iter_live_blocks(self) -> Iterable[Tuple[int, int]]:
        """Yield ``(block, refcount)`` for every live block."""
        return iter(sorted(self._refcounts.items()))

    def refcount_histogram(self) -> Dict[int, int]:
        """Map reference count -> number of live blocks with that count.

        Used to validate the deduplication emulation against the paper's
        target distribution (roughly 75-78 % of blocks at refcount 1, 18 % at
        2, 5 % at 3, ...).
        """
        histogram: Dict[int, int] = {}
        for count in self._refcounts.values():
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    # ----------------------------------------------------------- reclamation

    def reclaim(self, retained_versions: Sequence[int]) -> List[int]:
        """Free deferred blocks not pinned by any retained snapshot version.

        Parameters
        ----------
        retained_versions:
            Sorted or unsorted collection of CP numbers that are still
            reachable (retained snapshots plus the current live CP).  A
            deferred block with lifetime ``[first_cp, last_cp)`` is pinned if
            any retained version ``v`` satisfies ``first_cp <= v < last_cp``.

        Returns
        -------
        The list of block numbers returned to the free pool.
        """
        retained = sorted(set(retained_versions))
        still_deferred: List[_DeferredFree] = []
        reclaimed: List[int] = []
        for entry in self._deferred:
            if _any_in_range(retained, entry.first_cp, entry.last_cp):
                still_deferred.append(entry)
            else:
                reclaimed.append(entry.block)
        self._deferred = still_deferred
        if reclaimed:
            self._free.extend(reclaimed)
            self._free.sort(reverse=True)
            self.stats.reclaimed += len(reclaimed)
        return sorted(reclaimed)


def _any_in_range(sorted_versions: Sequence[int], start: int, stop: int) -> bool:
    """Binary search: does any retained version fall in ``[start, stop)``?"""
    lo, hi = 0, len(sorted_versions)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_versions[mid] < start:
            lo = mid + 1
        else:
            hi = mid
    return lo < len(sorted_versions) and sorted_versions[lo] < stop
