"""An LRU page cache in front of the storage backend.

The paper's query-performance experiments (Figures 9 and 10) use a 32 MB
cache in addition to the memory consumed by the write stores and Bloom
filters, and clear it before every query batch to report worst-case numbers.
This module provides that cache: it sits between the query engine and the
read-store page files, absorbing repeated reads of the same page during a
sorted query run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.fsim.blockdev import PAGE_SIZE, PageFile

__all__ = ["CacheStats", "PageCache"]


@dataclass
class CacheStats:
    """Hit/miss counters for a :class:`PageCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PageCache:
    """A least-recently-used cache of (file name, page index) -> page bytes.

    Parameters
    ----------
    capacity_bytes:
        Maximum amount of page data retained; the paper's evaluation uses
        32 MB.  A capacity of 0 disables caching entirely (every read goes to
        the backend), which is occasionally useful in benchmarks.

    The cache is thread-safe: the maintenance executor's workers read their
    partitions' run pages through the one shared cache, and both the LRU
    order (``move_to_end``) and the eviction loop are multi-step mutations
    that corrupt the ``OrderedDict`` if interleaved.  One lock guards every
    dict mutation, but it is *released* around the backend read on a miss --
    the miss is the device I/O the parallel compaction exists to overlap,
    and holding a cache-global lock across it would serialise every
    worker's read phase.  Two workers racing on the *same* page may both
    read it from the backend (each counted as a miss); in practice workers
    compact disjoint partitions and therefore touch disjoint files, so the
    race never materialises.
    """

    def __init__(self, capacity_bytes: int = 32 * 1024 * 1024) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._entries: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        # Per-file index of cached page numbers, so invalidating a file is
        # O(pages invalidated) instead of a scan over the whole cache.
        self._file_pages: Dict[str, Set[int]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return len(self._entries) * PAGE_SIZE

    def read_page(self, page_file: PageFile, index: int) -> bytes:
        """Read a page through the cache."""
        key = (page_file.name, index)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        # Miss: fetch outside the lock so concurrent workers overlap their
        # device reads instead of queueing on the cache.
        data = page_file.read_page(index)
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                # Another thread cached the page while we read it; serve the
                # cached copy so eviction accounting stays consistent.
                self._entries.move_to_end(key)
                return raced
            self._insert(key, data)
        return data

    def peek(self, name: str, index: int) -> Optional[bytes]:
        """Return a cached page without touching LRU order (testing hook)."""
        with self._lock:
            return self._entries.get((name, index))

    def invalidate_file(self, name: str) -> None:
        """Drop every cached page belonging to ``name``.

        Called when compaction deletes a read-store run so stale pages cannot
        be served for a recreated file of the same name.  The per-file page
        index makes this O(pages invalidated); compaction cleanup no longer
        scans the whole cache once per deleted run.
        """
        with self._lock:
            pages = self._file_pages.pop(name, None)
            if not pages:
                return
            entries = self._entries
            for index in pages:
                del entries[(name, index)]

    def clear(self) -> None:
        """Drop the entire cache contents (used before query benchmarks).

        Statistics are deliberately preserved -- benchmarks clear the cache
        between batches but report hit ratios across them; use
        ``stats.reset()`` to zero the counters.
        """
        with self._lock:
            self._entries.clear()
            self._file_pages.clear()

    def _insert(self, key: Tuple[str, int], data: bytes) -> None:
        # Caller holds self._lock.
        if self.capacity_pages == 0:
            return
        self._entries[key] = data
        self._entries.move_to_end(key)
        self._file_pages.setdefault(key[0], set()).add(key[1])
        while len(self._entries) > self.capacity_pages:
            evicted_key, _ = self._entries.popitem(last=False)
            pages = self._file_pages.get(evicted_key[0])
            if pages is not None:
                pages.discard(evicted_key[1])
                if not pages:
                    del self._file_pages[evicted_key[0]]
            self.stats.evictions += 1
