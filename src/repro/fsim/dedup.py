"""Block-level deduplication emulation.

The paper's simulator exposes two knobs (§5): the percentage of newly written
blocks that duplicate existing blocks, and the distribution of how those
duplicates are shared.  With the configuration used in the evaluation (10 %
duplicates, sharing skewed towards lightly shared blocks) the resulting file
system has roughly 75-78 % of blocks with reference count 1, 18 % with count
2, 5 % with count 3, and a rapidly decaying tail.

The emulation never looks at data contents (the simulator stores none); it
simply decides, for each newly written block, whether the write is served by
adding a reference to some existing shared block instead of allocating a new
one, and if so, which block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["DedupConfig", "DedupEngine"]


@dataclass(frozen=True)
class DedupConfig:
    """Parameters of the deduplication emulation.

    Attributes
    ----------
    duplicate_fraction:
        Probability that a newly written block is a duplicate of an existing
        block (the paper uses 0.10).
    sharing_decay:
        Geometric decay of the sharing distribution: a duplicate reuses a
        block that already has ``k`` extra references with probability
        proportional to ``sharing_decay ** k``.  Smaller values concentrate
        sharing on lightly shared blocks, which is what produces the paper's
        75/18/5 refcount histogram.
    pool_size:
        Number of recently written shareable blocks the engine keeps as
        dedup candidates.  Bounding the pool keeps candidate selection O(1)
        and mimics a fingerprint index with finite reach.
    """

    duplicate_fraction: float = 0.10
    sharing_decay: float = 0.28
    pool_size: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1]")
        if not 0.0 < self.sharing_decay < 1.0:
            raise ValueError("sharing_decay must be in (0, 1)")
        if self.pool_size <= 0:
            raise ValueError("pool_size must be positive")


class DedupEngine:
    """Decides whether a block write deduplicates against an existing block."""

    def __init__(self, config: Optional[DedupConfig] = None, seed: int = 17) -> None:
        self.config = config or DedupConfig()
        self._rng = random.Random(seed)
        # The candidate pool is a list of (physical block, extra reference
        # count) pairs; index 0 in each bucket is unused -- we bucket by the
        # number of duplicate references already taken against the block.
        self._pool: List[List[int]] = [[] for _ in range(8)]
        self._pool_population = 0
        self.duplicates_served = 0
        self.blocks_observed = 0

    def observe_new_block(self, physical_block: int) -> None:
        """Register a freshly allocated block as a future dedup candidate."""
        self.blocks_observed += 1
        bucket = self._pool[0]
        bucket.append(physical_block)
        self._pool_population += 1
        if self._pool_population > self.config.pool_size:
            self._evict_one()

    def forget_block(self, physical_block: int) -> None:
        """Remove a block from the candidate pool (it was freed).

        The pool is bounded and approximate, so a block may simply not be
        present; that is not an error.
        """
        for bucket in self._pool:
            try:
                bucket.remove(physical_block)
            except ValueError:
                continue
            self._pool_population -= 1
            return

    def maybe_duplicate(self) -> Optional[int]:
        """Return an existing block to share, or ``None`` to allocate fresh.

        When a block is returned, the engine records that the block has one
        more sharer, shifting it to a higher bucket so that the sharing
        distribution decays geometrically.
        """
        if self._pool_population == 0:
            return None
        if self._rng.random() >= self.config.duplicate_fraction:
            return None
        bucket_index = self._choose_bucket()
        if bucket_index is None:
            return None
        bucket = self._pool[bucket_index]
        position = self._rng.randrange(len(bucket))
        block = bucket.pop(position)
        # Promote the block to the next sharing level (or drop it from the
        # pool if it is already maximally shared for our purposes).
        if bucket_index + 1 < len(self._pool):
            self._pool[bucket_index + 1].append(block)
        else:
            self._pool_population -= 1
        self.duplicates_served += 1
        return block

    # ------------------------------------------------------------------ misc

    @property
    def duplicate_rate(self) -> float:
        """Observed fraction of writes served by deduplication."""
        total = self.blocks_observed + self.duplicates_served
        if total == 0:
            return 0.0
        return self.duplicates_served / total

    def _choose_bucket(self) -> Optional[int]:
        decay = self.config.sharing_decay
        weights = []
        for level, bucket in enumerate(self._pool):
            if bucket:
                weights.append((level, len(bucket) * (decay ** level)))
        if not weights:
            return None
        total = sum(w for _, w in weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        for level, weight in weights:
            cumulative += weight
            if pick <= cumulative:
                return level
        return weights[-1][0]

    def _evict_one(self) -> None:
        """Evict the oldest level-0 candidate (or any candidate if none)."""
        for bucket in self._pool:
            if bucket:
                bucket.pop(0)
                self._pool_population -= 1
                return
