"""Deterministic storage fault injection for resilience testing.

Real devices do not fail the way a simulated crash does -- all at once and
forever.  They fail with *transient* read/write errors that succeed on retry,
*torn* page writes that persist only a prefix of the sector, ``ENOSPC`` once
the device fills, silent *bit rot* that corrupts data at rest, and latency
spikes that stall a single operation.  :class:`FaultyBackend` wraps any
:class:`~repro.fsim.blockdev.StorageBackend` and injects exactly those
failure classes from a deterministic, seed-driven schedule
(:class:`FaultPlan`), recording every injected fault in a :class:`FaultStats`
ledger so tests can assert precisely which faults fired.

Determinism: all random draws come from one ``random.Random(plan.seed)``
consumed under a lock, in a fixed order per page operation, so a given seed
and a given (single-threaded) operation sequence always produce the same
fault schedule.  Latency spikes call an injectable ``clock`` callable --
tests pass a recording stub instead of ``time.sleep``, so no test ever
really sleeps.

The taxonomy maps onto the reaction layers this package provides:

=================  =========================  ==============================
fault              exception / effect         absorbed by
=================  =========================  ==============================
transient read     ``TransientIOError``       retry (``RetryPolicy``)
transient write    ``TransientIOError``       retry (``RetryPolicy``)
torn page write    ``TornWriteError`` after   flush/compaction atomicity +
                   persisting a prefix        recovery (partial run invalid)
device full        ``OSError(ENOSPC)``        atomic CP failure; caller
                                              frees space and retries
bit flip           none (silent)              page CRC32 -> quarantine
latency spike      ``clock(seconds)`` call    nothing to absorb; measured
=================  =========================  ==============================
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fsim.blockdev import PAGE_SIZE, PageFile, StorageBackend

__all__ = [
    "FaultPlan",
    "FaultStats",
    "FaultEvent",
    "FaultyBackend",
    "TransientIOError",
    "TornWriteError",
    "is_transient_fault",
]


class TransientIOError(IOError):
    """A read or write failure that heals itself: retrying succeeds."""


class TornWriteError(IOError):
    """A page write persisted only a prefix of the page (power cut mid-sector).

    Unlike :class:`TransientIOError` this is *not* retryable: the partial
    page is already on the device, so the only safe reaction is to fail the
    enclosing batch atomically and let recovery discard the damaged file.
    """


def is_transient_fault(error: BaseException) -> bool:
    """Whether ``error`` is worth retrying (the default retry classifier).

    Transient I/O errors and the retryable ``errno`` family (``EINTR``,
    ``EAGAIN``, ``EIO``) qualify; torn writes, ``ENOSPC`` and everything
    else (including simulated crashes) do not.
    """
    if isinstance(error, TornWriteError):
        return False
    if isinstance(error, TransientIOError):
        return True
    if isinstance(error, OSError):
        return error.errno in (errno.EINTR, errno.EAGAIN, errno.EIO)
    return False


@dataclass(frozen=True)
class FaultPlan:
    """A seed-driven fault schedule.

    Rates are per page operation (one random draw each); ``0.0`` disables a
    fault class entirely.  ``transient_attempts`` is how many consecutive
    attempts of the *same* operation fail before it heals -- ``1`` means a
    single retry succeeds.  ``enospc_after_pages`` counts successful page
    writes before the device reports full (``None`` = never).
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    transient_attempts: int = 1
    torn_write_rate: float = 0.0
    bit_flip_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.001
    enospc_after_pages: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "write_error_rate", "torn_write_rate",
                     "bit_flip_rate", "latency_spike_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.transient_attempts < 1:
            raise ValueError("transient_attempts must be >= 1")
        if self.latency_spike_s < 0:
            raise ValueError("latency_spike_s must be >= 0")
        if self.enospc_after_pages is not None and self.enospc_after_pages < 0:
            raise ValueError("enospc_after_pages must be >= 0 or None")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happened, to which page of which file."""

    kind: str  # transient_read | transient_write | torn_write | enospc | bit_flip | latency_spike
    file: str
    page: int


_COUNTERS = {
    "transient_read": "transient_read_errors",
    "transient_write": "transient_write_errors",
    "torn_write": "torn_writes",
    "enospc": "enospc_errors",
    "bit_flip": "bit_flips",
    "latency_spike": "latency_spikes",
}


@dataclass
class FaultStats:
    """Ledger of every fault the backend injected, per class and in order."""

    transient_read_errors: int = 0
    transient_write_errors: int = 0
    torn_writes: int = 0
    enospc_errors: int = 0
    bit_flips: int = 0
    latency_spikes: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.events)


class FaultyBackend(StorageBackend):
    """Wraps a backend, injecting faults per a deterministic :class:`FaultPlan`.

    Set :attr:`armed` to ``False`` (or call :meth:`disarm`) to pass every
    operation through untouched -- chaos tests disarm the backend during the
    recovery/verification phase so assertions exercise the *database's*
    reaction to the faults that already fired, not fresh ones.
    """

    def __init__(self, inner: StorageBackend, plan: FaultPlan = FaultPlan(),
                 clock: Callable[[float], None] = time.sleep) -> None:
        super().__init__(device=inner.device)
        self.inner = inner
        self.stats = inner.stats  # share I/O accounting with the wrapped backend
        self.plan = plan
        self.clock = clock
        self.fault_stats = FaultStats()
        self.armed = True
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        # (op, file, page) -> remaining consecutive failures before healing.
        self._healing: Dict[Tuple[str, str, int], int] = {}
        self._pages_until_full = plan.enospc_after_pages

    # --------------------------------------------------------------- control

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def free_space(self, pages: Optional[int] = None) -> None:
        """Clear (or re-arm with ``pages``) the ENOSPC countdown."""
        with self._lock:
            self._pages_until_full = pages

    def corrupt_page(self, name: str, page_index: int, bit: int = 0) -> None:
        """Flip one bit of a stored page in place: silent bit rot at rest.

        Unlike the scheduled ``bit_flip_rate`` (which corrupts pages as they
        are written), this targets data that was written correctly -- the
        checksum-scrub and quarantine paths are exercised the same way.
        """
        page_file = self.inner.open(name)
        data = bytearray(page_file.read_page(page_index))
        data[bit // 8] ^= 1 << (bit % 8)
        self._overwrite_page(name, page_index, bytes(data))
        with self._lock:
            self._count("bit_flip", name, page_index)

    # --------------------------------------------------------- backend API

    def create(self, name: str) -> PageFile:
        return _FaultyPageFile(self, self.inner.create(name))

    def open(self, name: str) -> PageFile:
        return _FaultyPageFile(self, self.inner.open(name))

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list_files(self) -> List[str]:
        return self.inner.list_files()

    # ------------------------------------------------------- fault decisions

    def _count(self, kind: str, name: str, page: int) -> None:
        """Record one fault; caller holds ``self._lock``."""
        counter = _COUNTERS[kind]
        setattr(self.fault_stats, counter, getattr(self.fault_stats, counter) + 1)
        self.fault_stats.events.append(FaultEvent(kind, name, page))

    def _consume_healing(self, key: Tuple[str, str, int]) -> bool:
        """True if ``key`` still owes a scheduled consecutive failure."""
        pending = self._healing.get(key)
        if pending is None:
            return False
        if pending > 1:
            self._healing[key] = pending - 1
        else:
            del self._healing[key]
        return True

    def _transient(self, op: str, key: Tuple[str, str, int]) -> TransientIOError:
        if self.plan.transient_attempts > 1:
            self._healing[key] = self.plan.transient_attempts - 1
        self._count(f"transient_{op}", key[1], key[2])
        return TransientIOError(
            errno.EIO, f"injected transient {op} fault: {key[1]} page {key[2]}")

    def _before_read(self, name: str, index: int) -> None:
        plan = self.plan
        spike = False
        error: Optional[BaseException] = None
        with self._lock:
            if not self.armed:
                return
            key = ("read", name, index)
            if self._consume_healing(key):
                self._count("transient_read", name, index)
                error = TransientIOError(
                    errno.EIO, f"injected transient read fault: {name} page {index}")
            else:
                if plan.latency_spike_rate and self._rng.random() < plan.latency_spike_rate:
                    self._count("latency_spike", name, index)
                    spike = True
                if plan.read_error_rate and self._rng.random() < plan.read_error_rate:
                    error = self._transient("read", key)
        # A stalled operation stalls even when it then fails -- and the clock
        # runs outside the lock, so concurrent workers never serialize on it.
        if spike:
            self.clock(plan.latency_spike_s)
        if error is not None:
            raise error

    def _before_write(self, name: str, index: int,
                      data: bytes) -> Tuple[Optional[int], Optional[bytes]]:
        """Decide the fate of one page write.

        Returns ``(torn_prefix, mutated_data)``: a torn prefix length when
        the write must persist only that many bytes and then fail, and/or a
        bit-flipped replacement payload for silent corruption.  Raises for
        transient faults and ``ENOSPC``.
        """
        plan = self.plan
        spike = False
        error: Optional[BaseException] = None
        torn_prefix: Optional[int] = None
        mutated: Optional[bytes] = None
        with self._lock:
            if not self.armed:
                return None, None
            if self._pages_until_full is not None and self._pages_until_full <= 0:
                self._count("enospc", name, index)
                raise OSError(errno.ENOSPC, f"injected device full: {name} page {index}")
            key = ("write", name, index)
            if self._consume_healing(key):
                self._count("transient_write", name, index)
                error = TransientIOError(
                    errno.EIO, f"injected transient write fault: {name} page {index}")
            else:
                if plan.latency_spike_rate and self._rng.random() < plan.latency_spike_rate:
                    self._count("latency_spike", name, index)
                    spike = True
                if plan.write_error_rate and self._rng.random() < plan.write_error_rate:
                    error = self._transient("write", key)
                else:
                    if plan.torn_write_rate and self._rng.random() < plan.torn_write_rate:
                        self._count("torn_write", name, index)
                        torn_prefix = self._rng.randrange(1, PAGE_SIZE)
                    elif plan.bit_flip_rate and self._rng.random() < plan.bit_flip_rate:
                        self._count("bit_flip", name, index)
                        flip = self._rng.randrange(len(data) * 8)
                        flipped = bytearray(data)
                        flipped[flip // 8] ^= 1 << (flip % 8)
                        mutated = bytes(flipped)
                    if self._pages_until_full is not None:
                        self._pages_until_full -= 1
        # A stalled operation stalls even when it then fails -- and the clock
        # runs outside the lock, so concurrent workers never serialize on it.
        if spike:
            self.clock(plan.latency_spike_s)
        if error is not None:
            raise error
        return torn_prefix, mutated

    # ------------------------------------------------------------ internals

    def _overwrite_page(self, name: str, page_index: int, data: bytes) -> None:
        """In-place page overwrite on the inner backend (for bit rot at rest)."""
        overwrite = getattr(self.inner, "overwrite_page", None)
        if overwrite is not None:  # DiskBackend / DiskImageBackend
            overwrite(name, page_index, data)
            return
        files = getattr(self.inner, "_files", None)
        if files is not None and name in files:  # MemoryBackend
            files[name][page_index] = data
            return
        path_for = getattr(self.inner, "_path", None)
        if path_for is not None:  # DiskBackend
            with open(path_for(name), "r+b") as handle:
                handle.seek(page_index * PAGE_SIZE)
                handle.write(data)
            return
        raise NotImplementedError(
            f"corrupt_page does not know how to rewrite pages of "
            f"{type(self.inner).__name__}")


class _FaultyPageFile(PageFile):
    """Delegates to the wrapped backend's page file, consulting the plan."""

    def __init__(self, backend: FaultyBackend, inner: PageFile) -> None:
        super().__init__(backend, inner.name)
        self._inner = inner

    def _append(self, data: bytes) -> int:
        backend: FaultyBackend = self._backend
        index = self._inner.num_pages
        torn_prefix, mutated = backend._before_write(self.name, index, data)
        if torn_prefix is not None:
            # Persist the prefix the device managed before the power cut;
            # the rest of the sector reads back as zeros.
            self._inner._append(data[:torn_prefix] + b"\x00" * (len(data) - torn_prefix))
            raise TornWriteError(
                errno.EIO,
                f"injected torn write: {self.name} page {index} kept {torn_prefix} bytes")
        if mutated is not None:
            data = mutated
        return self._inner._append(data)

    def _read(self, index: int) -> bytes:
        self._backend._before_read(self.name, index)
        return self._inner._read(index)

    def _num_pages(self) -> int:
        return self._inner._num_pages()
