"""The naive conceptual-table baseline (§4.1).

The straightforward way to maintain back references is a single on-disk table
of ``(block, inode, offset, line, from, to)`` records indexed by physical
block number, updated synchronously:

* block allocation inserts a record with ``to = INFINITY``,
* block deallocation finds the live record and overwrites its ``to`` field --
  a read-modify-write of the on-disk table,
* reallocation does both.

The paper reports that a prototype of this design "slowed the file system to
a crawl after only a few hundred consistency points".  This module implements
the design faithfully enough to reproduce that behaviour: records live in a
paged, sorted on-disk table (a simple B-tree with an in-memory leaf
directory, as a real implementation would cache its index nodes), and every
allocation and deallocation reads and rewrites the affected leaf page
immediately.  Because the host file system is write-anywhere, a rewritten
page is appended rather than updated in place, so the table file also grows
without bound until it is compacted.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.records import CombinedRecord, INFINITY
from repro.fsim.blockdev import MemoryBackend, PAGE_SIZE, StorageBackend
from repro.fsim.filesystem import ReferenceListener

__all__ = ["NaiveStats", "NaiveBackReferences"]

#: Records per leaf page: 48-byte combined records in a 4 KB page.
_RECORDS_PER_PAGE = (PAGE_SIZE - 8) // 48


@dataclass
class NaiveStats:
    """Counters for the naive baseline."""

    references_added: int = 0
    references_removed: int = 0
    pages_read: int = 0
    pages_written: int = 0
    update_seconds: float = 0.0

    @property
    def block_ops(self) -> int:
        return self.references_added + self.references_removed

    @property
    def writes_per_block_op(self) -> float:
        if self.block_ops == 0:
            return 0.0
        return self.pages_written / self.block_ops

    @property
    def reads_per_block_op(self) -> float:
        if self.block_ops == 0:
            return 0.0
        return self.pages_read / self.block_ops

    @property
    def microseconds_per_block_op(self) -> float:
        if self.block_ops == 0:
            return 0.0
        return self.update_seconds * 1e6 / self.block_ops


class _Leaf:
    """One leaf of the naive table: a sorted list of Combined records."""

    __slots__ = ("records", "page_index")

    def __init__(self) -> None:
        self.records: List[CombinedRecord] = []
        self.page_index: Optional[int] = None  # current on-disk location


class NaiveBackReferences(ReferenceListener):
    """A synchronously updated, single-table back-reference store.

    The implementation keeps leaf contents in memory for simplicity but
    charges the I/O a real implementation would perform: one page read and
    one page write per record mutation (plus an extra write when a leaf
    splits).  Those charges go to the supplied storage backend so the same
    accounting used for Backlog applies here.
    """

    def __init__(self, backend: Optional[StorageBackend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self._file = self.backend.create("naive/conceptual_table")
        self._leaves: List[_Leaf] = [_Leaf()]
        self._leaf_min_keys: List[Tuple[int, int, int, int, int]] = [(0, 0, 0, 0, 0)]
        self.stats = NaiveStats()

    # ---------------------------------------------------- listener interface

    def on_reference_added(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Insert a live record; read-modify-write of the owning leaf."""
        start = time.perf_counter()
        self.stats.references_added += 1
        record = CombinedRecord(block, inode, offset, line, cp, INFINITY)
        leaf_index = self._locate_leaf(record.sort_key()[:5])
        self._charge_leaf_read(leaf_index)
        leaf = self._leaves[leaf_index]
        bisect.insort(leaf.records, record, key=CombinedRecord.sort_key)
        if len(leaf.records) > _RECORDS_PER_PAGE:
            self._split_leaf(leaf_index)
        else:
            self._rewrite_leaf(leaf_index)
        self.stats.update_seconds += time.perf_counter() - start

    def on_reference_removed(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Find the live record for this reference and set its ``to`` field."""
        start = time.perf_counter()
        self.stats.references_removed += 1
        target_key = (block, inode, offset, line)
        leaf_index = self._locate_leaf((block, inode, offset, line, 0))
        self._charge_leaf_read(leaf_index)
        leaf = self._leaves[leaf_index]
        for position, record in enumerate(leaf.records):
            if record.key == target_key and record.is_live:
                leaf.records[position] = record._replace(to_cp=cp)
                break
        self._rewrite_leaf(leaf_index)
        self.stats.update_seconds += time.perf_counter() - start

    def on_consistency_point(self, cp: int) -> None:
        """Nothing to flush: every update already went to disk synchronously."""

    def on_clone_created(self, new_line: int, parent_line: int, parent_version: int, cp: int) -> None:
        """The naive design has no structural inheritance: clone records are copied.

        This is exactly the mass duplication §4.2.2 warns about; it is
        implemented (rather than skipped) so that benchmarks can demonstrate
        its cost.
        """
        start = time.perf_counter()
        copies: List[CombinedRecord] = []
        for leaf in self._leaves:
            for record in leaf.records:
                if record.line == parent_line and record.covers_version(parent_version):
                    copies.append(record._replace(line=new_line, from_cp=0, to_cp=INFINITY))
        for record in copies:
            leaf_index = self._locate_leaf(record.sort_key()[:5])
            self._charge_leaf_read(leaf_index)
            leaf = self._leaves[leaf_index]
            bisect.insort(leaf.records, record, key=CombinedRecord.sort_key)
            if len(leaf.records) > _RECORDS_PER_PAGE:
                self._split_leaf(leaf_index)
            else:
                self._rewrite_leaf(leaf_index)
        self.stats.update_seconds += time.perf_counter() - start

    def on_snapshot_deleted(self, line: int, version: int, is_zombie: bool, cp: int) -> None:
        """Snapshot deletion is handled lazily (masking), as in Backlog."""

    # --------------------------------------------------------------- queries

    def query(self, block: int) -> List[CombinedRecord]:
        """All records for one physical block (reads the owning leaf)."""
        leaf_index = self._locate_leaf((block, 0, 0, 0, 0))
        self._charge_leaf_read(leaf_index)
        return [record for record in self._leaves[leaf_index].records if record.block == block]

    def record_count(self) -> int:
        return sum(len(leaf.records) for leaf in self._leaves)

    def table_size_bytes(self) -> int:
        """On-disk footprint, including superseded page versions."""
        return self._file.size_bytes

    # ------------------------------------------------------------ internals

    def _locate_leaf(self, key: Tuple[int, int, int, int, int]) -> int:
        index = bisect.bisect_right(self._leaf_min_keys, key) - 1
        return max(index, 0)

    def _charge_leaf_read(self, leaf_index: int) -> None:
        leaf = self._leaves[leaf_index]
        if leaf.page_index is not None:
            self._file.read_page(leaf.page_index)
            self.stats.pages_read += 1

    def _rewrite_leaf(self, leaf_index: int) -> None:
        # Write-anywhere: the new version of the page is appended.
        leaf = self._leaves[leaf_index]
        leaf.page_index = self._file.append_page(b"")
        self.stats.pages_written += 1

    def _split_leaf(self, leaf_index: int) -> None:
        leaf = self._leaves[leaf_index]
        middle = len(leaf.records) // 2
        new_leaf = _Leaf()
        new_leaf.records = leaf.records[middle:]
        leaf.records = leaf.records[:middle]
        self._leaves.insert(leaf_index + 1, new_leaf)
        self._leaf_min_keys.insert(
            leaf_index + 1, new_leaf.records[0].sort_key()[:5]
        )
        self._rewrite_leaf(leaf_index)
        self._rewrite_leaf(leaf_index + 1)
