"""btrfs-style native back references (the "Original" configuration).

btrfs stores back references inline with the extent allocation records in its
single, global, copy-on-write metadata B-tree (§7).  Updates accumulate in an
in-memory tree and are applied to the on-disk tree at transaction commit.
Compared with Backlog the important structural differences are:

* back references live next to the extent records, so committing them dirties
  the extent-tree leaves that hold the affected extents (read-modify-write of
  those leaves, amortised per transaction), rather than being appended as
  fresh sorted runs;
* back-reference records omit transaction ids, which makes inode
  copy-on-write (cloning) free but means a query must consult the file-system
  trees to recover version information (charged here as extra reads per
  query); and
* the design is tightly integrated with the btrfs metadata store, whereas
  Backlog only assumes a write-anywhere host.

This module models that design over the simulator's storage accounting so
that Table 1's three-way comparison (Base / Original / Backlog) can be
reproduced: per-operation CPU cost of maintaining the in-memory tree, plus
per-commit I/O proportional to the number of dirtied extent-tree leaves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsim.blockdev import MemoryBackend, PAGE_SIZE, StorageBackend
from repro.fsim.filesystem import ReferenceListener
from repro.util.rbtree import RedBlackTree

__all__ = ["BtrfsStats", "BtrfsStyleBackReferences"]

#: Extent-tree items per leaf: a btrfs extent item with one inline back
#: reference is roughly 70-80 bytes including the item header; a 4 KB leaf
#: with a ~100-byte header holds about 50 of them.
_ITEMS_PER_LEAF = 50


@dataclass
class BtrfsStats:
    """Counters for the btrfs-style baseline."""

    references_added: int = 0
    references_removed: int = 0
    pages_read: int = 0
    pages_written: int = 0
    update_seconds: float = 0.0
    commit_seconds: float = 0.0
    query_extra_reads: int = 0

    @property
    def block_ops(self) -> int:
        return self.references_added + self.references_removed

    @property
    def writes_per_block_op(self) -> float:
        if self.block_ops == 0:
            return 0.0
        return self.pages_written / self.block_ops

    @property
    def microseconds_per_block_op(self) -> float:
        if self.block_ops == 0:
            return 0.0
        return (self.update_seconds + self.commit_seconds) * 1e6 / self.block_ops


class BtrfsStyleBackReferences(ReferenceListener):
    """Reference-counted, extent-tree-resident back references.

    Each physical block's entry carries the set of ``(inode, offset, line)``
    owners and a reference count, mirroring a btrfs ``EXTENT_ITEM`` with
    inline ``EXTENT_DATA_REF`` items (without transaction ids).
    """

    def __init__(self, backend: Optional[StorageBackend] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self._file = self.backend.create("btrfs/extent_tree")
        #: The on-disk extent tree: block -> {(inode, offset, line): refcount}.
        self._extent_tree = RedBlackTree()
        #: Blocks whose extent items were modified in the current transaction.
        self._dirty_blocks: Set[int] = set()
        #: Leaf pages currently materialised on disk (block range -> page).
        self._leaf_count = 1
        self.stats = BtrfsStats()

    # ---------------------------------------------------- listener interface

    def on_reference_added(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Add (or bump) an inline back reference for ``block``."""
        start = time.perf_counter()
        self.stats.references_added += 1
        owners: Dict[Tuple[int, int, int], int] = self._extent_tree.get(block)
        if owners is None:
            owners = {}
            self._extent_tree.insert(block, owners)
        owner_key = (inode, offset, line)
        owners[owner_key] = owners.get(owner_key, 0) + 1
        self._dirty_blocks.add(block)
        self.stats.update_seconds += time.perf_counter() - start

    def on_reference_removed(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Drop (or decrement) an inline back reference for ``block``."""
        start = time.perf_counter()
        self.stats.references_removed += 1
        owners = self._extent_tree.get(block)
        if owners is not None:
            owner_key = (inode, offset, line)
            count = owners.get(owner_key, 0)
            if count <= 1:
                owners.pop(owner_key, None)
            else:
                owners[owner_key] = count - 1
            if not owners:
                self._extent_tree.pop(block, None)
        self._dirty_blocks.add(block)
        self.stats.update_seconds += time.perf_counter() - start

    def on_consistency_point(self, cp: int) -> None:
        """Transaction commit: rewrite every dirtied extent-tree leaf.

        The number of dirtied leaves is estimated from the number of distinct
        dirty blocks and the extent-tree fan-out; each dirty leaf costs one
        read (to COW it) and one write, plus a small charge for the interior
        nodes along the way (one extra write per 200 dirty leaves, reflecting
        the high fan-out of interior nodes).
        """
        start = time.perf_counter()
        if self._dirty_blocks:
            dirty_leaves = self._estimate_dirty_leaves()
            for _ in range(dirty_leaves):
                self.stats.pages_read += 1
                self._file.append_page(b"")
                self.stats.pages_written += 1
            interior = max(1, dirty_leaves // 200)
            for _ in range(interior):
                self._file.append_page(b"")
                self.stats.pages_written += 1
            self._dirty_blocks.clear()
        self.stats.commit_seconds += time.perf_counter() - start

    def on_clone_created(self, new_line: int, parent_line: int, parent_version: int, cp: int) -> None:
        """Free in btrfs: back references omit transaction ids (§7)."""

    def on_snapshot_deleted(self, line: int, version: int, is_zombie: bool, cp: int) -> None:
        """Handled by btrfs's own snapshot machinery; nothing to do here."""

    # --------------------------------------------------------------- queries

    def query(self, block: int) -> List[Tuple[int, int, int]]:
        """Owners of ``block``; charges the extent-tree leaf read plus the
        extra file-tree reads needed to recover version information."""
        owners = self._extent_tree.get(block, {})
        self.stats.pages_read += 1
        # Without transaction ids, establishing which snapshots a reference
        # belongs to requires walking the owning file trees (one additional
        # read per distinct owner, a deliberately charitable estimate).
        self.stats.query_extra_reads += max(0, len(owners) - 1)
        self.stats.pages_read += max(0, len(owners) - 1)
        return sorted(owners)

    def refcount(self, block: int) -> int:
        owners = self._extent_tree.get(block, {})
        return sum(owners.values())

    def record_count(self) -> int:
        return sum(len(owners) for _, owners in self._extent_tree.items())

    def table_size_bytes(self) -> int:
        """On-disk footprint of the extent tree including superseded pages."""
        return self._file.size_bytes

    # ------------------------------------------------------------ internals

    def _estimate_dirty_leaves(self) -> int:
        """How many extent-tree leaves the dirty blocks span.

        Dirty blocks are grouped by their position in the (sorted) extent
        tree; blocks that fall into the same leaf share its rewrite cost,
        which is what makes large sequential writes cheap in btrfs.
        """
        if not self._dirty_blocks:
            return 0
        total_extents = max(len(self._extent_tree), 1)
        self._leaf_count = max(1, (total_extents + _ITEMS_PER_LEAF - 1) // _ITEMS_PER_LEAF)
        dirty_sorted = sorted(self._dirty_blocks)
        # Approximate each leaf as a contiguous range of _ITEMS_PER_LEAF
        # extents; count distinct leaves touched.
        leaves_touched = set()
        position = 0
        tree_blocks = None
        for block in dirty_sorted:
            # Rank of the block within the extent tree approximated by its
            # relative position among dirty + existing extents; exact ranking
            # would require order statistics, which the size-augmented
            # red-black tree could provide, but this estimate only has to be
            # monotone in locality.
            leaves_touched.add(block // (_ITEMS_PER_LEAF))
        return min(len(leaves_touched), self._leaf_count + len(leaves_touched) // 4)
