"""Brute-force block-ownership queries (the ext3 approach).

A file system without back references can still answer "who references block
``b``?" -- by traversing the entire file-system tree and testing every block
pointer against the target range, which is how ext3's ``resize2fs`` shrinks a
volume (§3).  The paper argues the I/O cost of this brute-force approach is
prohibitive for large file systems; this module implements it over the
simulator so that examples and benchmarks can quantify the gap against
Backlog queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.fsim.filesystem import FileSystem
from repro.fsim.inode import POINTERS_PER_INDIRECT_BLOCK

__all__ = ["BruteForceStats", "BruteForceQuerier"]


@dataclass
class BruteForceStats:
    """Counters for brute-force scans."""

    queries: int = 0
    pointers_examined: int = 0
    meta_pages_read: int = 0
    seconds: float = 0.0

    @property
    def seconds_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.seconds / self.queries


class BruteForceQuerier:
    """Answers ownership queries by walking every inode of every image.

    Each query visits the live volumes and all retained snapshots, examining
    every block pointer.  The number of metadata pages such a walk would read
    on a real system (one inode block plus the indirect blocks of each file)
    is charged to :attr:`stats` so the I/O gap versus Backlog can be
    reported, not just the CPU gap.
    """

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self.stats = BruteForceStats()

    def query_range(self, first_block: int, num_blocks: int) -> List[Tuple[int, int, int, int, int]]:
        """Owners of blocks in ``[first_block, first_block + num_blocks)``.

        Returns ``(block, inode, offset, line, version)`` tuples where
        ``version`` is the current CP for live references or the snapshot
        version for snapshot references.
        """
        start = time.perf_counter()
        stop = first_block + num_blocks
        results: List[Tuple[int, int, int, int, int]] = []

        current_cp = self.fs.global_cp
        for line, volume in sorted(self.fs.volumes.items()):
            for inode_number, inode in sorted(volume.inodes.items()):
                self.stats.meta_pages_read += 1 + (
                    inode.size_blocks + POINTERS_PER_INDIRECT_BLOCK - 1
                ) // POINTERS_PER_INDIRECT_BLOCK
                for offset, block in inode.iter_blocks():
                    self.stats.pointers_examined += 1
                    if first_block <= block < stop:
                        results.append((block, inode_number, offset, line, current_cp))

        for snapshot in self.fs.snapshots.all_snapshots():
            for inode_number, inode in sorted(snapshot.inodes.items()):
                self.stats.meta_pages_read += 1 + (
                    inode.size_blocks + POINTERS_PER_INDIRECT_BLOCK - 1
                ) // POINTERS_PER_INDIRECT_BLOCK
                for offset, block in inode.iter_blocks():
                    self.stats.pointers_examined += 1
                    if first_block <= block < stop:
                        results.append((block, inode_number, offset, snapshot.line, snapshot.version))

        self.stats.queries += 1
        self.stats.seconds += time.perf_counter() - start
        return sorted(results)

    def query_block(self, block: int) -> List[Tuple[int, int, int, int, int]]:
        """Owners of a single physical block."""
        return self.query_range(block, 1)

    def owners_summary(self, block: int) -> Dict[Tuple[int, int, int, int], Set[int]]:
        """Group results by owner: (block, inode, offset, line) -> versions."""
        grouped: Dict[Tuple[int, int, int, int], Set[int]] = {}
        for blk, inode, offset, line, version in self.query_block(block):
            grouped.setdefault((blk, inode, offset, line), set()).add(version)
        return grouped
