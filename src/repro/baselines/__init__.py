"""Baseline back-reference implementations used as comparison points.

The paper's evaluation compares Backlog against three alternatives, all of
which are implemented here over the same simulator substrate:

* :mod:`repro.baselines.naive` -- the conceptual single-table design of
  §4.1, which performs a read-modify-write of the on-disk table on every
  deallocation and "slows to a crawl after a few hundred consistency
  points";
* :mod:`repro.baselines.btrfs_refs` -- btrfs-style native back references
  embedded in a global, copy-on-write metadata B-tree (the "Original"
  configuration of Table 1); and
* :mod:`repro.baselines.brute_force` -- the ext3-style answer to a
  block-ownership query: walk the entire file system tree looking for
  pointers into the target range (§3).
"""

from repro.baselines.naive import NaiveBackReferences
from repro.baselines.btrfs_refs import BtrfsStyleBackReferences
from repro.baselines.brute_force import BruteForceQuerier

__all__ = [
    "NaiveBackReferences",
    "BtrfsStyleBackReferences",
    "BruteForceQuerier",
]
