"""Utility data structures shared across the Backlog reproduction.

This package contains small, dependency-free building blocks:

* :mod:`repro.util.rbtree` -- a left-leaning red-black tree used as the
  in-memory write store (the paper's btrfs port uses Linux red-black trees
  for the same purpose).
* :mod:`repro.util.intervals` -- helpers for working with half-open version
  ranges ``[from, to)`` used by back-reference records.
"""

from repro.util.rbtree import RedBlackTree
from repro.util.intervals import (
    INFINITY,
    VersionRange,
    intersect_ranges,
    merge_adjacent_ranges,
    subtract_versions,
)

__all__ = [
    "RedBlackTree",
    "INFINITY",
    "VersionRange",
    "intersect_ranges",
    "merge_adjacent_ranges",
    "subtract_versions",
]
