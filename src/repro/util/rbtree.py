"""A red-black tree with sorted and range iteration.

The Backlog write store buffers back-reference records between consistency
points and must support:

* O(log n) insert, delete and exact lookup,
* in-order iteration (so a read-store run can be built bottom-up without
  sorting), and
* range iteration from an arbitrary key (used by proactive pruning, which
  looks for a matching record with the same ``(block, inode, offset, line)``
  prefix and the current consistency-point number).

The paper's ``fsim`` prototype used a Berkeley DB in-memory B-tree and the
btrfs port used Linux red-black trees; this module provides the equivalent
structure in pure Python.  Keys may be any totally ordered values (the write
store uses tuples).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

__all__ = ["RedBlackTree"]

_RED = True
_BLACK = False


class _Node:
    """Internal tree node.  Not part of the public API."""

    __slots__ = ("key", "value", "left", "right", "color", "size")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.color = _RED
        self.size = 1


def _is_red(node: Optional[_Node]) -> bool:
    return node is not None and node.color is _RED


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


class RedBlackTree:
    """A left-leaning red-black binary search tree.

    The tree maps keys to values; inserting an existing key replaces its
    value.  Iteration yields ``(key, value)`` pairs in key order.

    Example
    -------
    >>> t = RedBlackTree()
    >>> t.insert((5, 'a'), 1)
    >>> t.insert((3, 'b'), 2)
    >>> [k for k, _ in t]
    [(3, 'b'), (5, 'a')]
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    # --------------------------------------------------------------- queries

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""
        node = self._find(key)
        return node.value if node is not None else default

    def __getitem__(self, key: Any) -> Any:
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        return node.value

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node
        return None

    def min_key(self) -> Any:
        """Return the smallest key in the tree.

        Raises ``KeyError`` if the tree is empty.
        """
        if self._root is None:
            raise KeyError("min_key() on an empty tree")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Any:
        """Return the largest key in the tree.

        Raises ``KeyError`` if the tree is empty.
        """
        if self._root is None:
            raise KeyError("max_key() on an empty tree")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def ceiling(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the smallest ``(key, value)`` pair with key >= ``key``.

        Returns ``None`` when every key in the tree is smaller than ``key``.
        """
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if node.key < key:
                node = node.right
            else:
                best = node
                node = node.left
        return (best.key, best.value) if best is not None else None

    def floor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the largest ``(key, value)`` pair with key <= ``key``.

        Returns ``None`` when every key in the tree is larger than ``key``.
        """
        node = self._root
        best: Optional[_Node] = None
        while node is not None:
            if key < node.key:
                node = node.left
            else:
                best = node
                node = node.right
        return (best.key, best.value) if best is not None else None

    # ------------------------------------------------------------- iteration

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return self.items()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs in ascending key order."""
        stack = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        """Yield keys in ascending order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Yield values in ascending key order."""
        for _, value in self.items():
            yield value

    def items_from(self, start: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with key >= ``start`` in order."""
        stack = []
        node = self._root
        while node is not None:
            if node.key < start:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            yield node.key, node.value
            node = node.right
            while node is not None:
                if node.key < start:
                    node = node.right
                else:
                    stack.append(node)
                    node = node.left

    def items_range(self, start: Any, stop: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield pairs with ``start <= key < stop`` in ascending order."""
        for key, value in self.items_from(start):
            if not (key < stop):
                return
            yield key, value

    # -------------------------------------------------------------- mutation

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` with ``value``, replacing any existing value."""
        self._root = self._insert(self._root, key, value)
        self._root.color = _BLACK

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def _insert(self, node: Optional[_Node], key: Any, value: Any) -> _Node:
        if node is None:
            return _Node(key, value)
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        elif node.key < key:
            node.right = self._insert(node.right, key, value)
        else:
            node.value = value
            return node
        return self._fix_up(node)

    def delete(self, key: Any) -> Any:
        """Delete ``key`` and return its value.

        Raises ``KeyError`` if the key is not present.
        """
        node = self._find(key)
        if node is None:
            raise KeyError(key)
        value = node.value
        if not _is_red(self._root.left) and not _is_red(self._root.right):
            self._root.color = _RED
        self._root = self._delete(self._root, key)
        if self._root is not None:
            self._root.color = _BLACK
        return value

    def __delitem__(self, key: Any) -> None:
        self.delete(key)

    def pop(self, key: Any, default: Any = ...) -> Any:
        """Delete ``key`` and return its value, or ``default`` if missing."""
        try:
            return self.delete(key)
        except KeyError:
            if default is ...:
                raise
            return default

    def clear(self) -> None:
        """Remove every entry from the tree."""
        self._root = None

    # ----------------------------------------------------- LLRB tree plumbing

    def _delete(self, node: _Node, key: Any) -> Optional[_Node]:
        if key < node.key:
            if not _is_red(node.left) and node.left is not None and not _is_red(node.left.left):
                node = self._move_red_left(node)
            node.left = self._delete(node.left, key)
        else:
            if _is_red(node.left):
                node = self._rotate_right(node)
            if not (key < node.key or node.key < key) and node.right is None:
                return None
            if (
                not _is_red(node.right)
                and node.right is not None
                and not _is_red(node.right.left)
            ):
                node = self._move_red_right(node)
            if not (key < node.key or node.key < key):
                successor = node.right
                while successor.left is not None:
                    successor = successor.left
                node.key = successor.key
                node.value = successor.value
                node.right = self._delete_min(node.right)
            else:
                node.right = self._delete(node.right, key)
        return self._fix_up(node)

    def _delete_min(self, node: _Node) -> Optional[_Node]:
        if node.left is None:
            return None
        if not _is_red(node.left) and not _is_red(node.left.left):
            node = self._move_red_left(node)
        node.left = self._delete_min(node.left)
        return self._fix_up(node)

    def _rotate_left(self, node: _Node) -> _Node:
        right = node.right
        node.right = right.left
        right.left = node
        right.color = node.color
        node.color = _RED
        right.size = node.size
        node.size = 1 + _size(node.left) + _size(node.right)
        return right

    def _rotate_right(self, node: _Node) -> _Node:
        left = node.left
        node.left = left.right
        left.right = node
        left.color = node.color
        node.color = _RED
        left.size = node.size
        node.size = 1 + _size(node.left) + _size(node.right)
        return left

    @staticmethod
    def _flip_colors(node: _Node) -> None:
        node.color = not node.color
        if node.left is not None:
            node.left.color = not node.left.color
        if node.right is not None:
            node.right.color = not node.right.color

    def _move_red_left(self, node: _Node) -> _Node:
        self._flip_colors(node)
        if node.right is not None and _is_red(node.right.left):
            node.right = self._rotate_right(node.right)
            node = self._rotate_left(node)
            self._flip_colors(node)
        return node

    def _move_red_right(self, node: _Node) -> _Node:
        self._flip_colors(node)
        if node.left is not None and _is_red(node.left.left):
            node = self._rotate_right(node)
            self._flip_colors(node)
        return node

    def _fix_up(self, node: _Node) -> _Node:
        if _is_red(node.right) and not _is_red(node.left):
            node = self._rotate_left(node)
        if _is_red(node.left) and _is_red(node.left.left):
            node = self._rotate_right(node)
        if _is_red(node.left) and _is_red(node.right):
            self._flip_colors(node)
        node.size = 1 + _size(node.left) + _size(node.right)
        return node

    # ---------------------------------------------------------- diagnostics

    def check_invariants(self) -> bool:
        """Validate red-black tree invariants.  Used by the test suite."""

        def check(node: Optional[_Node], lo: Any, hi: Any) -> int:
            if node is None:
                return 0
            if lo is not None and not (lo < node.key):
                raise AssertionError("BST order violated (left)")
            if hi is not None and not (node.key < hi):
                raise AssertionError("BST order violated (right)")
            if _is_red(node) and (_is_red(node.left) or _is_red(node.right)):
                raise AssertionError("red node with red child")
            if _is_red(node.right) and not _is_red(node.left):
                raise AssertionError("right-leaning red link")
            left_black = check(node.left, lo, node.key)
            right_black = check(node.right, node.key, hi)
            if left_black != right_black:
                raise AssertionError("unbalanced black height")
            if node.size != 1 + _size(node.left) + _size(node.right):
                raise AssertionError("size field out of date")
            return left_black + (0 if _is_red(node) else 1)

        if self._root is not None and _is_red(self._root):
            raise AssertionError("root must be black")
        check(self._root, None, None)
        return True
