"""Half-open version ranges used by back-reference records.

A back reference is valid over a range of global consistency-point numbers
``[from, to)``; ``to == INFINITY`` means the reference is still alive.  The
query path needs a handful of small operations on these ranges:

* intersecting a record's range with the set of *retained* snapshot versions
  (the "masking" step of §4.2.1),
* merging adjacent ranges produced by proactive pruning (a reference removed
  and re-added within the same consistency point becomes one range), and
* subtracting deleted versions from a range.

Ranges are represented as plain tuples so they can be embedded in record
namedtuples without overhead; ``VersionRange`` is a thin convenience wrapper
used by the public query results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "INFINITY",
    "VersionRange",
    "any_version_in",
    "intersect_ranges",
    "merge_adjacent_ranges",
    "subtract_versions",
]

#: Sentinel consistency-point number meaning "still alive".  Chosen so that it
#: compares greater than any realistic CP number and still packs into an
#: unsigned 64-bit field on disk.
INFINITY = 2**64 - 1


@dataclass(frozen=True, order=True)
class VersionRange:
    """A half-open range ``[start, stop)`` of global CP numbers."""

    start: int
    stop: int = INFINITY

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start must be non-negative, got {self.start}")
        if self.stop < self.start:
            raise ValueError(f"empty or inverted range [{self.start}, {self.stop})")

    @property
    def is_live(self) -> bool:
        """True when the range extends to the live file system."""
        return self.stop == INFINITY

    def __contains__(self, version: int) -> bool:
        return self.start <= version < self.stop

    def overlaps(self, other: "VersionRange") -> bool:
        """True when the two ranges share at least one version."""
        return self.start < other.stop and other.start < self.stop

    def intersection(self, other: "VersionRange") -> "VersionRange | None":
        """Return the overlapping sub-range, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if start >= stop:
            return None
        return VersionRange(start, stop)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.start, self.stop)


def intersect_ranges(
    ranges: Iterable[Tuple[int, int]], versions: Sequence[int]
) -> List[Tuple[int, int]]:
    """Restrict ``ranges`` to the given sorted set of retained ``versions``.

    Each input range ``[a, b)`` is replaced by the (possibly empty) list of
    maximal sub-ranges that contain at least one retained version.  This is
    the masking operation of §4.2.1: a back reference whose whole lifetime
    falls between two retained snapshots is not reported by queries.

    Parameters
    ----------
    ranges:
        Iterable of ``(from, to)`` half-open ranges.
    versions:
        Sorted sequence of retained CP numbers (snapshot versions plus the
        current CP for the live file system).

    Returns
    -------
    list of ``(from, to)`` ranges, clipped so that every returned range
    contains at least one retained version.
    """
    if not versions:
        return []
    result: List[Tuple[int, int]] = []
    for start, stop in ranges:
        # A range survives masking iff some retained version v satisfies
        # start <= v < stop.  We keep the original boundaries (the caller may
        # want to know the true allocation lifetime) but drop fully dead
        # ranges.
        if any_version_in(versions, start, stop):
            result.append((start, stop))
    return result


def any_version_in(versions: Sequence[int], start: int, stop: int) -> bool:
    """Binary search: is there a retained version v with start <= v < stop?

    The single-range masking primitive: the streaming query pipeline calls
    this once per record (via :func:`repro.core.masking.iter_mask_records`)
    instead of wrapping each record's range in a one-element list for
    :func:`intersect_ranges`.
    """
    lo, hi = 0, len(versions)
    while lo < hi:
        mid = (lo + hi) // 2
        if versions[mid] < start:
            lo = mid + 1
        else:
            hi = mid
    return lo < len(versions) and versions[lo] < stop


#: Backwards-compatible private alias (pre-cursor-API name).
_any_version_in = any_version_in


def merge_adjacent_ranges(ranges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge touching or overlapping ``(from, to)`` ranges.

    The input does not need to be sorted.  Used when a block reference is
    removed and immediately re-added (proactive pruning collapses the two
    records into one lifetime).
    """
    ordered = sorted(ranges)
    merged: List[Tuple[int, int]] = []
    for start, stop in ordered:
        if merged and start <= merged[-1][1]:
            prev_start, prev_stop = merged[-1]
            merged[-1] = (prev_start, max(prev_stop, stop))
        else:
            merged.append((start, stop))
    return merged


def subtract_versions(
    ranges: Iterable[Tuple[int, int]], deleted: Sequence[int]
) -> List[Tuple[int, int]]:
    """Remove individual ``deleted`` versions from half-open ranges.

    A range ``[a, b)`` from which version ``v`` is removed splits into
    ``[a, v)`` and ``[v + 1, b)`` (empty pieces are dropped).  Used by tests
    and by the compaction purge logic to reason about which part of a
    record's lifetime still matters.
    """
    deleted_sorted = sorted(set(deleted))
    result: List[Tuple[int, int]] = []
    for start, stop in ranges:
        pieces = [(start, stop)]
        for version in deleted_sorted:
            if version >= stop:
                break
            next_pieces: List[Tuple[int, int]] = []
            for a, b in pieces:
                if a <= version < b:
                    if a < version:
                        next_pieces.append((a, version))
                    if version + 1 < b:
                        next_pieces.append((version + 1, b))
                else:
                    next_pieces.append((a, b))
            pieces = next_pieces
        result.extend(pieces)
    return result
