"""Backlog: log-structured back references for write-anywhere file systems.

A reproduction of *"Tracking Back References in a Write-Anywhere File
System"* (Macko, Seltzer, Smith -- FAST 2010).  The package contains:

* :mod:`repro.core` -- the Backlog back-reference database (write stores,
  LSM/stepped-merge read stores, Bloom filters, compaction, structural
  inheritance, query engine),
* :mod:`repro.fsim` -- a write-anywhere file system simulator with snapshots,
  writable clones and deduplication,
* :mod:`repro.cluster` -- a coordinator/worker process cluster sharding the
  device's partitions across N worker processes behind the same Backlog
  surface,
* :mod:`repro.baselines` -- the comparison points used in the paper's
  evaluation (the naive conceptual table, btrfs-style native back
  references, brute-force tree traversal),
* :mod:`repro.workloads` -- synthetic, NFS-trace-like, microbenchmark and
  application-mix workload generators, and
* :mod:`repro.analysis` -- metric collection and table/figure formatting for
  the benchmark harness.

Quickstart
----------
>>> from repro import Backlog, FileSystem, SnapshotManagerAuthority
>>> backlog = Backlog()
>>> fs = FileSystem(listeners=[backlog])
>>> backlog.set_version_authority(SnapshotManagerAuthority(fs))
>>> inode = fs.create_file(num_blocks=4)
>>> fs.take_consistency_point()
1
>>> block = fs.volume().inodes[inode].physical_block(0)
>>> [(ref.inode, ref.offset) for ref in backlog.query(block)]
[(2, 0)]
"""

from repro.core import (
    Backlog,
    BacklogConfig,
    BacklogStats,
    BackReference,
    BloomFilter,
    Catalogue,
    CatalogueSnapshot,
    CloneGraph,
    CombinedRecord,
    CorruptPageError,
    DeletionVector,
    ExplicitVersionAuthority,
    AllVersionsAuthority,
    FromRecord,
    INFINITY,
    Partitioner,
    QueryResult,
    QuerySpec,
    RecordBlock,
    RetryPolicy,
    ScrubReport,
    SnapshotManagerAuthority,
    ToRecord,
    VersionAuthority,
    WriteStore,
    decode_resume_token,
    encode_resume_token,
    recover_backlog,
    scrub_backend,
    verify_backlog,
)
from repro.cluster import ShardedBacklog, ShardMap
from repro.server import QueryService
from repro.fsim import (
    DedupConfig,
    DiskBackend,
    DiskImageBackend,
    FaultPlan,
    FaultStats,
    FaultyBackend,
    FileSystem,
    FileSystemConfig,
    MemoryBackend,
    ReferenceListener,
    SnapshotPolicy,
    TornWriteError,
    TransientIOError,
)

__version__ = "0.7.0"

__all__ = [
    "AllVersionsAuthority",
    "Backlog",
    "BacklogConfig",
    "BacklogStats",
    "BackReference",
    "BloomFilter",
    "Catalogue",
    "CatalogueSnapshot",
    "CloneGraph",
    "CombinedRecord",
    "CorruptPageError",
    "DedupConfig",
    "DeletionVector",
    "DiskBackend",
    "DiskImageBackend",
    "ExplicitVersionAuthority",
    "FaultPlan",
    "FaultStats",
    "FaultyBackend",
    "FileSystem",
    "FileSystemConfig",
    "FromRecord",
    "INFINITY",
    "MemoryBackend",
    "Partitioner",
    "QueryResult",
    "QueryService",
    "QuerySpec",
    "RecordBlock",
    "ReferenceListener",
    "RetryPolicy",
    "ScrubReport",
    "ShardMap",
    "ShardedBacklog",
    "SnapshotManagerAuthority",
    "SnapshotPolicy",
    "ToRecord",
    "TornWriteError",
    "TransientIOError",
    "VersionAuthority",
    "WriteStore",
    "decode_resume_token",
    "encode_resume_token",
    "recover_backlog",
    "scrub_backend",
    "verify_backlog",
    "__version__",
]
