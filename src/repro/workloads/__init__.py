"""Workload generators and trace players for the benchmark harness.

Every experiment in the paper's evaluation is driven by one of four workload
families, all reproduced here:

* :mod:`repro.workloads.synthetic` -- the stochastic generator used for
  Figures 5 and 6 (high load: at least 32 000 block writes per consistency
  point, EECS03-like op mix, ~7 clones per 100 CPs);
* :mod:`repro.workloads.nfs_trace` -- an EECS03-like NFS trace synthesiser
  and player used for Figures 7 and 8;
* :mod:`repro.workloads.microbench` -- the 4 KB / 64 KB file create and
  delete microbenchmarks of Table 1; and
* :mod:`repro.workloads.apps` -- dbench-, FileBench /var/mail- and
  PostMark-like application op mixes, also for Table 1.
"""

from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig
from repro.workloads.nfs_trace import (
    NFSTraceConfig,
    NFSTracePlayer,
    TraceOp,
    generate_eecs03_like_trace,
)
from repro.workloads.microbench import MicrobenchResult, create_files, delete_files
from repro.workloads.apps import (
    AppWorkload,
    AppWorkloadConfig,
    dbench_like,
    postmark_like,
    varmail_like,
)

__all__ = [
    "AppWorkload",
    "AppWorkloadConfig",
    "MicrobenchResult",
    "NFSTraceConfig",
    "NFSTracePlayer",
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "TraceOp",
    "create_files",
    "delete_files",
    "dbench_like",
    "generate_eecs03_like_trace",
    "postmark_like",
    "varmail_like",
]
