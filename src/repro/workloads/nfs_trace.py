"""EECS03-like NFS trace synthesis and replay (§6.2.2).

The paper's second overhead experiment replays the first 16 days of the
EECS03 trace -- research activity in the home directories of a university CS
department -- against ``fsim`` with a consistency point every 10 seconds.
The trace itself is not redistributable, so this module synthesises a trace
with the characteristics the paper (and the trace's own publication) report:

* write-rich: roughly one write for every two reads,
* strong diurnal load variation with quiet nights and weekend dips,
* mostly small files in home directories,
* bursts of ``setattr`` operations (file truncation) during some busy hours,
  which is what produces the dip in time overhead between hours 200 and 250
  in Figure 7, and
* no clone activity (unlike the synthetic workload).

The player converts the per-hour operation stream into file-system calls and
takes consistency points at a fixed operation interval that stands in for the
10-second wall-clock trigger.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.fsim.filesystem import FileSystem

__all__ = ["TraceOp", "NFSTraceConfig", "HourSummary", "generate_eecs03_like_trace", "NFSTracePlayer"]


@dataclass(frozen=True)
class TraceOp:
    """One operation in a synthesised NFS trace."""

    hour: int
    kind: str          # "write", "read", "create", "remove", "truncate"
    file_hint: int     # stable pseudo-identifier for the target file
    blocks: int = 1    # payload size in 4 KB blocks (writes/creates)


@dataclass(frozen=True)
class NFSTraceConfig:
    """Shape parameters of the synthesised trace.

    ``hours`` defaults to a scaled-down 96 hours (4 days); the paper uses 16
    days.  ``base_ops_per_hour`` controls total intensity and is likewise
    scaled down for simulator speed -- the reported *per-operation* overheads
    do not depend on it.
    """

    seed: int = 2003
    hours: int = 96
    base_ops_per_hour: int = 4_000
    diurnal_amplitude: float = 0.75
    weekend_factor: float = 0.45
    write_fraction: float = 0.31          # writes among data ops (1 write : ~2 reads)
    create_fraction: float = 0.05
    remove_fraction: float = 0.04
    truncate_fraction: float = 0.03
    truncate_burst_hours: Tuple[int, int] = (50, 62)
    truncate_burst_fraction: float = 0.35
    working_set_files: int = 1_500
    small_file_blocks: Tuple[int, int] = (1, 12)
    large_file_fraction: float = 0.08
    large_file_blocks: Tuple[int, int] = (32, 128)

    def __post_init__(self) -> None:
        if self.hours <= 0 or self.base_ops_per_hour <= 0:
            raise ValueError("hours and base_ops_per_hour must be positive")


@dataclass
class HourSummary:
    """Per-hour statistics emitted by the trace player."""

    hour: int
    operations: int
    block_ops: int
    cps_taken: int


def _hour_intensity(config: NFSTraceConfig, hour: int, rng: random.Random) -> float:
    """Relative load factor for a given hour (diurnal + weekly + noise)."""
    hour_of_day = hour % 24
    day = hour // 24
    diurnal = 1.0 + config.diurnal_amplitude * math.sin((hour_of_day - 14) / 24.0 * 2.0 * math.pi)
    weekly = config.weekend_factor if day % 7 in (5, 6) else 1.0
    noise = rng.uniform(0.85, 1.15)
    return max(0.05, diurnal * weekly * noise)


def generate_eecs03_like_trace(config: Optional[NFSTraceConfig] = None) -> Iterator[TraceOp]:
    """Yield a deterministic stream of :class:`TraceOp` for the configured trace."""
    config = config or NFSTraceConfig()
    rng = random.Random(config.seed)
    for hour in range(config.hours):
        in_burst = config.truncate_burst_hours[0] <= hour < config.truncate_burst_hours[1]
        ops_this_hour = int(config.base_ops_per_hour * _hour_intensity(config, hour, rng))
        for _ in range(ops_this_hour):
            file_hint = rng.randrange(config.working_set_files)
            roll = rng.random()
            truncate_fraction = (
                config.truncate_burst_fraction if in_burst else config.truncate_fraction
            )
            if roll < config.create_fraction:
                kind = "create"
            elif roll < config.create_fraction + config.remove_fraction:
                kind = "remove"
            elif roll < config.create_fraction + config.remove_fraction + truncate_fraction:
                kind = "truncate"
            elif rng.random() < config.write_fraction:
                kind = "write"
            else:
                kind = "read"
            if rng.random() < config.large_file_fraction:
                blocks = rng.randint(*config.large_file_blocks)
            else:
                blocks = rng.randint(*config.small_file_blocks)
            yield TraceOp(hour=hour, kind=kind, file_hint=file_hint, blocks=blocks)


class NFSTracePlayer:
    """Replays a trace (synthetic or otherwise) against a file system."""

    def __init__(self, fs: FileSystem, ops_per_cp: int = 400, seed: int = 7) -> None:
        """``ops_per_cp`` stands in for the 10-second CP trigger of the paper."""
        if ops_per_cp <= 0:
            raise ValueError("ops_per_cp must be positive")
        self.fs = fs
        self.ops_per_cp = ops_per_cp
        self._rng = random.Random(seed)
        #: trace file_hint -> inode number of the backing simulator file.
        self._files: Dict[int, int] = {}

    def play(
        self,
        trace: Iterator[TraceOp],
        on_hour: Optional[Callable[[HourSummary, FileSystem], None]] = None,
    ) -> List[HourSummary]:
        """Apply every trace operation; returns the per-hour summaries.

        Consistency points are taken every ``ops_per_cp`` *block* operations
        and at each hour boundary (so that hourly snapshots exist, matching
        the retention policy of the evaluation).
        """
        summaries: List[HourSummary] = []
        current_hour: Optional[int] = None
        hour_ops = 0
        hour_block_ops_start = 0
        hour_cps_start = 0
        ops_since_cp_start = self.fs.counters.block_ops

        def close_hour() -> None:
            nonlocal hour_ops
            if current_hour is None:
                return
            self.fs.take_consistency_point()
            summary = HourSummary(
                hour=current_hour,
                operations=hour_ops,
                block_ops=self.fs.counters.block_ops - hour_block_ops_start,
                cps_taken=self.fs.counters.consistency_points - hour_cps_start,
            )
            summaries.append(summary)
            if on_hour is not None:
                on_hour(summary, self.fs)
            hour_ops = 0

        for op in trace:
            if current_hour is None or op.hour != current_hour:
                close_hour()
                current_hour = op.hour
                hour_block_ops_start = self.fs.counters.block_ops
                hour_cps_start = self.fs.counters.consistency_points
            self._apply(op)
            hour_ops += 1
            if self.fs.counters.block_ops - ops_since_cp_start >= self.ops_per_cp:
                self.fs.take_consistency_point()
                ops_since_cp_start = self.fs.counters.block_ops
        close_hour()
        return summaries

    # ------------------------------------------------------------ internals

    def _apply(self, op: TraceOp) -> None:
        fs = self.fs
        inode = self._files.get(op.file_hint)
        if op.kind == "create" or (inode is None and op.kind in ("write", "truncate")):
            if inode is not None:
                fs.delete_file(inode)
            self._files[op.file_hint] = fs.create_file(num_blocks=op.blocks)
            return
        if inode is None:
            if op.kind in ("read", "remove"):
                return
            inode = fs.create_file(num_blocks=op.blocks)
            self._files[op.file_hint] = inode
            return
        if op.kind == "write":
            size = fs.file_size(inode)
            offset = self._rng.randrange(max(1, size)) if size else 0
            fs.write(inode, offset, op.blocks)
        elif op.kind == "read":
            size = fs.file_size(inode)
            if size:
                fs.read(inode, self._rng.randrange(size), min(op.blocks, size))
        elif op.kind == "truncate":
            size = fs.file_size(inode)
            if size > 1:
                fs.truncate(inode, self._rng.randrange(size))
        elif op.kind == "remove":
            fs.delete_file(inode)
            del self._files[op.file_hint]
        else:
            raise ValueError(f"unknown trace op kind {op.kind!r}")
