"""The synthetic workload generator (§6.2.1).

The paper's synthetic workload submits write requests as fast as possible,
performing at least 32 000 block writes between consistency points.  The op
mix mirrors the rates observed in the EECS03 NFS trace: mostly small files
(90 %), a home-directory-like blend of creates, deletes, overwrites and
truncations, and -- unlike the trace -- writable clones created and deleted
at roughly 7 clones per 100 consistency points, which the authors describe
as a deliberately pessimistic amount of clone activity.

The generator drives a :class:`repro.fsim.FileSystem` directly and takes the
consistency points itself (the file system's automatic CP trigger is left
alone; callers normally disable it by setting a large ``ops_per_cp`` in the
file-system config or simply rely on the generator reaching its target
first).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fsim.filesystem import FileSystem

__all__ = [
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadResult",
    "SyntheticWorkload",
    "ZipfBlockPopularity",
]


class ZipfBlockPopularity:
    """A seeded Zipf-skewed popularity distribution over physical blocks.

    Real block-reference traffic is not uniform: a small set of blocks (hot
    metadata, shared extents that dedup multiplied, recently written files)
    absorbs most queries.  This sampler models that with the classic Zipf
    law -- the ``rank``-th most popular block has weight ``1 / rank**s`` --
    and two deliberate design points:

    * *Popularity rank is decoupled from block address.*  A seeded
      permutation maps ranks onto block numbers, so the hot set is scattered
      across the device (and hence across partitions and cluster shards)
      instead of clustering at block 0.  Skew therefore stresses load
      *imbalance*, not just one shard.
    * *Sampling is O(log n)* via a precomputed CDF and :func:`bisect.bisect`,
      so benchmark query loops spend their time querying, not sampling.

    >>> pop = ZipfBlockPopularity(num_blocks=1000, exponent=1.2, seed=7)
    >>> blocks = [pop.sample() for _ in range(200)]
    >>> all(0 <= b < 1000 for b in blocks)
    True
    >>> len(pop.hot_set(0.5)) < 100        # half the mass, few blocks
    True
    """

    def __init__(self, num_blocks: int, exponent: float = 1.1,
                 seed: int = 42) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if exponent <= 0.0:
            raise ValueError("exponent must be positive")
        self.num_blocks = num_blocks
        self.exponent = exponent
        self._rng = random.Random(seed)
        #: rank -> block: which physical block holds each popularity rank.
        self._blocks = list(range(num_blocks))
        self._rng.shuffle(self._blocks)
        weights = [1.0 / (rank ** exponent) for rank in range(1, num_blocks + 1)]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float round-off at the tail
        self._cdf = cumulative

    def sample(self) -> int:
        """One block number, drawn with Zipf-skewed popularity."""
        rank = bisect.bisect(self._cdf, self._rng.random())
        return self._blocks[min(rank, self.num_blocks - 1)]

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent draws (convenience for benchmark loops)."""
        return [self.sample() for _ in range(count)]

    def hot_set(self, mass: float) -> List[int]:
        """The smallest popularity prefix covering ``mass`` of the traffic.

        Useful for reporting skew: ``len(pop.hot_set(0.9)) / num_blocks``
        is the fraction of blocks absorbing 90 % of the queries.
        """
        if not 0.0 < mass <= 1.0:
            raise ValueError("mass must be in (0, 1]")
        cut = bisect.bisect_left(self._cdf, mass) + 1
        return self._blocks[:min(cut, self.num_blocks)]


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters of the synthetic workload.

    The defaults are scaled-down versions of the paper's configuration so
    that the pure-Python simulator finishes in reasonable time; the shape of
    the workload (op mix, file-size distribution, clone rate) is unchanged.
    Benchmarks that want the paper's full intensity can set ``ops_per_cp``
    to 32 000.
    """

    seed: int = 42
    num_cps: int = 100
    ops_per_cp: int = 2_000
    initial_files: int = 200
    small_file_fraction: float = 0.90
    small_file_blocks: Tuple[int, int] = (1, 16)
    large_file_blocks: Tuple[int, int] = (32, 256)
    #: Relative weights of the per-iteration operations, mirroring the
    #: create/delete/update mix observed in the EECS03 trace.
    create_weight: float = 0.15
    delete_weight: float = 0.10
    overwrite_weight: float = 0.55
    append_weight: float = 0.12
    truncate_weight: float = 0.08
    #: Clone churn: expected clones created per 100 consistency points.
    clones_per_100_cps: float = 7.0
    #: Probability that an existing clone is deleted at a CP boundary.
    clone_delete_probability: float = 0.03
    max_live_clones: int = 8

    def __post_init__(self) -> None:
        if self.num_cps <= 0 or self.ops_per_cp <= 0:
            raise ValueError("num_cps and ops_per_cp must be positive")
        if not 0.0 <= self.small_file_fraction <= 1.0:
            raise ValueError("small_file_fraction must be in [0, 1]")


@dataclass
class SyntheticWorkloadResult:
    """Aggregate outcome of a synthetic workload run."""

    cps_taken: int = 0
    block_ops: int = 0
    files_created: int = 0
    files_deleted: int = 0
    clones_created: int = 0
    clones_deleted: int = 0
    per_cp_block_ops: List[int] = field(default_factory=list)


class SyntheticWorkload:
    """Drives a file system with a stochastic, EECS03-like op mix."""

    def __init__(self, config: Optional[SyntheticWorkloadConfig] = None) -> None:
        self.config = config or SyntheticWorkloadConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ run

    def run(
        self,
        fs: FileSystem,
        num_cps: Optional[int] = None,
        on_cp: Optional[Callable[[int, FileSystem], None]] = None,
    ) -> SyntheticWorkloadResult:
        """Run the workload for ``num_cps`` consistency points.

        ``on_cp`` (if given) is called after every consistency point with the
        CP number and the file system; benchmarks use it to sample overhead
        and space statistics over time.
        """
        config = self.config
        cps = num_cps if num_cps is not None else config.num_cps
        result = SyntheticWorkloadResult()

        files = self._ensure_initial_files(fs, result)
        clones: List[int] = [line for line in fs.volumes if line != 0]

        for _ in range(cps):
            ops_start = fs.counters.block_ops
            while fs.counters.block_ops - ops_start < config.ops_per_cp:
                self._one_operation(fs, files, result)
            cp = fs.take_consistency_point()
            result.cps_taken += 1
            result.per_cp_block_ops.append(fs.counters.block_ops - ops_start)
            self._clone_churn(fs, clones, result)
            if on_cp is not None:
                on_cp(cp, fs)

        result.block_ops = fs.counters.block_ops
        return result

    # ------------------------------------------------------------ internals

    def _ensure_initial_files(self, fs: FileSystem, result: SyntheticWorkloadResult) -> List[int]:
        files = list(fs.list_files(0))
        while len(files) < self.config.initial_files:
            files.append(self._create_file(fs, result))
        return files

    def _pick_file_size(self) -> int:
        config = self.config
        if self._rng.random() < config.small_file_fraction:
            low, high = config.small_file_blocks
        else:
            low, high = config.large_file_blocks
        return self._rng.randint(low, high)

    def _create_file(self, fs: FileSystem, result: SyntheticWorkloadResult) -> int:
        inode = fs.create_file(num_blocks=self._pick_file_size(), line=0)
        result.files_created += 1
        return inode

    def _one_operation(self, fs: FileSystem, files: List[int], result: SyntheticWorkloadResult) -> None:
        config = self.config
        roll = self._rng.random()
        create_cut = config.create_weight
        delete_cut = create_cut + config.delete_weight
        overwrite_cut = delete_cut + config.overwrite_weight
        append_cut = overwrite_cut + config.append_weight

        if roll < create_cut or not files:
            files.append(self._create_file(fs, result))
            return

        inode = self._rng.choice(files)
        size = fs.file_size(inode, line=0)

        if roll < delete_cut and len(files) > self.config.initial_files // 2:
            fs.delete_file(inode, line=0)
            files.remove(inode)
            result.files_deleted += 1
        elif roll < overwrite_cut and size > 0:
            offset = self._rng.randrange(size)
            length = min(self._rng.randint(1, 8), size - offset)
            fs.write(inode, offset, max(1, length), line=0)
        elif roll < append_cut:
            fs.append(inode, self._rng.randint(1, 8), line=0)
        elif size > 1:
            fs.truncate(inode, self._rng.randrange(size), line=0)
        else:
            fs.write(inode, 0, 1, line=0)

    def _clone_churn(self, fs: FileSystem, clones: List[int], result: SyntheticWorkloadResult) -> None:
        config = self.config
        if (
            self._rng.random() < config.clones_per_100_cps / 100.0
            and len(clones) < config.max_live_clones
        ):
            line = fs.create_clone(0)
            clones.append(line)
            result.clones_created += 1
            # Touch the clone so it diverges from its parent, which is what
            # generates the structural-inheritance override records.
            clone_files = fs.list_files(line)
            if clone_files:
                victim = self._rng.choice(clone_files)
                size = fs.file_size(victim, line=line)
                fs.write(victim, self._rng.randrange(max(1, size)), 1, line=line)
        if clones and self._rng.random() < config.clone_delete_probability:
            line = clones.pop(self._rng.randrange(len(clones)))
            for version in list(fs.snapshots.versions(line)):
                fs.delete_snapshot(line, version)
            fs.delete_clone(line)
            result.clones_deleted += 1
