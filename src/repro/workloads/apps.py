"""Application-style workloads (Table 1, rows 7-9).

The paper's btrfs evaluation runs three application benchmarks: dbench (a
CIFS file-server trace), FileBench's /var/mail personality (a multi-threaded
mail server) and PostMark (a small-file workload).  This module provides op
mixes with the same character so the three-way Base / Original / Backlog
comparison can be reproduced on the simulator:

* ``dbench_like``   -- bursts of creates, sequential writes, reads and
  deletes over a moderately sized working set, the mix dominated by writes;
* ``varmail_like``  -- create/append/read/delete cycles over many small mail
  files with frequent fsync-like consistency points, round-robined over a
  configurable number of threads;
* ``postmark_like`` -- an initial pool of small files followed by
  "transactions" that pair create-or-delete with read-or-append.

The figure of merit is throughput (operations per second), matching the way
Table 1 reports the application benchmarks.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fsim.filesystem import FileSystem

__all__ = ["AppWorkloadConfig", "AppWorkloadResult", "AppWorkload",
           "dbench_like", "varmail_like", "postmark_like"]


@dataclass(frozen=True)
class AppWorkloadConfig:
    """An application op mix.

    ``mix`` maps operation name to relative weight; supported operations are
    ``create``, ``write``, ``append``, ``read``, ``delete`` and ``sync`` (a
    sync forces a consistency point, standing in for fsync/commit activity).
    """

    name: str
    seed: int = 11
    num_ops: int = 4_000
    initial_files: int = 200
    file_blocks: Tuple[int, int] = (1, 8)
    ops_per_cp: int = 512
    threads: int = 1
    mix: Tuple[Tuple[str, float], ...] = (
        ("create", 0.1),
        ("write", 0.4),
        ("read", 0.3),
        ("delete", 0.1),
        ("append", 0.1),
    )

    def __post_init__(self) -> None:
        if self.num_ops <= 0 or self.ops_per_cp <= 0:
            raise ValueError("num_ops and ops_per_cp must be positive")
        if not self.mix:
            raise ValueError("mix must not be empty")
        for op, weight in self.mix:
            if op not in ("create", "write", "append", "read", "delete", "sync"):
                raise ValueError(f"unknown operation {op!r} in mix")
            if weight < 0:
                raise ValueError("mix weights must be non-negative")


def dbench_like(num_ops: int = 4_000, seed: int = 11) -> AppWorkloadConfig:
    """A CIFS file-server-like mix (cf. dbench with 4 users)."""
    return AppWorkloadConfig(
        name="dbench-like CIFS",
        seed=seed,
        num_ops=num_ops,
        initial_files=150,
        file_blocks=(1, 16),
        ops_per_cp=512,
        threads=4,
        mix=(
            ("create", 0.12),
            ("write", 0.38),
            ("append", 0.10),
            ("read", 0.28),
            ("delete", 0.10),
            ("sync", 0.02),
        ),
    )


def varmail_like(num_ops: int = 4_000, seed: int = 13, threads: int = 16) -> AppWorkloadConfig:
    """A mail-server-like mix (cf. FileBench /var/mail, 16 threads)."""
    return AppWorkloadConfig(
        name="varmail-like mail server",
        seed=seed,
        num_ops=num_ops,
        initial_files=400,
        file_blocks=(1, 4),
        ops_per_cp=256,
        threads=threads,
        mix=(
            ("create", 0.22),
            ("append", 0.22),
            ("read", 0.22),
            ("delete", 0.22),
            ("sync", 0.12),
        ),
    )


def postmark_like(num_ops: int = 4_000, seed: int = 17) -> AppWorkloadConfig:
    """A small-file transaction mix (cf. PostMark)."""
    return AppWorkloadConfig(
        name="postmark-like small files",
        seed=seed,
        num_ops=num_ops,
        initial_files=500,
        file_blocks=(1, 4),
        ops_per_cp=1024,
        threads=1,
        mix=(
            ("create", 0.25),
            ("delete", 0.25),
            ("read", 0.25),
            ("append", 0.25),
        ),
    )


@dataclass
class AppWorkloadResult:
    """Outcome of one application workload run."""

    name: str
    operations: int
    seconds: float
    cps_taken: int
    block_ops: int

    @property
    def ops_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.operations / self.seconds

    def overhead_vs(self, base: "AppWorkloadResult") -> float:
        """Fractional throughput loss relative to a baseline run."""
        if base.ops_per_second == 0:
            return 0.0
        return 1.0 - self.ops_per_second / base.ops_per_second


class AppWorkload:
    """Executes an application op mix against a file system."""

    def __init__(self, config: AppWorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)

    def run(self, fs: FileSystem) -> AppWorkloadResult:
        """Run the configured number of operations and return throughput."""
        config = self.config
        cps_before = fs.counters.consistency_points
        block_ops_before = fs.counters.block_ops

        # Per-thread working sets; threads are simulated round-robin (the
        # simulator has a single metadata lock anyway, as does a CP-based FS).
        thread_files: List[List[int]] = [[] for _ in range(max(1, config.threads))]
        for index in range(config.initial_files):
            bucket = thread_files[index % len(thread_files)]
            bucket.append(fs.create_file(num_blocks=self._rng.randint(*config.file_blocks)))
        fs.take_consistency_point()

        operations = [op for op, _ in config.mix]
        weights = [weight for _, weight in config.mix]
        ops_since_cp = 0
        start = time.perf_counter()
        for index in range(config.num_ops):
            files = thread_files[index % len(thread_files)]
            op = self._rng.choices(operations, weights)[0]
            self._apply(fs, files, op)
            ops_since_cp += 1
            if op == "sync" or ops_since_cp >= config.ops_per_cp:
                fs.take_consistency_point()
                ops_since_cp = 0
        fs.take_consistency_point()
        elapsed = time.perf_counter() - start

        return AppWorkloadResult(
            name=config.name,
            operations=config.num_ops,
            seconds=elapsed,
            cps_taken=fs.counters.consistency_points - cps_before,
            block_ops=fs.counters.block_ops - block_ops_before,
        )

    # ------------------------------------------------------------ internals

    def _apply(self, fs: FileSystem, files: List[int], op: str) -> None:
        config = self.config
        if op == "sync":
            return  # the caller takes the consistency point
        if op == "create" or not files:
            files.append(fs.create_file(num_blocks=self._rng.randint(*config.file_blocks)))
            return
        inode = self._rng.choice(files)
        size = fs.file_size(inode)
        if op == "delete":
            fs.delete_file(inode)
            files.remove(inode)
        elif op == "write":
            offset = self._rng.randrange(max(1, size)) if size else 0
            fs.write(inode, offset, self._rng.randint(1, 4))
        elif op == "append":
            fs.append(inode, self._rng.randint(1, 2))
        elif op == "read":
            if size:
                fs.read(inode, self._rng.randrange(size), 1)
        else:
            raise ValueError(f"unknown operation {op!r}")
