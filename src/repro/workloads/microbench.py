"""File create / delete microbenchmarks (Table 1, rows 1-6).

The paper's btrfs evaluation times the creation of 4 KB and 64 KB files and
the deletion of 4 KB files, with a consistency point (btrfs transaction)
taken every 2048 or 8192 operations, under three configurations: no back
references (Base), native btrfs back references (Original), and Backlog.
These helpers run the same microbenchmarks against the simulator with any
listener attached and report milliseconds per operation, which is what the
table's overhead percentages are computed from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.fsim.filesystem import FileSystem

__all__ = ["MicrobenchResult", "create_files", "delete_files"]


@dataclass
class MicrobenchResult:
    """Timing of one microbenchmark run."""

    name: str
    operations: int
    seconds: float
    cps_taken: int
    inodes: List[int]

    @property
    def ms_per_op(self) -> float:
        if self.operations == 0:
            return 0.0
        return self.seconds * 1e3 / self.operations

    @property
    def ops_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.operations / self.seconds

    def overhead_vs(self, base: "MicrobenchResult") -> float:
        """Fractional slowdown relative to a baseline run (Table 1's Overhead)."""
        if base.ms_per_op == 0:
            return 0.0
        return self.ms_per_op / base.ms_per_op - 1.0


def create_files(
    fs: FileSystem,
    count: int,
    blocks_per_file: int,
    ops_per_cp: int,
    name: Optional[str] = None,
) -> MicrobenchResult:
    """Create ``count`` files of ``blocks_per_file`` blocks each.

    A consistency point is taken every ``ops_per_cp`` file operations and
    once at the end (the paper syncs the files before moving on to the
    delete phase), and the time to do so is included in the figure -- just
    as the paper's reported averages include the sync.
    """
    if count <= 0 or blocks_per_file <= 0 or ops_per_cp <= 0:
        raise ValueError("count, blocks_per_file and ops_per_cp must be positive")
    cps_before = fs.counters.consistency_points
    inodes: List[int] = []
    start = time.perf_counter()
    for index in range(count):
        inodes.append(fs.create_file(num_blocks=blocks_per_file))
        if (index + 1) % ops_per_cp == 0:
            fs.take_consistency_point()
    fs.take_consistency_point()
    elapsed = time.perf_counter() - start
    label = name or f"create {blocks_per_file * 4} KB x {count} ({ops_per_cp} ops/CP)"
    return MicrobenchResult(
        name=label,
        operations=count,
        seconds=elapsed,
        cps_taken=fs.counters.consistency_points - cps_before,
        inodes=inodes,
    )


def delete_files(
    fs: FileSystem,
    inodes: Sequence[int],
    ops_per_cp: int,
    name: Optional[str] = None,
) -> MicrobenchResult:
    """Delete the given files, taking a CP every ``ops_per_cp`` operations."""
    if ops_per_cp <= 0:
        raise ValueError("ops_per_cp must be positive")
    cps_before = fs.counters.consistency_points
    start = time.perf_counter()
    for index, inode in enumerate(inodes):
        fs.delete_file(inode)
        if (index + 1) % ops_per_cp == 0:
            fs.take_consistency_point()
    fs.take_consistency_point()
    elapsed = time.perf_counter() - start
    label = name or f"delete x {len(inodes)} ({ops_per_cp} ops/CP)"
    return MicrobenchResult(
        name=label,
        operations=len(inodes),
        seconds=elapsed,
        cps_taken=fs.counters.consistency_points - cps_before,
        inodes=[],
    )
