"""Command-line interface for running Backlog experiments.

The benchmark harness under ``benchmarks/`` regenerates the paper's tables
and figures through pytest; this module offers the same machinery as a plain
command line tool for quick, ad-hoc runs::

    python -m repro synthetic --cps 50 --ops-per-cp 2000
    python -m repro nfs --hours 24
    python -m repro query-bench --cps 30 --run-length 64
    python -m repro query --first-block 0 --num-blocks 4096 --live-only --limit 20
    python -m repro verify --cps 10
    python -m repro scrub --cps 10
    python -m repro scrub --directory /var/backlog/runs --reclaim
    python -m repro serve --port 8642 --churn

Each subcommand builds a fresh simulated file system with Backlog attached,
drives the requested workload, and prints a short plain-text report (the same
formatting used by the benchmark reports).
"""

from __future__ import annotations

import argparse
import shutil
import signal
import sys
import tempfile
import threading
from typing import List, Optional, Sequence

from repro import (
    Backlog,
    BacklogConfig,
    FileSystem,
    FileSystemConfig,
    QuerySpec,
    SnapshotManagerAuthority,
)
from repro.core.records import INFINITY
from repro.analysis.metrics import (
    collect_overhead_series,
    measure_query_performance,
    sample_space_overhead,
)
from repro.analysis.reporting import format_series, format_table
from repro.core.recovery import scrub_backend
from repro.core.verify import verify_backlog
from repro.server import QueryService
from repro.fsim.blockdev import DiskBackend
from repro.workloads.nfs_trace import NFSTraceConfig, NFSTracePlayer, generate_eecs03_like_trace
from repro.workloads.synthetic import SyntheticWorkload, SyntheticWorkloadConfig

__all__ = ["main", "build_parser"]


def _build_system(maintenance_interval: Optional[int] = None):
    backlog = Backlog(config=BacklogConfig(maintenance_interval_cps=maintenance_interval))
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False), listeners=[backlog])
    backlog.set_version_authority(SnapshotManagerAuthority(fs))
    return fs, backlog


def _build_cluster_system(num_shards: int, directory: str):
    """A (FileSystem, ShardedBacklog) pair: the served-cluster posture.

    The cluster is attached to the file system exactly like a single-process
    Backlog (it implements the same listener interface), and recovers its
    shards from ``directory`` -- which is what lets ``repro serve --shards``
    survive a killed worker.
    """
    from repro.cluster import ShardedBacklog

    cluster = ShardedBacklog(num_shards=num_shards,
                             config=BacklogConfig(cluster_shards=num_shards),
                             directory=directory)
    fs = FileSystem(FileSystemConfig(ops_per_cp=10**9, auto_cp=False),
                    listeners=[cluster])
    cluster.set_version_authority(SnapshotManagerAuthority(fs))
    return fs, cluster


def _summary_table(fs, backlog) -> str:
    stats = backlog.stats
    rows = [
        ["block operations", stats.block_ops],
        ["consistency points", stats.consistency_points],
        ["I/O page writes per block op", round(stats.writes_per_block_op, 4)],
        ["CPU microseconds per block op", round(stats.microseconds_per_block_op, 2)],
        ["pruned same-CP pairs", stats.pruned_pairs],
        ["database size (bytes)", backlog.database_size_bytes()],
        ["quarantined + deferred (bytes)",
         backlog.quarantined_bytes() + backlog.deferred_bytes()],
        ["physical data size (bytes)", fs.physical_data_bytes],
        ["space overhead", f"{100 * backlog.space_overhead(fs.physical_data_bytes):.2f}%"],
        ["read-store runs on disk", backlog.run_manager.run_count()],
        ["maintenance passes", len(stats.maintenance_runs)],
    ]
    return format_table("Backlog summary", ["metric", "value"], rows)


def _cmd_synthetic(args: argparse.Namespace) -> int:
    fs, backlog = _build_system(args.maintain_every)
    workload = SyntheticWorkload(SyntheticWorkloadConfig(
        num_cps=args.cps, ops_per_cp=args.ops_per_cp,
        initial_files=args.initial_files, seed=args.seed,
    ))
    samples = []
    workload.run(fs, on_cp=lambda cp, f: samples.append(sample_space_overhead(backlog, f, cp)))
    series = collect_overhead_series(backlog, bucket_cps=max(1, args.cps // 20))
    print(format_series(
        "Synthetic workload overhead (cf. Figure 5)",
        "cp",
        [s.cp for s in series],
        {
            "io_writes_per_block_op": [round(s.writes_per_block_op, 4) for s in series],
            "us_per_block_op": [round(s.microseconds_per_block_op, 2) for s in series],
        },
    ))
    print()
    print(format_series(
        "Space overhead (cf. Figure 6)",
        "cp",
        [s.cp for s in samples[:: max(1, len(samples) // 20)]],
        {"overhead_pct": [round(s.overhead_percent, 3)
                          for s in samples[:: max(1, len(samples) // 20)]]},
    ))
    print()
    print(_summary_table(fs, backlog))
    return 0


def _cmd_nfs(args: argparse.Namespace) -> int:
    fs, backlog = _build_system(args.maintain_every)
    player = NFSTracePlayer(fs, ops_per_cp=args.ops_per_cp)
    hourly = []

    def on_hour(summary, _fs):
        hourly.append((summary.hour, summary.block_ops,
                       sample_space_overhead(backlog, fs, fs.global_cp - 1).overhead_percent))

    player.play(
        generate_eecs03_like_trace(NFSTraceConfig(
            hours=args.hours, base_ops_per_hour=args.ops_per_hour, seed=args.seed,
        )),
        on_hour=on_hour,
    )
    print(format_table(
        "NFS-like trace replay (cf. Figures 7 and 8)",
        ["hour", "block ops", "space overhead %"],
        [[hour, ops, round(pct, 3)] for hour, ops, pct in hourly],
    ))
    print()
    print(_summary_table(fs, backlog))
    return 0


def _cmd_query_bench(args: argparse.Namespace) -> int:
    fs, backlog = _build_system()
    workload = SyntheticWorkload(SyntheticWorkloadConfig(
        num_cps=args.cps, ops_per_cp=args.ops_per_cp, seed=args.seed,
    ))
    workload.run(fs)
    blocks = sorted({block for block, *_ in fs.iter_live_references()})
    rows = []
    for label, action in (("before maintenance", None), ("after maintenance", backlog.maintain)):
        if action is not None:
            action()
        point = measure_query_performance(
            backlog, blocks, run_length=args.run_length, num_queries=args.queries,
        )
        rows.append([label, args.run_length, round(point.queries_per_second, 1),
                     round(point.reads_per_query, 4)])
    print(format_table(
        "Query performance (cf. Figures 9 and 10)",
        ["database state", "run length", "queries/s", "reads/query"],
        rows,
    ))
    return 0


def _format_ranges(ranges) -> str:
    """Render version ranges compactly; INFINITY prints as ``live``."""
    return ", ".join(
        f"[{start}, {'live' if stop == INFINITY else stop})" for start, stop in ranges
    )


def _cmd_query(args: argparse.Namespace) -> int:
    """Run a workload, then answer one cursor query over the result.

    The workload is seeded and deterministic, so a resume token printed by
    one invocation can be passed back via ``--resume`` to the next one with
    the same workload flags -- the CLI equivalent of a paginated API client.
    """
    fs, backlog = _build_system()
    workload = SyntheticWorkload(SyntheticWorkloadConfig(
        num_cps=args.cps, ops_per_cp=args.ops_per_cp, seed=args.seed,
    ))
    workload.run(fs)
    if args.maintain:
        backlog.maintain()

    try:
        spec = QuerySpec(
            first_block=args.first_block,
            num_blocks=args.num_blocks,
            live_only=args.live_only,
            lines=frozenset(args.line) if args.line else None,
            inodes=frozenset(args.inode) if args.inode else None,
            limit=args.limit,
            resume_token=args.resume,
        )
        if args.at_version is not None:
            spec = spec.at_version(args.at_version)
    except ValueError as error:
        print(f"invalid query: {error}", file=sys.stderr)
        return 2

    result = backlog.select(spec)
    if args.count:
        print(f"back references: {result.count()}")
    else:
        rows = [
            [ref.block, ref.inode, ref.offset, ref.line,
             "yes" if ref.is_live else "no", _format_ranges(ref.ranges)]
            for ref in result
        ]
        print(format_table(
            f"Owners of blocks [{args.first_block}, "
            f"{args.first_block + args.num_blocks})",
            ["block", "inode", "offset", "line", "live", "version ranges"],
            rows,
        ))
        print(f"\n{len(rows)} back reference(s)"
              + (f" (limit {args.limit})" if args.limit else ""))
    token = result.resume_token
    if token is not None:
        print(f"resume token: {token}")
    elif result.exhausted:
        print("scan exhausted: no further pages")
    if args.stats:
        print()
        print(_engine_counters_table(backlog))
    return 0


def _engine_counters_table(backlog) -> str:
    """The engine's query counters and per-pool executor timings.

    Works over ``service_stats()`` -- the same payload ``GET /stats``
    serves -- so the CLI footer and the HTTP endpoint can never disagree
    about what was measured.
    """
    service = backlog.service_stats()
    query = service["query"]
    rows = [
        ["queries", query["queries"]],
        ["cursors opened", query["cursors_opened"]],
        ["pages read", query["pages_read"]],
        ["runs probed", query["runs_probed"]],
        ["runs skipped by bloom", query["runs_skipped_by_bloom"]],
        ["resume cache hits", query["resume_cache_hits"]],
    ]
    for pool in ("flush_pool", "maintenance_pool", "query_pool"):
        stats = service[pool]
        rows.append([f"{pool.replace('_', ' ')} jobs/dispatches",
                     f"{stats['jobs']}/{stats['dispatches']}"])
        rows.append([f"{pool.replace('_', ' ')} busy seconds",
                     stats["busy_seconds"]])
    return format_table("Engine counters", ["metric", "value"], rows)


def _cmd_verify(args: argparse.Namespace) -> int:
    fs, backlog = _build_system()
    workload = SyntheticWorkload(SyntheticWorkloadConfig(
        num_cps=args.cps, ops_per_cp=args.ops_per_cp, seed=args.seed,
    ))
    workload.run(fs)
    if args.maintain:
        backlog.maintain()
    report = verify_backlog(fs, backlog)
    print(report.summary())
    for mismatch in report.mismatches[:20]:
        print(f"  {mismatch}")
    return 0 if report.ok else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    """Verify the page checksums of every run on a backend.

    Two modes: ``--directory`` scrubs an existing on-disk run directory (a
    :class:`~repro.fsim.blockdev.DiskBackend` root); without it, a seeded
    workload is run first and its freshly written database is scrubbed --
    the smoke mode CI uses to exercise the scrubber end to end.  Exits 0
    only when the backend is clean.
    """
    if args.directory is not None:
        backend = DiskBackend(args.directory)
    else:
        fs, backlog = _build_system()
        workload = SyntheticWorkload(SyntheticWorkloadConfig(
            num_cps=args.cps, ops_per_cp=args.ops_per_cp, seed=args.seed,
        ))
        workload.run(fs)
        if args.maintain:
            backlog.maintain()
        backend = backlog.backend
    report = scrub_backend(backend, reclaim=args.reclaim)
    print(report.summary())
    return 0 if report.clean else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a seeded workload, then serve concurrent query sessions over it.

    The daemon binds ``--host``/``--port`` (port 0 picks an ephemeral port;
    the bound address is printed, so a wrapper can parse it) and answers
    ``POST /query`` with the full QuerySpec surface and resume-token
    pagination.  With ``--churn`` a background thread keeps writing,
    checkpointing and periodically maintaining the database while sessions
    stream -- the live demonstration of the snapshot-isolated read path.
    SIGTERM/SIGINT (or ``--duration`` elapsing) triggers a graceful drain:
    in-flight pages finish, then ``drained`` is printed and the process
    exits 0.

    With ``--shards N`` (N > 1) the database is a
    :class:`repro.cluster.ShardedBacklog` over N worker processes backed by
    a scratch directory; the worker pids are printed (``cluster workers:
    ...``) so a harness can kill one and watch the coordinator recover it
    transparently -- ``tools/cluster_smoke.py`` does exactly that.
    """
    shards = args.shards if args.shards is not None else BacklogConfig().cluster_shards
    cluster_dir = None
    if shards > 1:
        cluster_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        fs, backlog = _build_cluster_system(shards, cluster_dir)
        print(f"cluster workers: "
              f"{' '.join(str(pid) for pid in backlog.worker_pids())}",
              flush=True)
    else:
        fs, backlog = _build_system()
    workload = SyntheticWorkload(SyntheticWorkloadConfig(
        num_cps=args.cps, ops_per_cp=args.ops_per_cp, seed=args.seed,
    ))
    workload.run(fs)

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())

    churn_thread = None
    if args.churn:
        def churn() -> None:
            # Standalone writes into a dedicated high block range: every
            # round buffers updates, flushes them at a consistency point,
            # and periodically compacts -- replacing runs (and, pre-snapshot,
            # deleting files) right under the serving sessions.
            base = 1 << 22
            round_number = 0
            while not stop.is_set():
                offset = (round_number % 64) * 32
                for i in range(32):
                    backlog.add_reference(block=base + offset + i,
                                          inode=10_000 + round_number % 97,
                                          offset=i)
                backlog.checkpoint()
                if round_number % 4 == 3:
                    backlog.maintain()
                round_number += 1
                stop.wait(0.005)
        churn_thread = threading.Thread(target=churn, name="serve-churn")

    service = QueryService(backlog, host=args.host, port=args.port)
    service.start()
    print(f"serving on {service.url}", flush=True)
    if churn_thread is not None:
        churn_thread.start()
    try:
        stop.wait(args.duration)
    finally:
        stop.set()
        if churn_thread is not None:
            churn_thread.join()
        service.stop()
        if cluster_dir is not None:
            backlog.close()
            shutil.rmtree(cluster_dir, ignore_errors=True)
    print(f"drained ({service.requests_served} request(s) served, "
          f"{service.requests_rejected} rejected)", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backlog: log-structured back references (FAST 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub, cps_default=30, ops_default=1000):
        sub.add_argument("--cps", type=int, default=cps_default,
                         help="number of consistency points to run")
        sub.add_argument("--ops-per-cp", type=int, default=ops_default,
                         help="block operations per consistency point")
        sub.add_argument("--seed", type=int, default=42, help="workload RNG seed")

    synthetic = subparsers.add_parser("synthetic", help="run the synthetic workload")
    common(synthetic)
    synthetic.add_argument("--initial-files", type=int, default=150)
    synthetic.add_argument("--maintain-every", type=int, default=None,
                           help="run database maintenance every N CPs")
    synthetic.set_defaults(func=_cmd_synthetic)

    nfs = subparsers.add_parser("nfs", help="replay an EECS03-like NFS trace")
    nfs.add_argument("--hours", type=int, default=24)
    nfs.add_argument("--ops-per-hour", type=int, default=1500)
    nfs.add_argument("--ops-per-cp", type=int, default=400)
    nfs.add_argument("--seed", type=int, default=2003)
    nfs.add_argument("--maintain-every", type=int, default=None)
    nfs.set_defaults(func=_cmd_nfs)

    query_bench = subparsers.add_parser("query-bench", help="measure query performance")
    common(query_bench)
    query_bench.add_argument("--run-length", type=int, default=64)
    query_bench.add_argument("--queries", type=int, default=512)
    query_bench.set_defaults(func=_cmd_query_bench)

    query = subparsers.add_parser(
        "query", help="run one cursor query (filters, limit, resumable pagination)")
    common(query, cps_default=10, ops_default=500)
    query.add_argument("--first-block", type=int, default=0,
                       help="first physical block of the queried range")
    query.add_argument("--num-blocks", type=int, default=1,
                       help="number of physical blocks in the range")
    query.add_argument("--at-version", type=int, default=None,
                       help="only owners whose reference existed at this CP")
    query.add_argument("--live-only", action="store_true",
                       help="only owners still referencing the block(s) live")
    query.add_argument("--line", type=int, action="append", default=None,
                       help="restrict to this line (repeatable)")
    query.add_argument("--inode", type=int, action="append", default=None,
                       help="restrict to this inode (repeatable)")
    query.add_argument("--limit", type=int, default=None,
                       help="page size: stop after N owners and print a resume token")
    query.add_argument("--resume", type=str, default=None,
                       help="resume token from a previous page")
    query.add_argument("--count", action="store_true",
                       help="print only the number of matching owners")
    query.add_argument("--stats", action="store_true",
                       help="print engine counters (pages read, executor "
                            "pool timings) after the results")
    query.add_argument("--maintain", action="store_true",
                       help="run database maintenance before querying")
    query.set_defaults(func=_cmd_query)

    verify = subparsers.add_parser("verify", help="run a workload and verify the database")
    common(verify, cps_default=10, ops_default=500)
    verify.add_argument("--maintain", action="store_true",
                        help="run maintenance before verifying")
    verify.set_defaults(func=_cmd_verify)

    scrub = subparsers.add_parser(
        "scrub", help="verify run-file page checksums, optionally reclaiming damage")
    common(scrub, cps_default=10, ops_default=500)
    scrub.add_argument("--directory", type=str, default=None,
                       help="scrub an existing on-disk run directory instead of "
                            "running a workload first")
    scrub.add_argument("--maintain", action="store_true",
                       help="run maintenance before scrubbing (workload mode)")
    scrub.add_argument("--reclaim", action="store_true",
                       help="delete corrupt runs and invalid leftover files")
    scrub.set_defaults(func=_cmd_scrub)

    serve = subparsers.add_parser(
        "serve", help="serve concurrent query sessions over HTTP")
    common(serve, cps_default=10, ops_default=500)
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8642,
                       help="port to bind (0 picks an ephemeral port)")
    serve.add_argument("--churn", action="store_true",
                       help="keep writing + checkpointing + maintaining in "
                            "the background while serving")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then drain (default: until "
                            "SIGTERM/SIGINT)")
    serve.add_argument("--shards", type=int, default=None,
                       help="serve a ShardedBacklog over N worker processes "
                            "(default: REPRO_CLUSTER_SHARDS, i.e. 1)")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
