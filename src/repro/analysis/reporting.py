"""Plain-text formatting of benchmark results.

The benchmark harness prints, for every paper table and figure, the rows or
series that the original plots -- so a run of ``pytest benchmarks/`` produces
a textual version of the evaluation section that can be compared against the
paper (and is captured verbatim in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_series", "write_report"]


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned, monospaced table with a title line."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines = [f"== {title} =="]
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * width for width in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render one or more y-series against a shared x axis as a table."""
    headers = [x_label] + list(series)
    rows = []
    for index, x_value in enumerate(x_values):
        row: List[object] = [x_value]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(title, headers, rows, note=note)


def write_report(path: str, sections: Iterable[str]) -> str:
    """Write report sections to ``path`` (creating directories) and return the text."""
    text = "\n\n".join(sections) + "\n"
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000:
            return f"{cell:,.0f}"
        if magnitude >= 1:
            return f"{cell:.2f}"
        if magnitude >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.5f}"
    return str(cell)
