"""Metric collection and report formatting for the benchmark harness."""

from repro.analysis.metrics import (
    OverheadSample,
    QueryPerformancePoint,
    SpaceSample,
    collect_overhead_series,
    measure_query_performance,
    sample_space_overhead,
)
from repro.analysis.reporting import format_series, format_table, write_report

__all__ = [
    "OverheadSample",
    "QueryPerformancePoint",
    "SpaceSample",
    "collect_overhead_series",
    "measure_query_performance",
    "sample_space_overhead",
    "format_series",
    "format_table",
    "write_report",
]
