"""Derived metrics matching the paper's evaluation figures.

Three metric families are produced here:

* **Overhead during normal operation** (Figures 5 and 7): I/O page writes
  per block operation and CPU microseconds per block operation, per
  consistency point (or per trace hour).
* **Space overhead** (Figures 6 and 8): back-reference database size as a
  percentage of the physical data size, sampled over time.
* **Query performance** (Figures 9 and 10): queries per second and I/O page
  reads per query as a function of run length and database age.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.backlog import Backlog
from repro.core.cursor import QuerySpec
from repro.fsim.filesystem import FileSystem

__all__ = [
    "OverheadSample",
    "SpaceSample",
    "QueryPerformancePoint",
    "EarlyExitPoint",
    "PaginatedScanPoint",
    "collect_overhead_series",
    "sample_space_overhead",
    "measure_query_performance",
    "measure_early_exit",
    "measure_paginated_scan",
]


@dataclass(frozen=True)
class OverheadSample:
    """One point of the maintenance-overhead series."""

    cp: int
    block_ops: int
    writes_per_block_op: float
    microseconds_per_block_op: float


@dataclass(frozen=True)
class SpaceSample:
    """One point of the space-overhead series."""

    cp: int
    database_bytes: int
    physical_data_bytes: int

    @property
    def overhead_percent(self) -> float:
        if self.physical_data_bytes <= 0:
            return 0.0
        return 100.0 * self.database_bytes / self.physical_data_bytes


@dataclass(frozen=True)
class QueryPerformancePoint:
    """One point of the query-performance surface."""

    run_length: int
    cps_since_maintenance: Optional[int]
    queries: int
    queries_per_second: float
    reads_per_query: float
    back_references_per_query: float


def collect_overhead_series(backlog: Backlog, bucket_cps: int = 1) -> List[OverheadSample]:
    """Per-CP (or per-``bucket_cps``) overhead series from a Backlog's stats.

    This is the series plotted in Figures 5 and 7: I/O writes per block
    operation and CPU time per block operation, as they evolve over the life
    of the file system.
    """
    if bucket_cps <= 0:
        raise ValueError("bucket_cps must be positive")
    samples: List[OverheadSample] = []
    checkpoints = backlog.stats.checkpoints
    previous_cumulative = 0.0
    bucket_ops = 0
    bucket_writes = 0
    bucket_micros = 0.0
    for index, cp_stats in enumerate(checkpoints):
        micros = cp_stats.microseconds_per_block_op(previous_cumulative) * cp_stats.block_ops
        previous_cumulative = cp_stats.cumulative_update_seconds
        bucket_ops += cp_stats.block_ops
        bucket_writes += cp_stats.pages_written
        bucket_micros += micros
        if (index + 1) % bucket_cps == 0:
            samples.append(
                OverheadSample(
                    cp=cp_stats.cp,
                    block_ops=bucket_ops,
                    writes_per_block_op=bucket_writes / bucket_ops if bucket_ops else 0.0,
                    microseconds_per_block_op=bucket_micros / bucket_ops if bucket_ops else 0.0,
                )
            )
            bucket_ops = 0
            bucket_writes = 0
            bucket_micros = 0.0
    return samples


def sample_space_overhead(backlog: Backlog, fs: FileSystem, cp: int) -> SpaceSample:
    """Capture one space-overhead sample (database size vs physical data)."""
    return SpaceSample(
        cp=cp,
        database_bytes=backlog.database_size_bytes(),
        physical_data_bytes=fs.physical_data_bytes,
    )


def measure_query_performance(
    backlog: Backlog,
    allocated_blocks: Sequence[int],
    run_length: int,
    num_queries: int,
    cps_since_maintenance: Optional[int] = None,
    seed: int = 97,
    clear_caches: bool = True,
) -> QueryPerformancePoint:
    """Run a batch of range queries and report throughput (Figures 9/10).

    A "run" of length ``n`` starts at a randomly selected allocated block and
    returns back references for that block and the next ``n - 1`` allocated
    blocks, holding work constant regardless of allocation density -- the
    same methodology as the paper.  Caches are cleared first so the numbers
    are worst-case.
    """
    if run_length <= 0 or num_queries <= 0:
        raise ValueError("run_length and num_queries must be positive")
    if not allocated_blocks:
        raise ValueError("allocated_blocks must not be empty")
    rng = random.Random(seed)
    if clear_caches:
        backlog.clear_caches()
    stats = backlog.query_stats
    stats.reset()

    blocks = sorted(allocated_blocks)
    queries_issued = 0
    remaining = num_queries
    while remaining > 0:
        start_index = rng.randrange(len(blocks))
        run = blocks[start_index:start_index + run_length]
        if not run:
            continue
        # One range query per run of physically adjacent allocated blocks:
        # issue it as a single range covering the run's span, as a
        # maintenance utility (volume shrinker, defragmenter) would.
        span = run[-1] - run[0] + 1
        backlog.query_range(run[0], span)
        queries_issued += len(run)
        remaining -= len(run)

    return QueryPerformancePoint(
        run_length=run_length,
        cps_since_maintenance=cps_since_maintenance,
        queries=queries_issued,
        queries_per_second=(
            queries_issued / stats.seconds if stats.seconds > 0 else 0.0
        ),
        reads_per_query=stats.pages_read / queries_issued if queries_issued else 0.0,
        back_references_per_query=(
            stats.back_references_returned / queries_issued if queries_issued else 0.0
        ),
    )


@dataclass(frozen=True)
class EarlyExitPoint:
    """Full materialisation vs ``.first()`` early exit on one block range."""

    queries: int
    full_seconds: float
    first_seconds: float
    back_references_full: int

    @property
    def speedup(self) -> float:
        """How many times faster the early exit answered than ``.all()``."""
        if self.first_seconds <= 0.0:
            return float("inf")
        return self.full_seconds / self.first_seconds


@dataclass(frozen=True)
class PaginatedScanPoint:
    """One resumable paginated scan over a block range."""

    page_size: int
    pages: int
    back_references: int
    seconds: float
    max_page_length: int

    @property
    def back_references_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.back_references / self.seconds


def measure_early_exit(
    backlog: Backlog,
    first_block: int,
    num_blocks: int,
    num_queries: int = 3,
    clear_caches: bool = True,
) -> EarlyExitPoint:
    """Time ``select(spec).first()`` against full materialisation.

    The cursor benchmark's existence-check shape: a maintenance utility
    asking "is *anything* referencing this range?" should pay for one
    reference group, not for assembling the whole answer.  Both sides run
    the same spec; caches are cleared before each side so the comparison is
    I/O-fair.
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    spec = QuerySpec(first_block=first_block, num_blocks=num_blocks)

    if clear_caches:
        backlog.clear_caches()
    start = time.perf_counter()
    back_references = 0
    for _ in range(num_queries):
        back_references = len(backlog.select(spec).all())
    full_seconds = time.perf_counter() - start

    if clear_caches:
        backlog.clear_caches()
    start = time.perf_counter()
    for _ in range(num_queries):
        backlog.select(spec).first()
    first_seconds = time.perf_counter() - start

    return EarlyExitPoint(
        queries=num_queries,
        full_seconds=full_seconds,
        first_seconds=first_seconds,
        back_references_full=back_references,
    )


def measure_paginated_scan(
    backlog: Backlog,
    first_block: int,
    num_blocks: int,
    page_size: int,
    clear_caches: bool = True,
) -> PaginatedScanPoint:
    """Drive a whole-range scan through resume-token pagination.

    Issues ``limit=page_size`` cursors in a resume loop until exhaustion --
    the access pattern a multi-user API front end produces -- and reports
    page counts and throughput.  Transient memory stays flat in the range
    width because no page ever exceeds ``page_size`` back references (the
    ``cursor`` benchmark section measures that directly with tracemalloc).
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    if clear_caches:
        backlog.clear_caches()
    base = QuerySpec(first_block=first_block, num_blocks=num_blocks, limit=page_size)
    pages = 0
    back_references = 0
    max_page_length = 0
    token: Optional[str] = None
    start = time.perf_counter()
    while True:
        result = backlog.select(base.after(token))
        page_length = result.count()
        pages += 1
        back_references += page_length
        max_page_length = max(max_page_length, page_length)
        token = result.resume_token
        if token is None:
            break
    return PaginatedScanPoint(
        page_size=page_size,
        pages=pages,
        back_references=back_references,
        seconds=time.perf_counter() - start,
        max_page_length=max_page_length,
    )
