"""Crash recovery for the back-reference database.

Backlog's durability story (§5.4) piggybacks on the write-anywhere file
system: a consistency point is complete only once every read-store run it
produced is safely on disk, so after a crash the on-disk database is exactly
the state as of the last complete CP.  What is lost is the in-memory write
stores -- the updates made since that CP -- and those are rebuilt by replaying
the file system's journal.

This module provides the two halves of that story for the simulator:

* :func:`rebuild_run_manager` -- scan a storage backend for read-store runs
  and reconstruct the run catalogue (the equivalent of mounting the
  database after a restart);
* :func:`recover_backlog` -- build a fresh :class:`~repro.core.backlog.Backlog`
  over an existing backend and replay a journal into its write stores;

plus the integrity audit that complements them:

* :func:`scrub_backend` -- walk every run on a backend verifying page
  checksums (the engine behind ``repro scrub``), reporting -- and optionally
  reclaiming -- corrupt runs and invalid leftover files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.masking import VersionAuthority
from repro.core.read_store import CorruptPageError, ReadStoreReader
from repro.core.lsm import (RunManager, parse_run_name, parse_tombstone_name,
                            tombstone_name)
from repro.fsim.blockdev import StorageBackend
from repro.fsim.cache import PageCache
from repro.fsim.journal import Journal

# parse_run_name is re-exported for backwards compatibility; it lives in
# repro.core.lsm next to run_name, its inverse.
__all__ = ["parse_run_name", "rebuild_run_manager", "recover_backlog",
           "scrub_backend", "ScrubReport"]


def rebuild_run_manager(backend: StorageBackend, cache: Optional[PageCache] = None,
                        remove_invalid: bool = False,
                        verify_checksums: bool = True) -> RunManager:
    """Reconstruct the run catalogue by scanning the backend's files.

    Runs are re-registered in sequence order so that the catalogue's notion
    of creation order (which matters for nothing functional, but keeps
    diagnostics stable) matches the original.  The sequence counter is
    advanced past the highest sequence seen so new runs get fresh names.

    A run file that cannot be opened -- empty, truncated mid-write, with a
    corrupt header (including a v2 header whose CRC does not match), or
    unreadable at the OS level -- is the remnant of a compaction that
    crashed before registering its output, or storage damage.  Such a file
    is not part of the database (the catalogue swap happens only after
    every page is on disk), so it is skipped; with ``remove_invalid=True``
    it is also deleted to reclaim the space.  Its sequence number still
    advances the counter so a fresh run can never collide with the leftover
    name.  ``verify_checksums`` is threaded into the rebuilt manager (and
    its re-opened readers) exactly as :class:`~repro.core.config.
    BacklogConfig.verify_checksums` would be.

    A run file accompanied by a ``.retired`` tombstone was already retired
    from the catalogue -- its deletion was deferred behind a reader pinned
    at crash time (see :mod:`repro.core.lsm`).  No pin survives a restart,
    so such a file is never re-registered; with ``remove_invalid=True`` the
    interrupted retirement is completed (file and marker deleted).  Its
    sequence number, like an invalid leftover's, still advances the counter.
    """
    manager = RunManager(backend, cache=cache, verify_checksums=verify_checksums)
    files = list(backend.list_files())
    tombstoned = {run for run in (parse_tombstone_name(name) for name in files)
                  if run is not None}
    runs = []
    for name in files:
        parsed = parse_run_name(name)
        if parsed is None:
            continue
        partition, table, level, sequence = parsed
        runs.append((sequence, partition, table, name))
    max_sequence = 0
    for sequence, partition, table, name in sorted(runs):
        max_sequence = max(max_sequence, sequence)
        if name in tombstoned:
            if remove_invalid:
                backend.delete(name)
                marker = tombstone_name(name)
                if backend.exists(marker):
                    backend.delete(marker)
            continue
        try:
            reader = ReadStoreReader(backend, name, cache=cache,
                                     verify_checksums=verify_checksums)
        except (ValueError, IndexError, struct.error, OSError):
            # CorruptPageError subclasses ValueError, so a run whose header
            # fails its CRC is treated like any other invalid leftover.
            if remove_invalid:
                backend.delete(name)
            continue
        manager.add_run(partition, table, reader)
    if remove_invalid:
        # Orphan markers -- retirement deleted the run file but crashed
        # before removing the marker -- hold no data; finish the job.
        present = set(files)
        for name in files:
            marked = parse_tombstone_name(name)
            if marked is not None and marked not in present:
                backend.delete(name)
    # Advance the sequence counter so future runs do not collide.
    manager.reserve_through(max_sequence)
    return manager


def recover_backlog(
    backend: StorageBackend,
    journal: Optional[Journal] = None,
    config: Optional[BacklogConfig] = None,
    version_authority: Optional[VersionAuthority] = None,
    current_cp: Optional[int] = None,
    clone_parents: Optional[Iterable[Tuple[int, int, int]]] = None,
) -> Backlog:
    """Rebuild a Backlog instance after a simulated crash.

    Parameters
    ----------
    backend:
        The storage backend holding the read-store runs written before the
        crash (a :class:`~repro.fsim.blockdev.DiskBackend`, or a
        :class:`~repro.fsim.blockdev.MemoryBackend` kept alive by the test).
    journal:
        The file system's journal of reference events since the last complete
        consistency point.  If provided, its records are replayed into the
        fresh write stores, restoring the pre-crash in-memory state.
    current_cp:
        The CP number the recovered instance should consider current.
        Explicitly passing it always wins -- the caller (the file system)
        knows its own CP counter, so pass it whenever it is known.  When
        omitted, it is inferred from the journal: every journalled event
        carries the CP it belongs to, and the journal only ever holds events
        since the last complete CP, so the first record's CP *is* the CP
        that was open at the crash.  With no explicit value and an empty (or
        absent) journal there is nothing to infer from, and the fresh
        instance's default (CP 1) is kept.
    clone_parents:
        ``(line, parent_line, parent_version)`` triples describing the clone
        topology, replayed into the fresh clone graph.  Clone parentage is
        *file-system* metadata -- it survives a crash in the write-anywhere
        tree, not in the back-reference database -- so structural
        inheritance only works after recovery if the caller re-supplies it;
        pass ``fs.snapshots.clone_parentage()`` when recovering against the
        simulator.  Without it, queries silently miss inherited references
        on cloned lines.
    """
    backlog = Backlog(backend=backend, config=config, version_authority=version_authority)
    backlog.run_manager = rebuild_run_manager(
        backend, cache=backlog.cache, remove_invalid=True,
        verify_checksums=backlog.config.verify_checksums)
    # Re-wire the components that hold a reference to the run manager --
    # including the catalogue, which is where every pinned query snapshot
    # gets its run lists from.
    backlog._compactor.run_manager = backlog.run_manager
    backlog._query_engine.run_manager = backlog.run_manager
    backlog.catalogue.run_manager = backlog.run_manager

    if clone_parents is not None:
        for line, parent_line, parent_version in clone_parents:
            backlog.clone_graph.add_clone(line, parent_line, parent_version)

    if current_cp is not None:
        backlog.current_cp = current_cp
    elif journal is not None and len(journal) > 0:
        backlog.current_cp = next(iter(journal)).cp

    if journal is not None:
        journal.replay(
            on_add=backlog.on_reference_added,
            on_remove=backlog.on_reference_removed,
        )
    return backlog


@dataclass
class ScrubReport:
    """The result of one :func:`scrub_backend` pass."""

    #: Runs that opened and verified clean (v2 files, every page checked).
    runs_ok: List[str] = field(default_factory=list)
    #: v1 runs that opened fine but carry no checksums to verify.
    runs_legacy: List[str] = field(default_factory=list)
    #: Runs with at least one checksum mismatch: name -> the failures,
    #: each a ``(page_index, kind)`` pair (``kind`` is ``"header"``,
    #: ``"leaf"``, ``"index"`` or ``"bloom"``).
    runs_corrupt: Dict[str, List[tuple]] = field(default_factory=dict)
    #: Run-named files that would not open at all (truncated, empty,
    #: unreadable) -- crash leftovers rather than bit rot.
    files_invalid: List[str] = field(default_factory=list)
    #: Deferred-delete files: runs retired from the catalogue behind a
    #: pinned reader (their ``.retired`` tombstone is present), plus orphan
    #: tombstones whose run file is already gone.  *Not* leaks or damage --
    #: an interrupted epoch reclamation; ``reclaim=True`` completes it.
    files_deferred: List[str] = field(default_factory=list)
    #: Files deleted by ``reclaim=True`` (corrupt runs, invalid leftovers,
    #: deferred-delete files and their tombstones).
    files_reclaimed: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing is corrupt and no invalid leftovers remain.

        Deferred-delete files do not make a backend unclean: they are an
        understood, self-describing state (retirement awaiting reclamation),
        not damage.
        """
        return not self.runs_corrupt and not self.files_invalid

    def summary(self) -> str:
        """One human-readable line per finding, plus a totals line."""
        lines = []
        for name in sorted(self.runs_corrupt):
            failures = ", ".join(
                f"page {page} ({kind})" for page, kind in self.runs_corrupt[name])
            lines.append(f"CORRUPT  {name}: {failures}")
        for name in self.files_invalid:
            lines.append(f"INVALID  {name}: cannot open")
        for name in self.files_deferred:
            lines.append(f"DEFERRED {name}: retired, awaiting reclamation")
        for name in self.files_reclaimed:
            lines.append(f"RECLAIMED {name}")
        lines.append(
            f"scrub: {len(self.runs_ok)} ok, {len(self.runs_legacy)} legacy (v1), "
            f"{len(self.runs_corrupt)} corrupt, {len(self.files_invalid)} invalid, "
            f"{len(self.files_deferred)} deferred, "
            f"{len(self.files_reclaimed)} reclaimed")
        return "\n".join(lines)


def scrub_backend(backend: StorageBackend, reclaim: bool = False) -> ScrubReport:
    """Walk every run on ``backend`` verifying page checksums.

    The engine behind ``repro scrub``: every run-named file is opened
    (header CRC verified for v2 files) and every leaf, index and Bloom page
    is checked against its stored CRC32 regardless of the
    ``verify_checksums`` runtime flag.  v1 files carry no checksums and are
    reported as legacy rather than ok.  ``reclaim=True`` deletes corrupt
    runs and unopenable leftovers, reclaiming their space -- the database
    equivalent of dropping a damaged run from the catalogue, made durable.

    Files carrying a ``.retired`` tombstone are *deferred deletes* -- runs
    retired from the catalogue while a pinned reader still held them (epoch
    reclamation, :mod:`repro.core.lsm`) -- and are reported separately from
    leaks or damage; ``reclaim=True`` completes the interrupted retirement
    (file and marker).  Reclaiming assumes a quiescent backend: on a live
    system the deferred files may still be streamed by pinned snapshots.
    """
    report = ScrubReport()
    files = sorted(backend.list_files())
    present = set(files)
    tombstoned = {run for run in (parse_tombstone_name(name) for name in files)
                  if run is not None}
    for name in files:
        marked = parse_tombstone_name(name)
        if marked is not None and marked not in present:
            # Orphan marker: the retirement already deleted the run file but
            # crashed before the marker.  Report (and reclaim) the marker.
            report.files_deferred.append(name)
            continue
        if parse_run_name(name) is None:
            continue
        if name in tombstoned:
            # Retired behind a pinned reader; not part of the database, so
            # its checksums are not the database's problem.
            report.files_deferred.append(name)
            continue
        try:
            reader = ReadStoreReader(backend, name, verify_checksums=False)
        except CorruptPageError as error:
            # The header page itself failed its CRC: a corrupt run, not a
            # crash leftover.  (Checked before the broad catch -- this
            # subclasses ValueError.)
            report.runs_corrupt[name] = [(error.page_index, error.kind)]
            continue
        except (ValueError, IndexError, struct.error, OSError):
            report.files_invalid.append(name)
            continue
        if reader.format_version < 2:
            report.runs_legacy.append(name)
            continue
        problems = reader.verify_checksums()
        if problems:
            report.runs_corrupt[name] = [
                (problem.page_index, problem.kind) for problem in problems]
        else:
            report.runs_ok.append(name)
    if reclaim:
        targets = list(report.runs_corrupt) + list(report.files_invalid)
        for name in report.files_deferred:
            targets.append(name)
            if parse_run_name(name) is not None:
                marker = tombstone_name(name)
                if backend.exists(marker):
                    targets.append(marker)
        for name in targets:
            if backend.exists(name):
                backend.delete(name)
            report.files_reclaimed.append(name)
    return report
