"""Crash recovery for the back-reference database.

Backlog's durability story (§5.4) piggybacks on the write-anywhere file
system: a consistency point is complete only once every read-store run it
produced is safely on disk, so after a crash the on-disk database is exactly
the state as of the last complete CP.  What is lost is the in-memory write
stores -- the updates made since that CP -- and those are rebuilt by replaying
the file system's journal.

This module provides the two halves of that story for the simulator:

* :func:`rebuild_run_manager` -- scan a storage backend for read-store runs
  and reconstruct the run catalogue (the equivalent of mounting the
  database after a restart);
* :func:`recover_backlog` -- build a fresh :class:`~repro.core.backlog.Backlog`
  over an existing backend and replay a journal into its write stores.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.backlog import Backlog
from repro.core.config import BacklogConfig
from repro.core.masking import VersionAuthority
from repro.core.read_store import ReadStoreReader
from repro.core.lsm import RunManager, parse_run_name
from repro.fsim.blockdev import StorageBackend
from repro.fsim.cache import PageCache
from repro.fsim.journal import Journal

# parse_run_name is re-exported for backwards compatibility; it lives in
# repro.core.lsm next to run_name, its inverse.
__all__ = ["parse_run_name", "rebuild_run_manager", "recover_backlog"]


def rebuild_run_manager(backend: StorageBackend, cache: Optional[PageCache] = None,
                        remove_invalid: bool = False) -> RunManager:
    """Reconstruct the run catalogue by scanning the backend's files.

    Runs are re-registered in sequence order so that the catalogue's notion
    of creation order (which matters for nothing functional, but keeps
    diagnostics stable) matches the original.  The sequence counter is
    advanced past the highest sequence seen so new runs get fresh names.

    A run file that cannot be opened -- empty, truncated mid-write, or with a
    corrupt header -- is the remnant of a compaction that crashed before
    registering its output.  Such a file was never part of the database (the
    catalogue swap happens only after every page is on disk), so it is
    skipped; with ``remove_invalid=True`` it is also deleted to reclaim the
    space.  Its sequence number still advances the counter so a fresh run
    can never collide with the leftover name.
    """
    manager = RunManager(backend, cache=cache)
    runs = []
    for name in backend.list_files():
        parsed = parse_run_name(name)
        if parsed is None:
            continue
        partition, table, level, sequence = parsed
        runs.append((sequence, partition, table, name))
    max_sequence = 0
    for sequence, partition, table, name in sorted(runs):
        max_sequence = max(max_sequence, sequence)
        try:
            reader = ReadStoreReader(backend, name, cache=cache)
        except (ValueError, IndexError, struct.error):
            if remove_invalid:
                backend.delete(name)
            continue
        manager.add_run(partition, table, reader)
    # Advance the sequence counter so future runs do not collide.
    while manager.next_sequence() < max_sequence:
        pass
    return manager


def recover_backlog(
    backend: StorageBackend,
    journal: Optional[Journal] = None,
    config: Optional[BacklogConfig] = None,
    version_authority: Optional[VersionAuthority] = None,
    current_cp: Optional[int] = None,
) -> Backlog:
    """Rebuild a Backlog instance after a simulated crash.

    Parameters
    ----------
    backend:
        The storage backend holding the read-store runs written before the
        crash (a :class:`~repro.fsim.blockdev.DiskBackend`, or a
        :class:`~repro.fsim.blockdev.MemoryBackend` kept alive by the test).
    journal:
        The file system's journal of reference events since the last complete
        consistency point.  If provided, its records are replayed into the
        fresh write stores, restoring the pre-crash in-memory state.
    current_cp:
        The CP number the recovered instance should consider current.  If
        omitted it is inferred from the journal (the CP of its first record)
        or defaults to one past the... the caller's knowledge wins, so pass it
        explicitly whenever it is known.
    """
    backlog = Backlog(backend=backend, config=config, version_authority=version_authority)
    backlog.run_manager = rebuild_run_manager(backend, cache=backlog.cache,
                                              remove_invalid=True)
    # Re-wire the components that hold a reference to the run manager.
    backlog._compactor.run_manager = backlog.run_manager
    backlog._query_engine.run_manager = backlog.run_manager

    if current_cp is not None:
        backlog.current_cp = current_cp
    elif journal is not None and len(journal) > 0:
        backlog.current_cp = next(iter(journal)).cp

    if journal is not None:
        journal.replay(
            on_add=backlog.on_reference_added,
            on_remove=backlog.on_reference_removed,
        )
    return backlog
