"""The in-memory write store (WS).

Between consistency points every back-reference update lands in a write
store: a balanced tree sorted first by ``(block, inode, offset, line)`` and
then by the boundary CP number (``from`` or ``to``).  Sorting this way makes
two things cheap (§5.1):

* flushing -- the read store is a densely packed B-tree built bottom-up from
  an in-order traversal, so no sort is needed at consistency-point time, and
* proactive pruning -- when a reference is removed, the manager can look up a
  matching From entry with the same key and the current CP number in O(log n)
  and delete the pair outright (the reference never survived a consistency
  point, so it must never reach disk).

There is one write store per table (From and To).  The store also remembers
the set of distinct physical blocks it contains so that queries can consult
it cheaply and the flush can size its Bloom filter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.records import FromRecord, ToRecord
from repro.util.rbtree import RedBlackTree

__all__ = ["WriteStore"]

_Record = Union[FromRecord, ToRecord]


class WriteStore:
    """A sorted in-memory buffer of From or To records.

    Parameters
    ----------
    table:
        ``"from"`` or ``"to"``; determines the record type accepted and is
        reported in diagnostics.
    """

    def __init__(self, table: str) -> None:
        if table not in ("from", "to"):
            raise ValueError(f"unknown table {table!r}")
        self.table = table
        self._tree = RedBlackTree()
        self._block_counts: Dict[int, int] = {}
        self.inserts = 0
        self.removals = 0

    # ------------------------------------------------------------ mutation

    def insert(self, record: _Record) -> None:
        """Add a record.  Duplicate keys (same identity and CP) are idempotent."""
        self._check_type(record)
        key = record.sort_key()
        if key not in self._tree:
            self._tree.insert(key, record)
            self._block_counts[record.block] = self._block_counts.get(record.block, 0) + 1
        self.inserts += 1

    def remove(self, record: _Record) -> bool:
        """Remove a record if present; returns True when something was removed."""
        self._check_type(record)
        key = record.sort_key()
        if key not in self._tree:
            return False
        self._tree.delete(key)
        self.removals += 1
        count = self._block_counts.get(record.block, 0) - 1
        if count <= 0:
            self._block_counts.pop(record.block, None)
        else:
            self._block_counts[record.block] = count
        return True

    def clear(self) -> None:
        """Drop every buffered record (after a successful flush)."""
        self._tree.clear()
        self._block_counts.clear()

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def contains(self, block: int, inode: int, offset: int, line: int, cp: int) -> bool:
        """Exact-match test used by proactive pruning."""
        return (block, inode, offset, line, cp) in self._tree

    def find(self, block: int, inode: int, offset: int, line: int, cp: int) -> Optional[_Record]:
        """Return the exact record if buffered, else ``None``."""
        return self._tree.get((block, inode, offset, line, cp))

    def records_for_key(self, block: int, inode: int, offset: int, line: int) -> List[_Record]:
        """All buffered records with the given reference identity."""
        start = (block, inode, offset, line, 0)
        stop = (block, inode, offset, line + 1, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def records_for_block(self, block: int) -> List[_Record]:
        """All buffered records for one physical block."""
        start = (block, 0, 0, 0, 0)
        stop = (block + 1, 0, 0, 0, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def records_for_block_range(self, first_block: int, num_blocks: int) -> List[_Record]:
        """All buffered records for blocks in ``[first_block, first_block + num_blocks)``."""
        start = (first_block, 0, 0, 0, 0)
        stop = (first_block + num_blocks, 0, 0, 0, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def may_contain_block(self, block: int) -> bool:
        """Cheap membership check on the distinct-block index."""
        return block in self._block_counts

    def distinct_blocks(self) -> List[int]:
        """Sorted distinct physical blocks present in the store."""
        return sorted(self._block_counts)

    def __iter__(self) -> Iterator[_Record]:
        """Yield records in ``(block, inode, offset, line, cp)`` order."""
        for _, record in self._tree.items():
            yield record

    def memory_estimate_bytes(self) -> int:
        """Rough memory footprint, for the space-overhead accounting."""
        # Each tree node holds a 5-tuple key and a record; ~200 bytes is a
        # conservative per-entry figure for CPython.
        return len(self._tree) * 200

    # ------------------------------------------------------------ internals

    def _check_type(self, record: _Record) -> None:
        if self.table == "from" and not isinstance(record, FromRecord):
            raise TypeError(f"From write store cannot hold {type(record).__name__}")
        if self.table == "to" and not isinstance(record, ToRecord):
            raise TypeError(f"To write store cannot hold {type(record).__name__}")
