"""The in-memory write store (WS).

Between consistency points every back-reference update lands in a write
store.  The paper describes it as a balanced tree sorted by ``(block, inode,
offset, line)`` and then by the boundary CP number (§5.1); what that sort
order actually has to buy is:

* flushing -- the read store is a densely packed B-tree built bottom-up from
  an in-order traversal, so the flush must hand the builder a fully sorted
  stream, and
* proactive pruning -- when a reference is removed, the manager can look up a
  matching From entry with the same key and the current CP number and delete
  the pair outright (the reference never survived a consistency point, so it
  must never reach disk).

Neither requirement needs the buffer to be sorted *at every instant*, so
:class:`WriteStore` is a memtable rather than a tree: a hash map keyed by the
full record identity ``(block, inode, offset, line, cp)`` gives O(1) insert,
exact-match lookup and removal (pruning stays exact), and a sorted snapshot
of the records is built lazily -- once per flush, or when a range query needs
ordered records -- with a dirty flag tracking whether the snapshot is stale.
One ``sorted()`` pass over packed record tuples at consistency-point time is
far cheaper than per-operation tree rebalancing, and record tuples compare in
exactly the sort-key order (their fields *are* the sort key), so no key
function is needed.

The previous red-black-tree implementation is retained as
:class:`RBTreeWriteStore` so that equivalence tests and the hot-path
microbenchmark (``benchmarks/bench_hotpath.py``) can drive both back ends
through identical operation sequences.

There is one write store per table (From and To).  The store also remembers
the set of distinct physical blocks it contains so that queries can consult
it cheaply and the flush can size its Bloom filter.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.records import FromRecord, ToRecord
from repro.util.rbtree import RedBlackTree

__all__ = ["WriteStore", "FrozenWriteStore", "RBTreeWriteStore"]

_Record = Union[FromRecord, ToRecord]


class FrozenWriteStore:
    """An immutable point-in-time view of a :class:`WriteStore`.

    Produced by :meth:`WriteStore.freeze` when a catalogue snapshot is
    pinned (see :mod:`repro.core.catalogue`): the view wraps the store's
    sorted snapshot list, which the live store *replaces* -- never mutates
    in place -- on every re-sort and on :meth:`WriteStore.clear`, so the
    frozen list stays valid forever without copying a single record.  It
    exposes exactly the read surface the query gather step needs.
    """

    __slots__ = ("_records",)

    def __init__(self, records: List[_Record]) -> None:
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __iter__(self) -> Iterator[_Record]:
        return iter(self._records)

    def records_for_block_range(self, first_block: int, num_blocks: int) -> List[_Record]:
        """All frozen records for blocks in ``[first_block, first_block + num_blocks)``."""
        records = self._records
        lo = bisect_left(records, (first_block,))
        hi = bisect_left(records, (first_block + num_blocks,))
        return records[lo:hi]


class WriteStore:
    """A buffered set of From or To records with lazily sorted iteration.

    Parameters
    ----------
    table:
        ``"from"`` or ``"to"``; determines the record type accepted and is
        reported in diagnostics.
    """

    def __init__(self, table: str) -> None:
        if table not in ("from", "to"):
            raise ValueError(f"unknown table {table!r}")
        self.table = table
        self._record_class = FromRecord if table == "from" else ToRecord
        # The memtable: record identity -> record.  A From/To record is a
        # NamedTuple whose fields are exactly its sort key, so the record can
        # serve as its own hash key and plain 5-tuples probe it directly.
        self._records: Dict[_Record, _Record] = {}
        self._block_counts: Dict[int, int] = {}
        # Lazily maintained sorted snapshot of self._records.values(), plus
        # the records inserted since it was last built.  While no removal has
        # intervened, a stale snapshot can be refreshed by merging these two
        # sorted runs (O(n)) instead of a full O(n log n) re-sort, which
        # keeps interleaved update/query workloads cheap.
        self._sorted: List[_Record] = []
        self._pending: List[_Record] = []
        self._dirty = False
        self._removed_since_sort = False
        # Guards the containers against concurrent reader threads freezing
        # (or range-reading) the store while the owning thread mutates it.
        # Single-threaded use pays one uncontended acquire per operation.
        self._lock = threading.Lock()
        self.inserts = 0
        self.removals = 0

    # ------------------------------------------------------------ mutation

    def insert(self, record: _Record) -> None:
        """Add a record.  Duplicate keys (same identity and CP) are idempotent."""
        self._check_type(record)
        with self._lock:
            records = self._records
            if record not in records:
                records[record] = record
                counts = self._block_counts
                block = record[0]
                counts[block] = counts.get(block, 0) + 1
                self._pending.append(record)
                self._dirty = True
            self.inserts += 1

    def remove(self, record: _Record) -> bool:
        """Remove a record if present; returns True when something was removed."""
        self._check_type(record)
        return self.remove_key(*record)

    def remove_key(self, block: int, inode: int, offset: int, line: int, cp: int) -> bool:
        """O(1) removal by identity, without materialising a record object.

        This is the proactive-pruning fast path: the update handler can test
        and delete in a single hash-map operation.
        """
        with self._lock:
            record = self._records.pop((block, inode, offset, line, cp), None)
            if record is None:
                return False
            self.removals += 1
            self._dirty = True
            self._removed_since_sort = True
            count = self._block_counts.get(block, 0) - 1
            if count <= 0:
                self._block_counts.pop(block, None)
            else:
                self._block_counts[block] = count
            return True

    def clear(self) -> None:
        """Drop every buffered record (after a successful flush).

        A snapshot previously returned by :meth:`sorted_records` (or held by
        a :class:`FrozenWriteStore`) stays valid; the store starts over with
        fresh containers.
        """
        with self._lock:
            self._records = {}
            self._block_counts = {}
            self._sorted = []
            self._pending = []
            self._dirty = False
            self._removed_since_sort = False

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def contains(self, block: int, inode: int, offset: int, line: int, cp: int) -> bool:
        """Exact-match test used by proactive pruning."""
        return (block, inode, offset, line, cp) in self._records

    def find(self, block: int, inode: int, offset: int, line: int, cp: int) -> Optional[_Record]:
        """Return the exact record if buffered, else ``None``."""
        return self._records.get((block, inode, offset, line, cp))

    def _sorted_records_locked(self) -> List[_Record]:
        """:meth:`sorted_records` body; caller must hold :attr:`_lock`."""
        if self._dirty:
            # Records are NamedTuples whose field order is the sort order, so
            # they compare natively -- no key function, no tuple allocation.
            # Every rebuild binds a *new* list: a previously returned
            # snapshot (or a FrozenWriteStore wrapping one) never changes.
            if self._removed_since_sort:
                self._sorted = sorted(self._records.values())
            else:
                # Only inserts since the last snapshot: append the (small)
                # sorted batch of new records and re-sort; timsort detects
                # the two runs and gallops through the merge in O(n).
                merged = self._sorted + sorted(self._pending)
                merged.sort()
                self._sorted = merged
            self._pending = []
            self._removed_since_sort = False
            self._dirty = False
        return self._sorted

    def sorted_records(self) -> List[_Record]:
        """The records in ``(block, inode, offset, line, cp)`` order.

        Rebuilds the snapshot only when the store changed since the last call
        (sort-on-demand).  The returned list is the store's internal snapshot
        -- treat it as read-only.
        """
        with self._lock:
            return self._sorted_records_locked()

    def freeze(self) -> FrozenWriteStore:
        """An immutable view of the store's current contents.

        O(1) when the sorted snapshot is current (the common case for a
        read-mostly phase); otherwise it pays the one sort a query would have
        paid anyway.  The frozen view shares the snapshot list -- safe
        because the store replaces, never mutates, that list.
        """
        with self._lock:
            return FrozenWriteStore(self._sorted_records_locked())

    def records_for_key(self, block: int, inode: int, offset: int, line: int) -> List[_Record]:
        """All buffered records with the given reference identity."""
        with self._lock:
            snapshot = self._sorted_records_locked()
            lo = bisect_left(snapshot, (block, inode, offset, line))
            hi = bisect_left(snapshot, (block, inode, offset, line + 1))
            return snapshot[lo:hi]

    def records_for_block(self, block: int) -> List[_Record]:
        """All buffered records for one physical block."""
        return self.records_for_block_range(block, 1)

    def records_for_block_range(self, first_block: int, num_blocks: int) -> List[_Record]:
        """All buffered records for blocks in ``[first_block, first_block + num_blocks)``."""
        with self._lock:
            if num_blocks == 1 and first_block not in self._block_counts:
                return []  # point miss: answered from the block index, no sort
            snapshot = self._sorted_records_locked()
            lo = bisect_left(snapshot, (first_block,))
            hi = bisect_left(snapshot, (first_block + num_blocks,))
            return snapshot[lo:hi]

    def may_contain_block(self, block: int) -> bool:
        """Cheap membership check on the distinct-block index."""
        return block in self._block_counts

    def distinct_blocks(self) -> List[int]:
        """Sorted distinct physical blocks present in the store."""
        with self._lock:
            return sorted(self._block_counts)

    def __iter__(self) -> Iterator[_Record]:
        """Yield records in ``(block, inode, offset, line, cp)`` order."""
        return iter(self.sorted_records())

    def memory_estimate_bytes(self) -> int:
        """Rough memory footprint, for the space-overhead accounting."""
        # Each entry holds a record NamedTuple plus dict slots and its share
        # of the sorted snapshot; ~200 bytes is a conservative per-entry
        # figure for CPython (kept identical to the tree-based estimate so
        # the space reports stay comparable across versions).
        return len(self._records) * 200

    # ------------------------------------------------------------ internals

    def _check_type(self, record: _Record) -> None:
        if type(record) is not self._record_class:
            if self.table == "from" and not isinstance(record, FromRecord):
                raise TypeError(f"From write store cannot hold {type(record).__name__}")
            if self.table == "to" and not isinstance(record, ToRecord):
                raise TypeError(f"To write store cannot hold {type(record).__name__}")


class RBTreeWriteStore:
    """The original red-black-tree write store, kept as a reference back end.

    Semantically identical to :class:`WriteStore` (the equivalence test
    drives both through the same operation sequences); an order of magnitude
    slower on the update path because every insert/remove rebalances the
    tree.  Used by ``benchmarks/bench_hotpath.py`` to measure the speedup.
    """

    def __init__(self, table: str) -> None:
        if table not in ("from", "to"):
            raise ValueError(f"unknown table {table!r}")
        self.table = table
        self._tree = RedBlackTree()
        self._block_counts: Dict[int, int] = {}
        self.inserts = 0
        self.removals = 0

    # ------------------------------------------------------------ mutation

    def insert(self, record: _Record) -> None:
        self._check_type(record)
        key = record.sort_key()
        if key not in self._tree:
            self._tree.insert(key, record)
            self._block_counts[record.block] = self._block_counts.get(record.block, 0) + 1
        self.inserts += 1

    def remove(self, record: _Record) -> bool:
        self._check_type(record)
        key = record.sort_key()
        if key not in self._tree:
            return False
        self._tree.delete(key)
        self.removals += 1
        count = self._block_counts.get(record.block, 0) - 1
        if count <= 0:
            self._block_counts.pop(record.block, None)
        else:
            self._block_counts[record.block] = count
        return True

    def remove_key(self, block: int, inode: int, offset: int, line: int, cp: int) -> bool:
        key = (block, inode, offset, line, cp)
        if key not in self._tree:
            return False
        self._tree.delete(key)
        self.removals += 1
        count = self._block_counts.get(block, 0) - 1
        if count <= 0:
            self._block_counts.pop(block, None)
        else:
            self._block_counts[block] = count
        return True

    def clear(self) -> None:
        self._tree.clear()
        self._block_counts.clear()

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._tree)

    def __bool__(self) -> bool:
        return bool(self._tree)

    def contains(self, block: int, inode: int, offset: int, line: int, cp: int) -> bool:
        return (block, inode, offset, line, cp) in self._tree

    def find(self, block: int, inode: int, offset: int, line: int, cp: int) -> Optional[_Record]:
        return self._tree.get((block, inode, offset, line, cp))

    def sorted_records(self) -> List[_Record]:
        return [record for _, record in self._tree.items()]

    def records_for_key(self, block: int, inode: int, offset: int, line: int) -> List[_Record]:
        start = (block, inode, offset, line, 0)
        stop = (block, inode, offset, line + 1, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def records_for_block(self, block: int) -> List[_Record]:
        start = (block, 0, 0, 0, 0)
        stop = (block + 1, 0, 0, 0, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def records_for_block_range(self, first_block: int, num_blocks: int) -> List[_Record]:
        start = (first_block, 0, 0, 0, 0)
        stop = (first_block + num_blocks, 0, 0, 0, 0)
        return [record for _, record in self._tree.items_range(start, stop)]

    def may_contain_block(self, block: int) -> bool:
        return block in self._block_counts

    def distinct_blocks(self) -> List[int]:
        return sorted(self._block_counts)

    def __iter__(self) -> Iterator[_Record]:
        for _, record in self._tree.items():
            yield record

    def memory_estimate_bytes(self) -> int:
        return len(self._tree) * 200

    # ------------------------------------------------------------ internals

    def _check_type(self, record: _Record) -> None:
        if self.table == "from" and not isinstance(record, FromRecord):
            raise TypeError(f"From write store cannot hold {type(record).__name__}")
        if self.table == "to" and not isinstance(record, ToRecord):
            raise TypeError(f"To write store cannot hold {type(record).__name__}")
