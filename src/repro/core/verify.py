"""Verification: cross-checking Backlog against the file system tree.

The paper validates its implementation with "a utility program that walks the
entire file system tree, reconstructs the back references, and then compares
them with the database produced by our algorithm" (§5).  This module is that
utility for the simulator: it enumerates every reference reachable from the
live volumes and every retained snapshot, asks Backlog who owns each of those
blocks, and reports any disagreement in either direction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.backlog import Backlog
from repro.fsim.filesystem import FileSystem

__all__ = ["Mismatch", "VerificationReport", "verify_backlog"]


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between the file system and the database."""

    kind: str  # "missing" (FS has it, Backlog does not) or "spurious"
    block: int
    inode: int
    offset: int
    line: int
    version: int

    def __str__(self) -> str:
        owner = f"block {self.block} <- (inode {self.inode}, offset {self.offset}, line {self.line}, version {self.version})"
        return f"{self.kind}: {owner}"


@dataclass
class VerificationReport:
    """Result of a full verification pass."""

    references_checked: int = 0
    blocks_checked: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} mismatches"
        return (
            f"verified {self.references_checked} references over "
            f"{self.blocks_checked} blocks: {status}"
        )


def _expected_references(fs: FileSystem) -> Dict[Tuple[int, int, int, int], Set[int]]:
    """Ground truth: (block, inode, offset, line) -> set of versions present.

    The live image of each volume is represented by the current global CP
    number; retained snapshots contribute their version numbers.
    """
    expected: Dict[Tuple[int, int, int, int], Set[int]] = defaultdict(set)
    current_cp = fs.global_cp
    for block, inode, offset, line in fs.iter_live_references():
        expected[(block, inode, offset, line)].add(current_cp)
    for block, inode, offset, line, version in fs.iter_snapshot_references():
        expected[(block, inode, offset, line)].add(version)
    return expected


def verify_backlog(fs: FileSystem, backlog: Backlog, check_spurious: bool = True) -> VerificationReport:
    """Walk the file system and compare reconstructed back references.

    Parameters
    ----------
    fs / backlog:
        The simulated file system and the Backlog instance attached to it.
        Updates still buffered in the write stores are visible to queries, so
        verification does not require a checkpoint first.
    check_spurious:
        When True (default) the check is bidirectional: back references the
        database reports for a retained version must exist in the
        corresponding file system image.
    """
    report = VerificationReport()
    expected = _expected_references(fs)
    blocks = sorted({key[0] for key in expected})
    report.blocks_checked = len(blocks)

    # Group expectations by block so one query serves all owners of the block.
    expected_by_block: Dict[int, List[Tuple[Tuple[int, int, int, int], Set[int]]]] = defaultdict(list)
    for key, versions in expected.items():
        expected_by_block[key[0]].append((key, versions))

    for block in blocks:
        results = backlog.query(block)
        found: Dict[Tuple[int, int, int, int], List[Tuple[int, int]]] = {
            (ref.block, ref.inode, ref.offset, ref.line): list(ref.ranges) for ref in results
        }
        for key, versions in expected_by_block[block]:
            report.references_checked += 1
            ranges = found.get(key)
            for version in sorted(versions):
                if ranges is None or not any(start <= version < stop for start, stop in ranges):
                    report.mismatches.append(Mismatch("missing", *key, version))
        if not check_spurious:
            continue
        valid_versions_cache: Dict[int, List[int]] = {}
        for ref in results:
            key = (ref.block, ref.inode, ref.offset, ref.line)
            line = ref.line
            if line not in valid_versions_cache:
                current = fs.global_cp if line in fs.volumes else None
                valid_versions_cache[line] = fs.snapshots.retained_versions(line, current)
            claimed_versions = {
                version
                for version in valid_versions_cache[line]
                if ref.covers_version(version)
            }
            truth = expected.get(key, set())
            for version in sorted(claimed_versions - truth):
                # Zombie versions are retained for inheritance purposes even
                # though their images are gone; claims against them are not
                # spurious.
                if fs.snapshots.is_zombie((line, version)):
                    continue
                report.mismatches.append(Mismatch("spurious", *key, version))
    return report
