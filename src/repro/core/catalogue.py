"""Snapshot-isolated views of the back-reference database.

The LSM catalogue's runs are immutable once written -- the same insight
LevelDB-style stores exploit for their version sets -- so a reader does not
need to exclude writers; it needs an *immutable view* of which runs (and
which in-memory records) existed when it started.  Before this module, a
query pipeline read the live catalogue and the live write stores, and a
concurrent ``checkpoint()``/``maintain()`` could delete a run file out from
under an open cursor mid-stream.

:class:`Catalogue` composes the pieces of that view:

* :meth:`Catalogue.select` pins the current catalogue version in the
  :class:`~repro.core.lsm.RunManager` (a refcount per version) and freezes
  the two write stores and the deletion vector, returning a
  :class:`CatalogueSnapshot`;
* while the snapshot is pinned, no run file it references is ever deleted --
  ``replace_partition``/``quarantine_run`` publish a new catalogue version
  and *defer* file deletion (with a durable ``.retired`` tombstone) until
  the last pin that can still see the file drops (epoch reclamation);
* :meth:`Catalogue.publishing` is the flush path's atomicity guard: run
  registration and the write-store clear happen under it, and ``select``
  takes the same lock, so a snapshot observes a consistency point either
  entirely (new runs, empty stores) or not at all (no runs, full stores) --
  never a state where flushed records are both on disk and in memory.

A snapshot is cheap: one lock acquisition, a shallow copy of the partition
-> runs mapping, and three O(1) freezes (the write stores share their sorted
snapshot lists, which the live stores replace rather than mutate).  Releasing
is mandatory -- the query engine releases in the same ``finally`` blocks
that finalise query statistics -- and idempotent.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.deletion_vector import DeletionVector
from repro.core.lsm import RunManager
from repro.core.read_store import ReadStoreReader
from repro.core.write_store import FrozenWriteStore, WriteStore

__all__ = ["Catalogue", "CatalogueSnapshot"]


class CatalogueSnapshot:
    """A pinned, immutable view of runs + write stores + deletion vector.

    Everything the query read path consults, fixed at pin time:

    * :meth:`runs_for` / :meth:`runs_for_block_range` answer from the copied
      run lists -- concurrent flushes and compactions are invisible;
    * :attr:`ws_from` / :attr:`ws_to` are :class:`~repro.core.write_store.
      FrozenWriteStore` views of the in-memory records;
    * :attr:`deletion_vector` keeps the suppressions the snapshot's runs
      still contain even if a compaction clears the live vector mid-scan.

    The snapshot is a context manager; :meth:`release` (idempotent, thread
    safe) drops the pin, which may reclaim deferred-delete files.
    """

    __slots__ = ("version", "ws_from", "ws_to", "deletion_vector",
                 "_runs", "_manager", "_release_lock")

    def __init__(self, version: int, runs: Dict[int, List[ReadStoreReader]],
                 ws_from: FrozenWriteStore, ws_to: FrozenWriteStore,
                 deletion_vector: DeletionVector, manager: RunManager) -> None:
        self.version = version
        self.ws_from = ws_from
        self.ws_to = ws_to
        self.deletion_vector = deletion_vector
        self._runs = runs
        self._manager: Optional[RunManager] = manager
        self._release_lock = threading.Lock()

    # ------------------------------------------------------------- reading

    def partitions(self) -> List[int]:
        return sorted(self._runs)

    def runs_for(self, partition: int) -> List[ReadStoreReader]:
        return self._runs.get(partition, [])

    def runs_for_block_range(self, partitions: Sequence[int], first_block: int,
                             num_blocks: int) -> List[ReadStoreReader]:
        """Runs whose Bloom filter (and block bounds) admit the given range."""
        candidates: List[ReadStoreReader] = []
        for partition in partitions:
            for run in self._runs.get(partition, ()):
                if run.might_contain_range(first_block, num_blocks):
                    candidates.append(run)
        return candidates

    def run_names(self) -> List[str]:
        """Every run file this snapshot holds pinned (diagnostics, tests)."""
        return [run.name for runs in self._runs.values() for run in runs]

    # ------------------------------------------------------------ lifetime

    @property
    def released(self) -> bool:
        return self._manager is None

    def release(self) -> None:
        """Drop the pin (idempotent); may reclaim deferred-delete files."""
        with self._release_lock:
            manager, self._manager = self._manager, None
        if manager is not None:
            manager.release_version(self.version)

    def acquire(self):
        """Take an extra pin on this snapshot's version; returns its releaser.

        The query fan-out calls this when it submits a partition gather to a
        worker: the job holds its own pin (released exactly once in the job's
        ``finally``) so the run files it reads survive even if the cursor
        that spawned it releases the snapshot before the job completes.
        Raises ``ValueError`` if the snapshot is already released -- there is
        no pin left to extend.
        """
        with self._release_lock:
            manager = self._manager
            if manager is None:
                raise ValueError("cannot acquire a released CatalogueSnapshot")
            manager.acquire_version(self.version)
        version = self.version
        return lambda: manager.release_version(version)

    def __enter__(self) -> "CatalogueSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class Catalogue:
    """The versioned composition the query engine pins snapshots from."""

    def __init__(self, run_manager: RunManager, ws_from: WriteStore,
                 ws_to: WriteStore, deletion_vector: DeletionVector) -> None:
        self.run_manager = run_manager
        self.ws_from = ws_from
        self.ws_to = ws_to
        self.deletion_vector = deletion_vector
        # Serialises select() against the flush path's registration+clear
        # critical section (see ``publishing``).  Never held while doing
        # I/O; snapshot construction under it is a few dict/list copies.
        self._publish_lock = threading.Lock()

    def select(self) -> CatalogueSnapshot:
        """Pin the current database view and return its snapshot."""
        with self._publish_lock:
            version, runs = self.run_manager.pin_catalogue()
            return CatalogueSnapshot(
                version, runs,
                self.ws_from.freeze(), self.ws_to.freeze(),
                self.deletion_vector.freeze(),
                self.run_manager,
            )

    def publishing(self) -> "threading.Lock":
        """The flush path's publish guard, used as a context manager.

        ``Backlog.on_consistency_point`` holds this across run registration
        and the write-store clears, making the CP's visibility switch atomic
        with respect to :meth:`select`: a snapshot sees the flushed records
        either only in the new Level-0 runs or only in the write stores.
        """
        return self._publish_lock

    def pinned_snapshots(self) -> int:
        """Outstanding pins across all versions (diagnostics and tests)."""
        return self.run_manager.pinned_readers()
