"""Deletion vectors: hiding read-store tuples without rewriting runs.

During normal operation nothing is ever deleted from a read store -- masking
handles snapshot deletion.  Maintenance operations that *relocate* blocks
(defragmentation, volume shrinking) are different: once a block has moved,
its old back references are stale and must not be returned by queries, yet
rewriting every run that mentions the block would be far too expensive.

Following C-Store, Backlog keeps a *deletion vector*: an in-memory (and
small) set of record identities that the query engine filters out of every
read-store result, completely transparently to the query logic (§5.1).  When
the vector grows large, compaction folds it into the rewritten runs and
clears it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set, Tuple

from repro.core.records import (
    CombinedRecord,
    FromRecord,
    ReferenceKey,
    ToRecord,
    pack_key_prefix,
)

__all__ = ["DeletionVector"]


class DeletionVector:
    """A set of suppressed back-reference identities.

    Entries are :class:`ReferenceKey` tuples -- suppressing a key hides every
    record (From, To, or Combined) with that ``(block, inode, offset, line)``
    identity.  This matches the relocation use case: when a block moves, all
    historical references to the old physical address become irrelevant at
    once.
    """

    def __init__(self) -> None:
        self._keys: Set[ReferenceKey] = set()
        self._blocks: Set[int] = set()
        # Packed big-endian mirrors of the two sets, so the columnar query
        # pipeline can test a row's identity with two byte-slice probes and
        # zero per-record unpacking.  Kept in lock step by suppress()/
        # clear(); frozen views share them like they share the tuple sets.
        self._row_keys: Set[bytes] = set()
        self._row_blocks: Set[bytes] = set()
        # Cached freeze() view.  Valid until clear() rebinds the containers:
        # suppress() need not invalidate it, because views *share* the sets
        # (new suppressions are visible to existing views by design).
        self._frozen_view: Optional["DeletionVector"] = None

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def suppress(self, block: int, inode: int, offset: int, line: int) -> None:
        """Hide one reference identity."""
        self._keys.add(ReferenceKey(block, inode, offset, line))
        self._blocks.add(block)
        self._row_keys.add(pack_key_prefix(block, inode, offset, line))
        self._row_blocks.add(pack_key_prefix(block))

    def suppress_block(self, block: int, keys: Iterable[ReferenceKey]) -> None:
        """Hide several identities of one relocated block at once."""
        for key in keys:
            if key.block != block:
                raise ValueError(f"key {key} does not belong to block {block}")
            self._keys.add(key)
            self._row_keys.add(pack_key_prefix(*key))
        self._blocks.add(block)
        self._row_blocks.add(pack_key_prefix(block))

    def is_suppressed(self, record) -> bool:
        """True when a From/To/Combined record should be hidden."""
        if record.block not in self._blocks:
            return False
        return ReferenceKey(record.block, record.inode, record.offset, record.line) in self._keys

    def filter(self, records: Iterable) -> Iterator:
        """Yield only records that are not suppressed."""
        for record in records:
            if not self.is_suppressed(record):
                yield record

    def is_row_suppressed(self, row: bytes) -> bool:
        """True when a big-endian record row should be hidden.

        The columnar counterpart of :meth:`is_suppressed`: the cheap
        block-slice probe first, the full 32-byte identity probe only for
        rows of an affected block.
        """
        if row[:8] not in self._row_blocks:
            return False
        return row[:32] in self._row_keys

    def filter_rows(self, rows: Iterable[bytes]) -> Iterator[bytes]:
        """Yield only big-endian rows that are not suppressed."""
        row_blocks = self._row_blocks
        row_keys = self._row_keys
        for row in rows:
            if row[:8] not in row_blocks or row[:32] not in row_keys:
                yield row

    def touches_block(self, block: int) -> bool:
        """Cheap test used to skip the key lookup for unaffected blocks."""
        return block in self._blocks

    def keys(self) -> Set[ReferenceKey]:
        """The suppressed identities (compaction folds these into rewrites)."""
        return set(self._keys)

    def freeze(self) -> "DeletionVector":
        """A view of the current suppressions for a pinned catalogue snapshot.

        The view *shares* the live sets rather than copying them, which is
        what a snapshot needs: :meth:`clear` after a compaction replaces the
        live containers, so a reader pinned over the *pre*-compaction runs
        keeps filtering with the suppressions those runs still contain --
        clearing must never resurrect suppressed tuples mid-scan.  New
        suppressions added between a ``clear`` and the next pin are visible
        to the view immediately (monotone hiding, same as the live path).
        """
        view = self._frozen_view
        if view is None:
            view = DeletionVector()
            view._keys = self._keys
            view._blocks = self._blocks
            view._row_keys = self._row_keys
            view._row_blocks = self._row_blocks
            self._frozen_view = view
        return view

    def clear(self) -> None:
        """Forget all suppressions (after compaction has rewritten the runs).

        Binds fresh containers instead of emptying the old ones: any frozen
        view pinned before the clear keeps the suppressions that its (old,
        not-yet-rewritten) runs rely on.
        """
        self._keys = set()
        self._blocks = set()
        self._row_keys = set()
        self._row_blocks = set()
        self._frozen_view = None

    def memory_estimate_bytes(self) -> int:
        """Rough footprint; the vector is expected to stay small."""
        return len(self._keys) * 120 + len(self._blocks) * 60
