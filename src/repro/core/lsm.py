"""Stepped-merge organisation of read-store runs.

Backlog follows the Stepped-Merge variant of the LSM-tree (§5.1): each
consistency point writes the whole write store as a new *Level-0 run* rather
than merging it into an existing tree (a consistency point must make all
accumulated updates durable, so partial merges are not an option).  Level-0
runs accumulate until database maintenance merges them -- together with any
existing Combined run -- into a single compacted run per partition.

:class:`RunManager` is the catalogue of live runs.  It tracks, for every
partition, the ordered list of runs per table, keeps their Bloom filters in
memory, provides merged iteration for compaction, and answers the query
engine's "which runs might contain this block range?" question.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.read_store import ReadStoreReader, ReadStoreWriter
from repro.core.records import CombinedRecord, FromRecord, ToRecord
from repro.fsim.blockdev import StorageBackend
from repro.fsim.cache import PageCache

__all__ = ["RunManager", "run_name", "parse_run_name", "merge_sorted_runs"]

TABLES = ("from", "to", "combined")


def run_name(partition: int, table: str, level: str, sequence: int) -> str:
    """Canonical file name for a run: ``p<partition>/<table>/<level>_<sequence>``."""
    return f"p{partition:06d}/{table}/{level}_{sequence:010d}"


def parse_run_name(name: str) -> Optional[Tuple[int, str, str, int]]:
    """Parse a run file name into ``(partition, table, level, sequence)``.

    The inverse of :func:`run_name`.  Returns ``None`` for files that are not
    Backlog runs (a shared backend may contain other files).
    """
    parts = name.split("/")
    if len(parts) != 3:
        return None
    partition_part, table, leaf = parts
    if not partition_part.startswith("p") or not partition_part[1:].isdigit():
        return None
    if table not in TABLES:
        return None
    level, separator, sequence = leaf.rpartition("_")
    if not separator or not level.isalnum() or not sequence.isdigit():
        return None
    return int(partition_part[1:]), table, level, int(sequence)


def merge_sorted_runs(iterators: Sequence[Iterator]) -> Iterator:
    """Merge several already-sorted record iterators into one sorted stream.

    Merging is cheap because every run is sorted identically (§5.2); this is
    the merge used by compaction.  Records are NamedTuples whose field order
    *is* the sort-key order, so ``heapq.merge`` compares them natively --
    no per-heap-operation ``sort_key()`` allocation, and ties preserve input
    order (earlier iterators win), matching the old index tie-break.
    """
    return heapq.merge(*iterators)


@dataclass
class _PartitionRuns:
    """Run lists for one partition, per table, in creation order."""

    runs: Dict[str, List[ReadStoreReader]] = field(default_factory=lambda: {t: [] for t in TABLES})

    def all_runs(self) -> List[ReadStoreReader]:
        return [run for table in TABLES for run in self.runs[table]]


class RunManager:
    """Catalogue of on-disk read-store runs, organised by partition and table.

    Catalogue mutation is thread-safe: the flush and maintenance executors
    allocate sequence numbers and swap partitions from several workers, and
    both :meth:`next_sequence` (a read-modify-write on the counter) and the
    catalogue dict mutations take the manager's lock.  The read side
    (``runs_for``, the aggregate accessors, ``iter_table``) stays lock-free:
    queries never run concurrently with flush or maintenance, and a
    maintenance worker only ever reads the runs of the partition it owns,
    which no other worker touches.
    """

    def __init__(self, backend: StorageBackend, cache: Optional[PageCache] = None,
                 verify_checksums: bool = True) -> None:
        self.backend = backend
        self.cache = cache
        self.verify_checksums = verify_checksums
        self._partitions: Dict[int, _PartitionRuns] = {}
        self._sequence = 0
        self._lock = threading.Lock()
        #: Names of damaged runs dropped from the catalogue.  The files stay
        #: on the backend (``repro scrub`` reports and reclaims them) so a
        #: post-mortem can inspect the corruption.
        self.quarantined: List[str] = []

    # --------------------------------------------------------------- writing

    def next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence

    def reserve_through(self, sequence: int) -> None:
        """Advance the counter so future names start past ``sequence``.

        Recovery uses this after scanning the backend for the highest
        sequence number already on disk, so rebuilt catalogues never
        allocate a name that collides with an existing file.
        """
        with self._lock:
            if sequence > self._sequence:
                self._sequence = sequence

    def write_run(self, partition: int, table: str, level: str,
                  records: Iterable, bloom_bits: int) -> Optional[ReadStoreReader]:
        """Write a new run and register it.  Returns None for empty inputs."""
        name = run_name(partition, table, level, self.next_sequence())
        reader = self.build_run(name, table, records, bloom_bits)
        if reader is None:
            return None
        self.add_run(partition, table, reader)
        return reader

    def build_run(self, name: str, table: str, records: Iterable,
                  bloom_bits: int, retry=None) -> Optional[ReadStoreReader]:
        """Write a run under a pre-allocated name without registering it.

        The parallel flush path allocates every run name up front (in the
        exact order the serial loop would), fans the ``build_run`` calls out
        across workers, and registers the finished readers afterwards in
        allocation order -- which is what keeps a parallel flush
        byte-identical to a serial one.  Returns ``None`` (and creates no
        file) for an empty input.

        ``retry`` (a :class:`~repro.core.executor.RetryPolicy`) is for
        direct callers only: ``records`` must then be re-iterable (a
        sequence, not a generator).  The executors apply their own policy
        around the whole job, so ``Backlog`` leaves this ``None`` to avoid
        multiplying attempts.
        """
        def attempt() -> Optional[ReadStoreReader]:
            writer = ReadStoreWriter(self.backend, name, table, bloom_bits=bloom_bits)
            reader = writer.build(records)
            if reader is None:
                return None
            # Re-open through the shared cache so queries benefit from it;
            # keep the freshly built Bloom filter (no reload from disk).
            return ReadStoreReader(self.backend, name, cache=self.cache,
                                   bloom=reader.bloom,
                                   verify_checksums=self.verify_checksums)

        return retry.run(attempt) if retry is not None else attempt()

    def add_run(self, partition: int, table: str, reader: ReadStoreReader) -> None:
        if table not in TABLES:
            raise ValueError(f"unknown table {table!r}")
        with self._lock:
            self._partitions.setdefault(partition, _PartitionRuns()).runs[table].append(reader)

    def replace_partition(self, partition: int,
                          new_runs: Dict[str, List[ReadStoreReader]]) -> List[str]:
        """Swap in compacted runs for ``partition`` and delete the old files.

        Returns the names of the deleted run files.  Safe to call for
        distinct partitions from concurrent maintenance workers: the
        catalogue swap happens under the manager's lock, and the file
        deletions and cache invalidations only touch the replaced
        partition's own runs.
        """
        replacement = _PartitionRuns()
        for table, runs in new_runs.items():
            if table not in TABLES:
                raise ValueError(f"unknown table {table!r}")
            replacement.runs[table] = list(runs)
        with self._lock:
            old = self._partitions.get(partition, _PartitionRuns())
            self._partitions[partition] = replacement
        deleted = []
        for run in old.all_runs():
            if self.backend.exists(run.name):
                self.backend.delete(run.name)
            if self.cache is not None:
                self.cache.invalidate_file(run.name)
            deleted.append(run.name)
        return deleted

    def quarantine_run(self, name: str) -> bool:
        """Drop a damaged run from the catalogue; the file stays on disk.

        Returns ``True`` if the run was catalogued (and is now quarantined);
        ``False`` if no such run is registered -- e.g. it was already
        quarantined by a concurrent detection, or the name never existed.
        Queries re-answered after a quarantine see the surviving runs plus
        the write stores: degraded, but correct with respect to the
        remaining data.  ``repro scrub --reclaim`` deletes the file.
        """
        found = False
        with self._lock:
            for entry in self._partitions.values():
                for runs in entry.runs.values():
                    for index, run in enumerate(runs):
                        if run.name == name:
                            del runs[index]
                            found = True
                            break
                    if found:
                        break
                if found:
                    break
            if found:
                self.quarantined.append(name)
        if found and self.cache is not None:
            self.cache.invalidate_file(name)
        return found

    # --------------------------------------------------------------- queries

    def partitions(self) -> List[int]:
        return sorted(self._partitions)

    def runs_for(self, partition: int, table: Optional[str] = None) -> List[ReadStoreReader]:
        entry = self._partitions.get(partition)
        if entry is None:
            return []
        if table is None:
            return entry.all_runs()
        return list(entry.runs[table])

    def runs_for_block_range(self, partitions: Sequence[int], first_block: int,
                             num_blocks: int) -> List[ReadStoreReader]:
        """Runs whose Bloom filter (and block bounds) admit the given range."""
        candidates: List[ReadStoreReader] = []
        for partition in partitions:
            for run in self.runs_for(partition):
                if run.might_contain_range(first_block, num_blocks):
                    candidates.append(run)
        return candidates

    def run_count(self, table: Optional[str] = None) -> int:
        return sum(len(self.runs_for(p, table)) for p in self.partitions())

    def level0_run_count(self) -> int:
        """Number of runs written since the last compaction of their partition.

        Matches on the parsed level component of the run name, so compacted
        runs (level ``compact``) -- or any other level whose partition or
        sequence digits merely *contain* ``L0`` -- are never miscounted.
        """
        count = 0
        for partition in self.partitions():
            for table in ("from", "to"):
                for run in self.runs_for(partition, table):
                    parsed = parse_run_name(run.name)
                    if parsed is not None and parsed[2] == "L0":
                        count += 1
        return count

    def total_size_bytes(self) -> int:
        """Total on-disk size of all registered runs."""
        return sum(run.size_bytes for p in self.partitions() for run in self.runs_for(p))

    def total_records(self, table: Optional[str] = None) -> int:
        return sum(run.num_records for p in self.partitions() for run in self.runs_for(p, table))

    def bloom_memory_bytes(self) -> int:
        """Memory consumed by the in-memory Bloom filters of all runs."""
        return sum(run.bloom.size_bytes for p in self.partitions() for run in self.runs_for(p))

    # ------------------------------------------------------------- iteration

    def iter_table(self, partition: int, table: str) -> Iterator:
        """Merged, sorted iteration over every run of a table in a partition."""
        iterators = [run.iter_all() for run in self.runs_for(partition, table)]
        if not iterators:
            return iter(())
        if len(iterators) == 1:
            return iterators[0]
        return merge_sorted_runs(iterators)
