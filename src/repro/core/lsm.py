"""Stepped-merge organisation of read-store runs.

Backlog follows the Stepped-Merge variant of the LSM-tree (§5.1): each
consistency point writes the whole write store as a new *Level-0 run* rather
than merging it into an existing tree (a consistency point must make all
accumulated updates durable, so partial merges are not an option).  Level-0
runs accumulate until database maintenance merges them -- together with any
existing Combined run -- into a single compacted run per partition.

:class:`RunManager` is the catalogue of live runs.  It tracks, for every
partition, the ordered list of runs per table, keeps their Bloom filters in
memory, provides merged iteration for compaction, and answers the query
engine's "which runs might contain this block range?" question.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.read_store import ReadStoreReader, ReadStoreWriter
from repro.core.records import CombinedRecord, FromRecord, ToRecord
from repro.fsim.blockdev import StorageBackend
from repro.fsim.cache import PageCache

__all__ = ["RunManager", "run_name", "parse_run_name", "merge_sorted_runs",
           "tombstone_name", "parse_tombstone_name", "TOMBSTONE_SUFFIX"]

TABLES = ("from", "to", "combined")

#: Suffix of the durable marker written next to a run file whose deletion is
#: deferred behind pinned readers (epoch reclamation).  The marker is what
#: lets recovery and ``repro scrub`` distinguish a deferred-delete file --
#: retired from the catalogue but still streamed by a pinned snapshot at the
#: time of a crash -- from a genuine leak or crash leftover.  A tombstone's
#: leaf never parses as a run name (the sequence digits gain a non-digit
#: suffix), so every existing backend scan skips it naturally.
TOMBSTONE_SUFFIX = ".retired"


def tombstone_name(name: str) -> str:
    """The durable deferred-delete marker for run file ``name``."""
    return name + TOMBSTONE_SUFFIX


def parse_tombstone_name(name: str) -> Optional[str]:
    """The run name a tombstone marks, or ``None`` for any other file."""
    if not name.endswith(TOMBSTONE_SUFFIX):
        return None
    run = name[: -len(TOMBSTONE_SUFFIX)]
    return run if parse_run_name(run) is not None else None


def run_name(partition: int, table: str, level: str, sequence: int) -> str:
    """Canonical file name for a run: ``p<partition>/<table>/<level>_<sequence>``."""
    return f"p{partition:06d}/{table}/{level}_{sequence:010d}"


def parse_run_name(name: str) -> Optional[Tuple[int, str, str, int]]:
    """Parse a run file name into ``(partition, table, level, sequence)``.

    The inverse of :func:`run_name`.  Returns ``None`` for files that are not
    Backlog runs (a shared backend may contain other files).
    """
    parts = name.split("/")
    if len(parts) != 3:
        return None
    partition_part, table, leaf = parts
    if not partition_part.startswith("p") or not partition_part[1:].isdigit():
        return None
    if table not in TABLES:
        return None
    level, separator, sequence = leaf.rpartition("_")
    if not separator or not level.isalnum() or not sequence.isdigit():
        return None
    return int(partition_part[1:]), table, level, int(sequence)


def merge_sorted_runs(iterators: Sequence[Iterator]) -> Iterator:
    """Merge several already-sorted record iterators into one sorted stream.

    Merging is cheap because every run is sorted identically (§5.2); this is
    the merge used by compaction.  Records are NamedTuples whose field order
    *is* the sort-key order, so ``heapq.merge`` compares them natively --
    no per-heap-operation ``sort_key()`` allocation, and ties preserve input
    order (earlier iterators win), matching the old index tie-break.
    """
    return heapq.merge(*iterators)


@dataclass
class _PartitionRuns:
    """Run lists for one partition, per table, in creation order."""

    runs: Dict[str, List[ReadStoreReader]] = field(default_factory=lambda: {t: [] for t in TABLES})

    def all_runs(self) -> List[ReadStoreReader]:
        return [run for table in TABLES for run in self.runs[table]]


class RunManager:
    """Catalogue of on-disk read-store runs, organised by partition and table.

    Catalogue mutation is thread-safe: the flush and maintenance executors
    allocate sequence numbers and swap partitions from several workers, and
    both :meth:`next_sequence` (a read-modify-write on the counter) and the
    catalogue dict mutations take the manager's lock.  The read accessors
    take the same lock (they copy out small lists), so queries, accounting
    and the CLI can run concurrently with flush and maintenance; only
    :meth:`iter_table` stays lock-free, because a maintenance worker only
    ever iterates the runs of the partition it owns.

    **Versioning and epoch reclamation.**  The catalogue is versioned: every
    retirement of run files (:meth:`replace_partition`,
    :meth:`quarantine_run`) publishes a new version.  A reader pins the
    current version via :meth:`pin_catalogue` (normally through
    :class:`repro.core.catalogue.Catalogue`) and receives an immutable copy
    of the run lists; while any pin with version ``V`` is outstanding, a
    file retired at version ``R > V`` is *deferred* -- a durable
    ``.retired`` tombstone is written next to it and the file stays readable
    -- instead of deleted.  The last release whose departure makes
    ``min(pinned) >= R`` (or leaves no pins at all) deletes the file and its
    tombstone.  With no pins outstanding, retirement deletes immediately:
    byte-for-byte the pre-snapshot behaviour, which is what keeps every
    single-threaded caller's I/O accounting unchanged.
    """

    def __init__(self, backend: StorageBackend, cache: Optional[PageCache] = None,
                 verify_checksums: bool = True) -> None:
        self.backend = backend
        self.cache = cache
        self.verify_checksums = verify_checksums
        self._partitions: Dict[int, _PartitionRuns] = {}
        self._sequence = 0
        self._lock = threading.Lock()
        #: Names of damaged runs dropped from the catalogue.  The files stay
        #: on the backend (``repro scrub`` reports and reclaims them) so a
        #: post-mortem can inspect the corruption.
        self.quarantined: List[str] = []
        #: On-disk size of each quarantined run at quarantine time, for the
        #: ``quarantined_bytes`` accounting (entries go stale only if an
        #: external scrub reclaims the file; the accessor re-checks).
        self._quarantined_sizes: Dict[str, int] = {}
        # --- epoch reclamation state (all guarded by self._lock) ---
        # The published catalogue version; bumped by every file retirement.
        self._version = 0
        # version -> number of outstanding pins at that version.
        self._pins: Dict[int, int] = {}
        # Files awaiting deletion: (retire_version, name, size_bytes).
        self._deferred: List[Tuple[int, str, int]] = []
        # Cached {partition: [runs...]} copy handed to pins.  Invalidated by
        # every catalogue mutation and rebuilt -- as a *fresh* dict of fresh
        # lists, never mutated in place -- on the next pin, so a hot query
        # path pays one dict lookup per pin instead of one copy of the whole
        # catalogue (the narrow-query constant factor depends on this).
        self._pinned_runs_cache: Optional[Dict[int, List[ReadStoreReader]]] = None

    # --------------------------------------------------------------- writing

    def next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence

    def reserve_through(self, sequence: int) -> None:
        """Advance the counter so future names start past ``sequence``.

        Recovery uses this after scanning the backend for the highest
        sequence number already on disk, so rebuilt catalogues never
        allocate a name that collides with an existing file.
        """
        with self._lock:
            if sequence > self._sequence:
                self._sequence = sequence

    def write_run(self, partition: int, table: str, level: str,
                  records: Iterable, bloom_bits: int) -> Optional[ReadStoreReader]:
        """Write a new run and register it.  Returns None for empty inputs."""
        name = run_name(partition, table, level, self.next_sequence())
        reader = self.build_run(name, table, records, bloom_bits)
        if reader is None:
            return None
        self.add_run(partition, table, reader)
        return reader

    def build_run(self, name: str, table: str, records: Iterable,
                  bloom_bits: int, retry=None) -> Optional[ReadStoreReader]:
        """Write a run under a pre-allocated name without registering it.

        The parallel flush path allocates every run name up front (in the
        exact order the serial loop would), fans the ``build_run`` calls out
        across workers, and registers the finished readers afterwards in
        allocation order -- which is what keeps a parallel flush
        byte-identical to a serial one.  Returns ``None`` (and creates no
        file) for an empty input.

        ``retry`` (a :class:`~repro.core.executor.RetryPolicy`) is for
        direct callers only: ``records`` must then be re-iterable (a
        sequence, not a generator).  The executors apply their own policy
        around the whole job, so ``Backlog`` leaves this ``None`` to avoid
        multiplying attempts.
        """
        def attempt() -> Optional[ReadStoreReader]:
            writer = ReadStoreWriter(self.backend, name, table, bloom_bits=bloom_bits)
            reader = writer.build(records)
            if reader is None:
                return None
            # Re-open through the shared cache so queries benefit from it;
            # keep the freshly built Bloom filter (no reload from disk).
            return ReadStoreReader(self.backend, name, cache=self.cache,
                                   bloom=reader.bloom,
                                   verify_checksums=self.verify_checksums)

        return retry.run(attempt) if retry is not None else attempt()

    def add_run(self, partition: int, table: str, reader: ReadStoreReader) -> None:
        if table not in TABLES:
            raise ValueError(f"unknown table {table!r}")
        with self._lock:
            self._partitions.setdefault(partition, _PartitionRuns()).runs[table].append(reader)
            self._pinned_runs_cache = None

    # ----------------------------------------------- pinning / reclamation

    def pin_catalogue(self) -> Tuple[int, Dict[int, List[ReadStoreReader]]]:
        """Pin the current catalogue version and copy out its run lists.

        Returns ``(version, {partition: [runs...]})``; the mapping is a
        fresh copy, immune to subsequent catalogue mutation.  Every pin must
        be paired with exactly one :meth:`release_version` -- callers go
        through :class:`repro.core.catalogue.CatalogueSnapshot`, whose
        ``release`` enforces the pairing.  While the pin is outstanding, no
        file in the copied lists is ever deleted (retirements are deferred).
        """
        with self._lock:
            version = self._version
            self._pins[version] = self._pins.get(version, 0) + 1
            runs = self._pinned_runs_cache
            if runs is None:
                runs = {p: entry.all_runs() for p, entry in self._partitions.items()}
                self._pinned_runs_cache = runs
            return version, runs

    def acquire_version(self, version: int) -> None:
        """Add a pin to an *already pinned* catalogue version.

        The read-side fan-out hands each prefetch job its own pin on the
        snapshot it drains, so a job's run files stay reclaim-proof even if
        the owning cursor releases (or is garbage collected) while the job
        is still in flight.  Pinning a version nothing holds any more would
        be a use-after-release bug, hence the ``ValueError``.
        """
        with self._lock:
            count = self._pins.get(version, 0)
            if count < 1:
                raise ValueError(
                    f"catalogue version {version} is not pinned; acquire_version "
                    f"may only extend a live pin")
            self._pins[version] = count + 1

    def release_version(self, version: int) -> None:
        """Drop one pin at ``version`` and reclaim newly deletable files."""
        with self._lock:
            count = self._pins.get(version, 0) - 1
            if count > 0:
                self._pins[version] = count
            else:
                self._pins.pop(version, None)
            reclaimable = self._take_reclaimable_locked()
        for name in reclaimable:
            self._delete_run_file(name)

    def _take_reclaimable_locked(self) -> List[str]:
        """Pop every deferred file no pinned snapshot can still hold."""
        if not self._deferred:
            return []
        min_pinned = min(self._pins) if self._pins else None
        # A snapshot pinned at version V holds a file retired at R iff the
        # file was still catalogued when V was published, i.e. iff V < R.
        if min_pinned is None:
            reclaimable = [name for _, name, _ in self._deferred]
            self._deferred = []
            return reclaimable
        keep: List[Tuple[int, str, int]] = []
        reclaimable = []
        for entry in self._deferred:
            if entry[0] <= min_pinned:
                reclaimable.append(entry[1])
            else:
                keep.append(entry)
        self._deferred = keep
        return reclaimable

    def _delete_run_file(self, name: str) -> None:
        """Delete a retired run file, its tombstone, and its cache pages."""
        if self.backend.exists(name):
            self.backend.delete(name)
        marker = tombstone_name(name)
        if self.backend.exists(marker):
            self.backend.delete(marker)
        if self.cache is not None:
            self.cache.invalidate_file(name)

    def _write_tombstone(self, name: str) -> None:
        """Publish the durable deferred-delete marker for ``name``."""
        marker = tombstone_name(name)
        if not self.backend.exists(marker):
            self.backend.create(marker).append_page(b"retired")

    def pinned_run_names(self) -> Set[str]:
        """Every run file some pinned snapshot may still be reading.

        The union of the current catalogue (files there are never deleted
        while catalogued) and the deferred files the oldest pin still holds.
        Empty when nothing is pinned.  Tests and the concurrency benchmark
        wrap ``backend.delete`` with this to assert the no-delete-under-a-
        pinned-reader invariant.
        """
        with self._lock:
            if not self._pins:
                return set()
            min_pinned = min(self._pins)
            names = {run.name for entry in self._partitions.values()
                     for run in entry.all_runs()}
            names.update(name for retire_version, name, _ in self._deferred
                         if retire_version > min_pinned)
            return names

    def pinned_readers(self) -> int:
        """Number of outstanding catalogue pins (diagnostics and tests)."""
        with self._lock:
            return sum(self._pins.values())

    def deferred_run_names(self) -> List[str]:
        """Names of retired files still awaiting epoch reclamation."""
        with self._lock:
            return [name for _, name, _ in self._deferred]

    def deferred_bytes(self) -> int:
        """On-disk bytes held by deferred-delete files."""
        with self._lock:
            return sum(size for _, _, size in self._deferred)

    def quarantined_bytes(self) -> int:
        """On-disk bytes held by quarantined runs still on the backend."""
        with self._lock:
            sizes = dict(self._quarantined_sizes)
        return sum(size for name, size in sizes.items()
                   if self.backend.exists(name))

    def replace_partition(self, partition: int,
                          new_runs: Dict[str, List[ReadStoreReader]]) -> List[str]:
        """Swap in compacted runs for ``partition`` and retire the old files.

        Returns the names of the retired run files.  With no pinned readers
        the files are deleted immediately (the pre-snapshot behaviour); with
        pins outstanding, deletion is deferred behind the pins -- a durable
        tombstone is written next to each file and the last release
        reclaims both (epoch reclamation).  Safe to call for distinct
        partitions from concurrent maintenance workers: the catalogue swap
        happens under the manager's lock, and the file deletions and cache
        invalidations only touch the replaced partition's own runs.
        """
        replacement = _PartitionRuns()
        for table, runs in new_runs.items():
            if table not in TABLES:
                raise ValueError(f"unknown table {table!r}")
            replacement.runs[table] = list(runs)
        with self._lock:
            old = self._partitions.get(partition, _PartitionRuns())
            self._partitions[partition] = replacement
            self._pinned_runs_cache = None
            old_runs = old.all_runs()
            retired = [run.name for run in old_runs]
            if old_runs:
                self._version += 1
                retire_version = self._version
                if self._pins:
                    # Deferred path.  Tombstones are written while the lock
                    # is still held so no concurrent release can reclaim the
                    # deferred entry before its marker is durable; the write
                    # is one page per retired run and happens only when
                    # readers are actually pinned.
                    for run in old_runs:
                        self._write_tombstone(run.name)
                        self._deferred.append(
                            (retire_version, run.name, run.size_bytes))
                    return retired
        # No pinned readers (or nothing to retire): delete immediately,
        # exactly the pre-snapshot path.
        for name in retired:
            self._delete_run_file(name)
        return retired

    def quarantine_run(self, name: str) -> bool:
        """Drop a damaged run from the catalogue; the file stays on disk.

        Returns ``True`` if the run was catalogued (and is now quarantined);
        ``False`` if no such run is registered -- e.g. it was already
        quarantined by a concurrent detection, or the name never existed.
        Queries re-answered after a quarantine see the surviving runs plus
        the write stores: degraded, but correct with respect to the
        remaining data.  ``repro scrub --reclaim`` deletes the file.
        """
        found = False
        with self._lock:
            for entry in self._partitions.values():
                for runs in entry.runs.values():
                    for index, run in enumerate(runs):
                        if run.name == name:
                            del runs[index]
                            found = True
                            break
                    if found:
                        break
                if found:
                    break
            if found:
                self._pinned_runs_cache = None
                self.quarantined.append(name)
                self._quarantined_sizes[name] = run.size_bytes
                # Publish a new catalogue version: snapshots pinned from here
                # on exclude the damaged run.  No deferral is needed -- the
                # file is deliberately left on disk for the post-mortem, so
                # readers pinned over the old version can still stream it
                # (and will quarantine it themselves if they hit the damage).
                self._version += 1
        if found and self.cache is not None:
            self.cache.invalidate_file(name)
        return found

    # --------------------------------------------------------------- queries

    def partitions(self) -> List[int]:
        with self._lock:
            return sorted(self._partitions)

    def runs_for(self, partition: int, table: Optional[str] = None) -> List[ReadStoreReader]:
        with self._lock:
            entry = self._partitions.get(partition)
            if entry is None:
                return []
            if table is None:
                return entry.all_runs()
            return list(entry.runs[table])

    def runs_for_block_range(self, partitions: Sequence[int], first_block: int,
                             num_blocks: int) -> List[ReadStoreReader]:
        """Runs whose Bloom filter (and block bounds) admit the given range."""
        candidates: List[ReadStoreReader] = []
        for partition in partitions:
            for run in self.runs_for(partition):
                if run.might_contain_range(first_block, num_blocks):
                    candidates.append(run)
        return candidates

    def run_count(self, table: Optional[str] = None) -> int:
        return sum(len(self.runs_for(p, table)) for p in self.partitions())

    def level0_run_count(self) -> int:
        """Number of runs written since the last compaction of their partition.

        Matches on the parsed level component of the run name, so compacted
        runs (level ``compact``) -- or any other level whose partition or
        sequence digits merely *contain* ``L0`` -- are never miscounted.
        """
        count = 0
        for partition in self.partitions():
            for table in ("from", "to"):
                for run in self.runs_for(partition, table):
                    parsed = parse_run_name(run.name)
                    if parsed is not None and parsed[2] == "L0":
                        count += 1
        return count

    def total_size_bytes(self) -> int:
        """Total on-disk size of all registered runs."""
        return sum(run.size_bytes for p in self.partitions() for run in self.runs_for(p))

    def total_records(self, table: Optional[str] = None) -> int:
        return sum(run.num_records for p in self.partitions() for run in self.runs_for(p, table))

    def bloom_memory_bytes(self) -> int:
        """Memory consumed by the in-memory Bloom filters of all runs."""
        return sum(run.bloom.size_bytes for p in self.partitions() for run in self.runs_for(p))

    # ------------------------------------------------------------- iteration

    def iter_table(self, partition: int, table: str) -> Iterator:
        """Merged, sorted iteration over every run of a table in a partition."""
        iterators = [run.iter_all() for run in self.runs_for(partition, table)]
        if not iterators:
            return iter(())
        if len(iterators) == 1:
            return iterators[0]
        return merge_sorted_runs(iterators)
