"""On-disk read stores (RS): densely packed B-trees built bottom-up.

At every consistency point the contents of a write store are written out as a
new read-store *run*.  Because the write store is already sorted, the run can
be constructed strictly sequentially (§5.1):

1. records are packed densely into leaf pages in sort order;
2. while the leaf pages stream out, the first key of each leaf page is
   accumulated into the level-1 index, which is written next;
3. index levels are stacked until a level fits in a single page (the root).

No page is ever read while writing a run.  A Bloom filter over the run's
physical block numbers is built during the leaf pass and stored in the file
after the index levels; the last page of the file is a header describing the
layout, so a reader needs exactly one page read to open a run.

File layout (4 KB pages)::

    [leaf pages][level-1 pages][level-2 pages]...[bloom pages][header page]

Format versions
---------------

Version 2 (``BACKLOG2``, the current writer output) stores a CRC32 in the
previously-reserved second field of every leaf and index page header,
covering the whole 4 KB page except the checksum field itself; the header
page grows two fields, a CRC over the (page-padded) Bloom region and a CRC
over the header bytes.  Readers verify the header checksum at open time and
each page checksum on decode (disable with ``verify_checksums=False``); a
mismatch raises :class:`CorruptPageError`, which the query and compaction
layers convert into quarantine + degraded operation.  Version 1 files
(``BACKLOG1``) remain fully readable -- they simply carry no checksums to
verify.
"""

from __future__ import annotations

import operator
import struct
import threading
from bisect import bisect_left, bisect_right
from functools import lru_cache
from itertools import chain, islice
from operator import itemgetter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union
from zlib import crc32

from repro.core.bloom import BloomFilter, DEFAULT_FILTER_BITS
from repro.core.records import (
    COMBINED_RECORD_SIZE,
    COMBINED_STRUCT,
    CombinedRecord,
    FROM_RECORD_SIZE,
    FROM_STRUCT,
    FromRecord,
    RecordBlock,
    TO_RECORD_SIZE,
    TO_STRUCT,
    ToRecord,
    pack_key_prefix,
    rows_from_le_payload,
)
from repro.fsim.blockdev import PAGE_SIZE, PageFile, StorageBackend
from repro.fsim.cache import PageCache

__all__ = ["ReadStoreWriter", "ReadStoreReader", "CorruptPageError", "RECORD_KINDS"]

_MAGIC = 0x4241434B4C4F4731  # "BACKLOG1" -- v1, no checksums
_MAGIC_V2 = 0x4241434B4C4F4732  # "BACKLOG2" -- v2, CRC32 per page
_PAGE_HEADER = struct.Struct("<II")  # number of entries, CRC32 (v1: reserved)
_INDEX_ENTRY = struct.Struct("<5QQ")  # 5-field separator key + child page number
_MAX_LEVELS = 8
_HEADER = struct.Struct("<QQQQQQ" + "QQ" * _MAX_LEVELS + "QQQQ")
# magic, record_kind, record_size, num_records, num_leaf_pages, num_levels,
# (level_first_page, level_num_pages) * 8, bloom_first_page, bloom_num_pages,
# min_block, max_block
_HEADER_V2_BODY = struct.Struct(_HEADER.format + "Q")  # ... + bloom_crc
_HEADER_CRC = struct.Struct("<Q")  # CRC32 of the packed body, appended last


class CorruptPageError(ValueError):
    """A page failed checksum verification (or a v2 header is damaged).

    Subclasses :class:`ValueError` so recovery's invalid-run detection treats
    a corrupt-at-open run exactly like a truncated one.  Carries enough
    context (``run_name``, ``page_index``, ``kind``) for the quarantine and
    scrub paths to report and act on the damage.
    """

    def __init__(self, run_name: str, page_index: int, kind: str) -> None:
        super().__init__(
            f"{run_name!r}: checksum mismatch on {kind} page {page_index}")
        self.run_name = run_name
        self.page_index = page_index
        self.kind = kind


def _page_crc(data: bytes) -> int:
    """CRC32 of one 4 KB page, skipping the 4-byte checksum field itself."""
    view = memoryview(data)
    return crc32(view[8:], crc32(view[:4]))

RECORD_KINDS = {"from": 1, "to": 2, "combined": 3}
_KIND_TO_CLASS = {1: FromRecord, 2: ToRecord, 3: CombinedRecord}
_KIND_TO_SIZE = {1: FROM_RECORD_SIZE, 2: TO_RECORD_SIZE, 3: COMBINED_RECORD_SIZE}
_KIND_TO_STRUCT = {1: FROM_STRUCT, 2: TO_STRUCT, 3: COMBINED_STRUCT}

AnyRecord = Union[FromRecord, ToRecord, CombinedRecord]


def _separator_key(record: AnyRecord) -> Tuple[int, int, int, int, int]:
    """First five sort-key components, used as index separators."""
    # Slicing a record NamedTuple yields a plain tuple of its leading fields,
    # which are exactly the leading sort-key components.
    return tuple(record[:5])


# Per-thread scratch list reused by every bulk build() on that thread: a
# flush worker writes one run after another, and re-extending one arena
# avoids allocating a fresh len(records) key list per run.  Thread-local
# because parallel flush workers bulk-build concurrently.
_SCRATCH = threading.local()


def _bloom_scratch_arena() -> List[int]:
    """This thread's (cleared) block-key scratch list."""
    arena = getattr(_SCRATCH, "blocks", None)
    if arena is None:
        arena = _SCRATCH.blocks = []
    else:
        arena.clear()
    return arena


@lru_cache(maxsize=None)
def _flat_struct(fields: int, count: int) -> struct.Struct:
    """One Struct packing ``count`` whole records of ``fields`` u64s each.

    Cached: a run sees exactly two shapes (full leaves and one final
    partial leaf), so compiling the format once per shape makes leaf
    packing a single C call.
    """
    return struct.Struct(f"<{fields * count}Q")


class ReadStoreWriter:
    """Builds one read-store run from sorted records.

    Two equivalent interfaces produce byte-identical files:

    * :meth:`build` consumes a whole iterator at once (flush path);
    * :meth:`begin` / :meth:`add` / :meth:`finish` accept records one at a
      time, so a streaming producer (the compaction join) can route records
      into several writers without materialising any table.  At most one
      unflushed leaf page of records is buffered at any moment.

    Either way, no file is created until the first record arrives -- quiet
    consistency points do not produce empty runs.
    """

    def __init__(self, backend: StorageBackend, name: str, table: str,
                 bloom_bits: int = DEFAULT_FILTER_BITS,
                 format_version: int = 2) -> None:
        if table not in RECORD_KINDS:
            raise ValueError(f"unknown table {table!r}")
        if format_version not in (1, 2):
            raise ValueError(f"unknown read-store format version {format_version}")
        self.format_version = format_version
        self.backend = backend
        self.name = name
        self.table = table
        self.record_kind = RECORD_KINDS[table]
        self.record_size = _KIND_TO_SIZE[self.record_kind]
        self.record_struct = _KIND_TO_STRUCT[self.record_kind]
        self.records_per_page = (PAGE_SIZE - _PAGE_HEADER.size) // self.record_size
        self.entries_per_index_page = (PAGE_SIZE - _PAGE_HEADER.size) // _INDEX_ENTRY.size
        self.bloom_bits = bloom_bits
        self._page_file: Optional[PageFile] = None
        self._open = False

    def build(self, records: Iterable[AnyRecord]) -> Optional["ReadStoreReader"]:
        """Write all ``records`` (which must be pre-sorted) and return a reader.

        Returns ``None`` without creating a file when the iterator is empty.

        A materialised (``Sequence``) input takes the bulk path: the whole
        record array's block keys are copied once into a per-thread scratch
        arena and inserted with a single
        :class:`~repro.core.bloom.BloomBulkAdder` chunk (instead of one
        chunk -- and one fresh key-list allocation -- per leaf), sortedness
        is validated with one C sweep instead of a per-record compare, and
        records are handed to :meth:`_flush_leaf` one whole leaf at a time,
        where each leaf body is a single flat ``struct`` pack spliced into
        the page buffer.  The flush path always hands this method the
        already-sorted per-partition record slice, so it -- not the
        per-record fallback -- is what runs on the least-loaded flush
        worker (the ``bloom_bulk_build`` benchmark section tracks the
        Bloom half of the win).  Both the adder and the leaf packer are
        chunk-invariant, so the run file is byte-identical to the streaming
        ``begin``/``add``/``finish`` route.
        """
        self.begin()
        if isinstance(records, Sequence):
            if records:
                arena = _bloom_scratch_arena()
                arena.extend(map(itemgetter(0), records))
                self._bloom_adder.add_chunk(arena)
                self._bloom_prefilled = True
                self._add_sorted_sequence(records)
            return self.finish()
        for record in records:
            self.add(record)
        return self.finish()

    def _add_sorted_sequence(self, records: Sequence[AnyRecord]) -> None:
        """Bulk :meth:`add`: whole leaves at a time, one sortedness sweep."""
        if not all(map(operator.le, records, islice(records, 1, None))):
            raise ValueError("records passed to ReadStoreWriter must be sorted")
        if self._page_file is None:
            self._page_file = self.backend.create(self.name)
        per_page = self.records_per_page
        page_file = self._page_file
        for start in range(0, len(records), per_page):
            chunk = records[start:start + per_page]
            if len(chunk) == per_page:
                self._flush_leaf(page_file, chunk, self._leaf_keys, self._bloom)
            else:
                self._buffer.extend(chunk)
        self._num_records += len(records)
        self._previous = records[-1]

    # ------------------------------------------------------- streaming API

    def begin(self) -> None:
        """Start (or restart) an incremental build."""
        self._page_file = None
        self._bloom = BloomFilter(self.bloom_bits)
        self._bloom_adder = self._bloom.bulk_adder()
        # True when build() already inserted every block key up front; the
        # per-leaf inserts in _flush_leaf are skipped.
        self._bloom_prefilled = False
        self._num_records = 0
        self._leaf_keys: List[Tuple[Tuple[int, int, int, int, int], int]] = []
        self._buffer: List[AnyRecord] = []
        self._previous: Optional[AnyRecord] = None
        self._open = True

    def add(self, record: AnyRecord) -> None:
        """Append one record; records must arrive in sort order."""
        if not self._open:
            # Auto-beginning here would silently truncate a finished run of
            # the same name on the next create(); make the misuse loud.
            raise ValueError("add() without begin() (or after finish())")
        # Records are NamedTuples whose field order is the sort order, so
        # they compare natively -- no per-record sort_key() allocation.
        if self._previous is not None and record < self._previous:
            raise ValueError("records passed to ReadStoreWriter must be sorted")
        self._previous = record
        if self._page_file is None:
            self._page_file = self.backend.create(self.name)
        self._buffer.append(record)
        self._num_records += 1
        if len(self._buffer) == self.records_per_page:
            self._flush_leaf(self._page_file, self._buffer, self._leaf_keys, self._bloom)
            self._buffer = []

    @property
    def num_records_added(self) -> int:
        """Records accepted so far in the current incremental build."""
        return self._num_records if self._open else 0

    def finish(self) -> Optional["ReadStoreReader"]:
        """Write the index, Bloom and header pages; return a reader.

        Returns ``None`` (and creates no file) when no record was added.
        """
        if not self._open:
            raise ValueError("finish() without begin()")
        self._open = False
        page_file = self._page_file
        if page_file is None:
            return None
        bloom = self._bloom
        leaf_keys = self._leaf_keys
        if self._buffer:
            self._flush_leaf(page_file, self._buffer, leaf_keys, bloom)
            self._buffer = []
        # Sorted input means the block bounds are just the ends of the stream.
        min_block = leaf_keys[0][0][0]
        max_block = self._previous[0]

        num_leaf_pages = len(leaf_keys)

        # Build the index levels bottom-up.  Each level indexes the one below
        # it; we stop once a level fits in a single page.
        levels: List[Tuple[int, int]] = []  # (first_page, num_pages)
        current = leaf_keys
        while len(current) > 1:
            first_page = page_file.num_pages
            next_level: List[Tuple[Tuple[int, int, int, int, int], int]] = []
            for start in range(0, len(current), self.entries_per_index_page):
                chunk = current[start:start + self.entries_per_index_page]
                page_index = self._flush_index_page(page_file, chunk)
                next_level.append((chunk[0][0], page_index))
            levels.append((first_page, page_file.num_pages - first_page))
            current = next_level
        if len(levels) > _MAX_LEVELS:
            raise ValueError("read store exceeds the maximum number of index levels")

        # Bloom filter pages.  The checksum covers the page-padded region --
        # exactly the bytes a reader concatenates back -- so it can be
        # computed while streaming without buffering the padded copy.
        bloom.shrink_to_fit()
        bloom_bytes = bloom.to_bytes()
        bloom_first_page = page_file.num_pages
        for start in range(0, len(bloom_bytes), PAGE_SIZE):
            page_file.append_page(bloom_bytes[start:start + PAGE_SIZE])
        bloom_num_pages = page_file.num_pages - bloom_first_page
        bloom_crc = crc32(bloom_bytes)
        padding = -len(bloom_bytes) % PAGE_SIZE
        if padding and bloom_num_pages:
            bloom_crc = crc32(b"\x00" * padding, bloom_crc)

        # Header page (always the last page of the file).
        level_fields: List[int] = []
        for index in range(_MAX_LEVELS):
            if index < len(levels):
                level_fields.extend(levels[index])
            else:
                level_fields.extend((0, 0))
        common_fields = (
            self.record_kind,
            self.record_size,
            self._num_records,
            num_leaf_pages,
            len(levels),
            *level_fields,
            bloom_first_page,
            bloom_num_pages,
            min_block,
            max_block,
        )
        if self.format_version == 1:
            header = _HEADER.pack(_MAGIC, *common_fields)
        else:
            body = _HEADER_V2_BODY.pack(_MAGIC_V2, *common_fields, bloom_crc)
            header = body + _HEADER_CRC.pack(crc32(body))
        page_file.append_page(header)
        return ReadStoreReader(self.backend, self.name, bloom=bloom)

    # ------------------------------------------------------------ internals

    def _flush_leaf(self, page_file: PageFile, records: Sequence[AnyRecord],
                    leaf_keys: List[Tuple[Tuple[int, int, int, int, int], int]],
                    bloom: BloomFilter) -> None:
        # One bulk Bloom chunk per leaf keeps memory at O(page); the adder
        # carries its duplicate-skipping state across leaves, so this and
        # build()'s single whole-array chunk set exactly the same bits.
        if not self._bloom_prefilled:
            self._bloom_adder.add_chunk([record[0] for record in records])
        # Pack the whole leaf as ONE flat struct pack spliced into a
        # preallocated buffer -- a single C call instead of one pack_into per
        # record.  The buffer is a full page so the checksum covers the
        # padding a reader sees; the bytes are identical to a per-record
        # pack loop, so run files don't depend on which path wrote them.
        payload = bytearray(PAGE_SIZE)
        _PAGE_HEADER.pack_into(payload, 0, len(records), 0)
        body_end = _PAGE_HEADER.size + len(records) * self.record_size
        payload[_PAGE_HEADER.size:body_end] = _flat_struct(
            self.record_size // 8, len(records)).pack(*chain.from_iterable(records))
        if self.format_version >= 2:
            _PAGE_HEADER.pack_into(payload, 0, len(records), _page_crc(payload))
        page_index = page_file.append_page(bytes(payload))
        leaf_keys.append((_separator_key(records[0]), page_index))

    def _flush_index_page(self, page_file: PageFile,
                          entries: Sequence[Tuple[Tuple[int, int, int, int, int], int]]) -> int:
        payload = bytearray(PAGE_SIZE)
        _PAGE_HEADER.pack_into(payload, 0, len(entries), 0)
        pack_into = _INDEX_ENTRY.pack_into
        position = _PAGE_HEADER.size
        for key, child in entries:
            pack_into(payload, position, *key, child)
            position += _INDEX_ENTRY.size
        if self.format_version >= 2:
            _PAGE_HEADER.pack_into(payload, 0, len(entries), _page_crc(payload))
        return page_file.append_page(bytes(payload))


class ReadStoreReader:
    """Reads one read-store run.

    The reader loads only the header page at construction time; leaf and index
    pages are read on demand (optionally through a :class:`PageCache`).  The
    Bloom filter can be provided by the run catalogue (it keeps filters in
    memory between queries) or lazily loaded from the file.
    """

    def __init__(self, backend: StorageBackend, name: str,
                 cache: Optional[PageCache] = None,
                 bloom: Optional[BloomFilter] = None,
                 verify_checksums: bool = True) -> None:
        self.backend = backend
        self.name = name
        self.cache = cache
        self._page_file = backend.open(name)
        self._bloom = bloom
        if self._page_file.num_pages == 0:
            # An empty file cannot even hold a header: it is the remnant of a
            # writer that crashed before its first leaf page reached disk.
            raise ValueError(f"{name!r} is empty, not a Backlog read store")
        header_page = self._read_page(self._page_file.num_pages - 1)
        magic = _HEADER_CRC.unpack_from(header_page, 0)[0]
        if magic == _MAGIC_V2:
            self.format_version = 2
            stored_crc = _HEADER_CRC.unpack_from(header_page, _HEADER_V2_BODY.size)[0]
            # The header checksum is verified unconditionally -- it costs one
            # CRC per open and guards every layout field below.
            if crc32(header_page[:_HEADER_V2_BODY.size]) != stored_crc:
                raise CorruptPageError(name, self._page_file.num_pages - 1, "header")
            fields = _HEADER_V2_BODY.unpack_from(header_page, 0)
        elif magic == _MAGIC:
            self.format_version = 1
            fields = _HEADER.unpack_from(header_page, 0)
        else:
            raise ValueError(f"{name!r} is not a Backlog read store")
        # v1 files carry no checksums; never attempt to verify them.
        self._verify = verify_checksums and self.format_version >= 2
        self.record_kind = fields[1]
        self.record_size = fields[2]
        self.num_records = fields[3]
        self.num_leaf_pages = fields[4]
        self.num_levels = fields[5]
        self.levels: List[Tuple[int, int]] = []
        for index in range(_MAX_LEVELS):
            first_page, num_pages = fields[6 + 2 * index], fields[7 + 2 * index]
            if index < self.num_levels:
                self.levels.append((first_page, num_pages))
        offset = 6 + 2 * _MAX_LEVELS
        self.bloom_first_page = fields[offset]
        self.bloom_num_pages = fields[offset + 1]
        self.min_block = fields[offset + 2]
        self.max_block = fields[offset + 3]
        self.bloom_crc = fields[offset + 4] if self.format_version >= 2 else 0
        self._record_class = _KIND_TO_CLASS[self.record_kind]
        self._record_struct = _KIND_TO_STRUCT[self.record_kind]
        self._fields = self.record_size // 8
        self.records_per_page = (PAGE_SIZE - _PAGE_HEADER.size) // self.record_size

    # ------------------------------------------------------------ bloom

    @property
    def table(self) -> str:
        for name, kind in RECORD_KINDS.items():
            if kind == self.record_kind:
                return name
        raise ValueError(f"unknown record kind {self.record_kind}")

    @property
    def bloom(self) -> BloomFilter:
        """The run's Bloom filter (loaded from disk on first use)."""
        if self._bloom is None:
            data = bytearray()
            for index in range(self.bloom_num_pages):
                data.extend(self._read_page(self.bloom_first_page + index))
            if self._verify and crc32(bytes(data)) != self.bloom_crc:
                raise CorruptPageError(self.name, self.bloom_first_page, "bloom")
            self._bloom = BloomFilter.from_bytes(bytes(data))
        return self._bloom

    def might_contain_block(self, block: int) -> bool:
        """Bloom + min/max test for a single block."""
        if block < self.min_block or block > self.max_block:
            return False
        return self.bloom.might_contain(block)

    def might_contain_range(self, first_block: int, num_blocks: int) -> bool:
        if num_blocks <= 0:
            return False
        if first_block + num_blocks <= self.min_block or first_block > self.max_block:
            return False
        return self.bloom.might_contain_range(first_block, num_blocks)

    @property
    def size_bytes(self) -> int:
        return self._page_file.size_bytes

    # ------------------------------------------------------------ iteration

    def iter_all(self) -> Iterator[AnyRecord]:
        """Yield every record in sort order."""
        for page_index in range(self.num_leaf_pages):
            yield from self._leaf_records(page_index)

    def iter_from(self, block: int, inode: int = 0, offset: int = 0,
                  line: int = 0, cp: int = 0) -> Iterator[AnyRecord]:
        """Yield records with sort key >= the given key, in order."""
        if self.num_leaf_pages == 0:
            return
        target = (block, inode, offset, line, cp)
        leaf_index = self._find_leaf(target)
        # Records compare against the plain key tuple in sort-key order, so a
        # binary search inside the first leaf skips everything below the
        # target; subsequent leaves are entirely >= it.
        records = self._leaf_records(leaf_index)
        yield from records[bisect_left(records, target):]
        for page_index in range(leaf_index + 1, self.num_leaf_pages):
            yield from self._leaf_records(page_index)

    def records_for_block_range(self, first_block: int, num_blocks: int) -> List[AnyRecord]:
        """All records whose block falls in ``[first_block, first_block + num_blocks)``.

        Materialised counterpart of :meth:`iter_block_range`, and the entry
        point the query engine's narrow-query fast path uses: a narrow range
        almost always lands inside a single leaf page, which this returns as
        one list slice with no generator frames at all.
        """
        if num_blocks <= 0 or self.num_leaf_pages == 0:
            return []
        start_key = (first_block,)
        stop_key = (first_block + num_blocks,)
        leaf_index = self._find_leaf((first_block, 0, 0, 0, 0))
        records = self._leaf_records(leaf_index)
        lo = bisect_left(records, start_key)
        hi = bisect_left(records, stop_key)
        if hi < len(records) or leaf_index + 1 == self.num_leaf_pages:
            return records[lo:hi]
        result = records[lo:]
        for page_index in range(leaf_index + 1, self.num_leaf_pages):
            records = self._leaf_records(page_index)
            hi = bisect_left(records, stop_key)
            result.extend(records[:hi])
            if hi < len(records):
                break
        return result

    def iter_block_range(self, first_block: int, num_blocks: int,
                         start_key: Optional[Tuple[int, ...]] = None) -> Iterator[AnyRecord]:
        """Lazily yield the records of ``records_for_block_range``.

        Decodes one leaf page at a time, so a wide range query merging many
        runs holds O(pages currently open) records instead of every run's
        full result list.

        ``start_key`` (a record sort-key prefix ``>= (first_block,)``) begins
        the scan at the first record at or past that key instead of the start
        of the block range; the cursor API's resume pushdown uses it to
        re-enter a paginated scan at the interrupted reference group without
        re-reading the leaves before it.
        """
        if num_blocks <= 0 or self.num_leaf_pages == 0:
            return
        if start_key is None:
            seek = (first_block, 0, 0, 0, 0)
            lo_key: Tuple[int, ...] = (first_block,)
        else:
            seek = tuple(start_key) + (0,) * (5 - len(start_key))
            lo_key = start_key
        stop_key = (first_block + num_blocks,)
        leaf_index = self._find_leaf(seek)
        for page_index in range(leaf_index, self.num_leaf_pages):
            records = self._leaf_records(page_index)
            lo = bisect_left(records, lo_key) if page_index == leaf_index else 0
            hi = bisect_left(records, stop_key)
            yield from records[lo:hi]
            if hi < len(records):
                return

    def iter_rows_block_range(self, first_block: int, num_blocks: int,
                              start_key: Optional[Tuple[int, ...]] = None) -> Iterator[bytes]:
        """Row counterpart of :meth:`iter_block_range`: big-endian row bytes.

        Identical traversal -- same index descent, same one-leaf-at-a-time
        decode, same bisect bounds, same early return -- but each leaf
        decodes into 40/48-byte big-endian row strings (one C byteswap pass
        per page) instead of NamedTuples, and the bisects compare packed key
        prefixes with ``memcmp``.  Rows for the same records compare in the
        same order as the records, so for any ``(first_block, num_blocks,
        start_key)`` this yields exactly the rows of the records
        :meth:`iter_block_range` yields, pulling pages at identical points.
        """
        if num_blocks <= 0 or self.num_leaf_pages == 0:
            return
        if start_key is None:
            seek = (first_block, 0, 0, 0, 0)
            lo_key = pack_key_prefix(first_block)
        else:
            seek = tuple(start_key) + (0,) * (5 - len(start_key))
            lo_key = pack_key_prefix(*start_key)
        stop_key = pack_key_prefix(first_block + num_blocks)
        leaf_index = self._find_leaf(seek)
        for page_index in range(leaf_index, self.num_leaf_pages):
            rows = self._leaf_rows(page_index)
            lo = bisect_left(rows, lo_key) if page_index == leaf_index else 0
            hi = bisect_left(rows, stop_key)
            yield from rows[lo:hi]
            if hi < len(rows):
                return

    def rows_for_block_range(self, first_block: int,
                             num_blocks: int) -> List[bytes]:
        """Row counterpart of :meth:`records_for_block_range`: one flat list.

        Same traversal and page reads as a full drain of
        :meth:`iter_rows_block_range`, without the per-row generator
        machinery -- the whole-range list surface gathers with this.
        """
        if num_blocks <= 0 or self.num_leaf_pages == 0:
            return []
        lo_key = pack_key_prefix(first_block)
        stop_key = pack_key_prefix(first_block + num_blocks)
        leaf_index = self._find_leaf((first_block, 0, 0, 0, 0))
        rows = self._leaf_rows(leaf_index)
        lo = bisect_left(rows, lo_key)
        hi = bisect_left(rows, stop_key)
        if hi < len(rows) or leaf_index + 1 == self.num_leaf_pages:
            return rows[lo:hi]
        result = rows[lo:]
        for page_index in range(leaf_index + 1, self.num_leaf_pages):
            rows = self._leaf_rows(page_index)
            hi = bisect_left(rows, stop_key)
            result.extend(rows[:hi])
            if hi < len(rows):
                break
        return result

    def iter_record_blocks(self, first_block: int,
                           num_blocks: int) -> Iterator[RecordBlock]:
        """Yield one trimmed zero-copy :class:`RecordBlock` per leaf page.

        The slab-granular view of :meth:`iter_block_range`: each leaf's
        payload becomes a single :class:`~repro.core.records.RecordBlock`
        (one slab allocation per page), sliced -- without copying -- to the
        requested block range.  Callers that only need bulk row access
        (whole-device scans, the allocation regression guard in
        ``tools/check_allocs.py``) touch O(pages), not O(records), Python
        objects.
        """
        if num_blocks <= 0 or self.num_leaf_pages == 0:
            return
        lo_key = pack_key_prefix(first_block)
        stop_key = pack_key_prefix(first_block + num_blocks)
        leaf_index = self._find_leaf((first_block, 0, 0, 0, 0))
        for page_index in range(leaf_index, self.num_leaf_pages):
            block = self._leaf_block(page_index)
            lo = block.bisect_left(lo_key) if page_index == leaf_index else 0
            hi = block.bisect_left(stop_key)
            if lo < hi:
                yield block if (lo, hi) == (0, len(block)) else block.slice(lo, hi)
            if hi < len(block):
                return

    def records_for_block(self, block: int) -> List[AnyRecord]:
        return self.records_for_block_range(block, 1)

    # ------------------------------------------------------------ scrubbing

    def verify_checksums(self) -> List[CorruptPageError]:
        """Check every page of the run against its stored CRC32.

        Returns one :class:`CorruptPageError` per damaged page instead of
        raising, so a scrub can report the full extent of the damage.
        Version-1 files carry no checksums and always verify clean.  The
        check is independent of the ``verify_checksums`` constructor flag.
        """
        problems: List[CorruptPageError] = []
        if self.format_version < 2:
            return problems
        for page_index in range(self.num_leaf_pages):
            data = self._read_page(page_index)
            _, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
            if _page_crc(data) != stored_crc:
                problems.append(CorruptPageError(self.name, page_index, "leaf"))
        for first_page, num_pages in self.levels:
            for page_index in range(first_page, first_page + num_pages):
                data = self._read_page(page_index)
                _, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
                if _page_crc(data) != stored_crc:
                    problems.append(CorruptPageError(self.name, page_index, "index"))
        if self.bloom_num_pages:
            data = bytearray()
            for index in range(self.bloom_num_pages):
                data.extend(self._read_page(self.bloom_first_page + index))
            if crc32(bytes(data)) != self.bloom_crc:
                problems.append(
                    CorruptPageError(self.name, self.bloom_first_page, "bloom"))
        return problems

    # ------------------------------------------------------------ internals

    def _read_page(self, index: int) -> bytes:
        if self.cache is not None:
            return self.cache.read_page(self._page_file, index)
        return self._page_file.read_page(index)

    def _leaf_records(self, leaf_page_index: int) -> List[AnyRecord]:
        """Decode a whole leaf page in one batched ``iter_unpack`` pass."""
        data = self._read_page(leaf_page_index)
        count, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
        if self._verify and _page_crc(data) != stored_crc:
            raise CorruptPageError(self.name, leaf_page_index, "leaf")
        end = _PAGE_HEADER.size + count * self.record_size
        make = self._record_class._make
        return [make(fields)
                for fields in self._record_struct.iter_unpack(data[_PAGE_HEADER.size:end])]

    def _leaf_rows(self, leaf_page_index: int) -> List[bytes]:
        """Decode a whole leaf page into big-endian row strings.

        Columnar counterpart of :meth:`_leaf_records`: one byteswap pass
        plus one splitting ``iter_unpack`` per page, no per-record field
        tuples or NamedTuples.
        """
        data = self._read_page(leaf_page_index)
        count, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
        if self._verify and _page_crc(data) != stored_crc:
            raise CorruptPageError(self.name, leaf_page_index, "leaf")
        end = _PAGE_HEADER.size + count * self.record_size
        return rows_from_le_payload(memoryview(data)[_PAGE_HEADER.size:end],
                                    self._fields)

    def _leaf_block(self, leaf_page_index: int) -> RecordBlock:
        """One zero-copy :class:`RecordBlock` slab for a whole leaf page."""
        data = self._read_page(leaf_page_index)
        count, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
        if self._verify and _page_crc(data) != stored_crc:
            raise CorruptPageError(self.name, leaf_page_index, "leaf")
        end = _PAGE_HEADER.size + count * self.record_size
        return RecordBlock.from_le_payload(memoryview(data)[_PAGE_HEADER.size:end],
                                           self._fields)

    def _find_leaf(self, target: Tuple[int, int, int, int, int]) -> int:
        """Descend the index to the leaf page that may contain ``target``."""
        if self.num_levels == 0:
            return 0
        # The writer stacks index levels until one fits in a single page, so
        # the top level is always exactly one page: the root.
        first_page, num_pages = self.levels[-1]
        if num_pages != 1:
            raise ValueError(
                f"{self.name!r}: corrupt read store "
                f"(top index level spans {num_pages} pages, expected 1)"
            )
        level = self.num_levels - 1
        current_page = first_page
        while True:
            keys, children = self._index_entries(current_page)
            # Last separator <= target; fall back to the first child when the
            # target sorts before every separator.
            position = bisect_right(keys, target) - 1
            child = children[position] if position >= 0 else children[0]
            if level == 0:
                return child
            level -= 1
            current_page = child

    def _index_entries(self, page_index: int) -> Tuple[List[Tuple[int, ...]], List[int]]:
        """Separator keys and child page numbers of one index page."""
        data = self._read_page(page_index)
        count, stored_crc = _PAGE_HEADER.unpack_from(data, 0)
        if self._verify and _page_crc(data) != stored_crc:
            raise CorruptPageError(self.name, page_index, "index")
        end = _PAGE_HEADER.size + count * _INDEX_ENTRY.size
        keys: List[Tuple[int, ...]] = []
        children: List[int] = []
        for fields in _INDEX_ENTRY.iter_unpack(data[_PAGE_HEADER.size:end]):
            keys.append(fields[:5])
            children.append(fields[5])
        return keys, children
