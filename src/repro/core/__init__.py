"""Backlog: log-structured back references (the paper's core contribution)."""

from repro.core.backlog import Backlog
from repro.core.bloom import BloomFilter
from repro.core.catalogue import Catalogue, CatalogueSnapshot
from repro.core.compaction import Compactor, PartitionCompactionResult
from repro.core.config import BacklogConfig
from repro.core.cursor import (
    QueryResult,
    QuerySpec,
    decode_resume_token,
    encode_resume_token,
)
from repro.core.deletion_vector import DeletionVector
from repro.core.inheritance import CloneGraph, expand_clones, materialized_expand
from repro.core.join import (
    combine_for_query,
    join_tables,
    materialized_join,
    merge_join_for_query,
    stream_join_tables,
)
from repro.core.lsm import RunManager, merge_sorted_runs, run_name
from repro.core.masking import (
    AllVersionsAuthority,
    ExplicitVersionAuthority,
    SnapshotManagerAuthority,
    VersionAuthority,
    iter_mask_records,
    mask_records,
)
from repro.core.partitioning import Partitioner
from repro.core.executor import PartitionExecutor, RetryPolicy
from repro.core.query import QueryEngine
from repro.core.read_store import CorruptPageError, ReadStoreReader, ReadStoreWriter
from repro.core.records import (
    BackReference,
    CombinedRecord,
    FromRecord,
    INFINITY,
    RecordBlock,
    ReferenceKey,
    ToRecord,
)
from repro.core.recovery import (
    ScrubReport,
    parse_run_name,
    rebuild_run_manager,
    recover_backlog,
    scrub_backend,
)
from repro.core.stats import BacklogStats, CheckpointStats, MaintenanceStats, QueryStats
from repro.core.verify import Mismatch, VerificationReport, verify_backlog
from repro.core.write_store import WriteStore

__all__ = [
    "Backlog",
    "BacklogConfig",
    "BacklogStats",
    "BackReference",
    "BloomFilter",
    "Catalogue",
    "CatalogueSnapshot",
    "CheckpointStats",
    "CloneGraph",
    "CombinedRecord",
    "Compactor",
    "CorruptPageError",
    "DeletionVector",
    "ExplicitVersionAuthority",
    "AllVersionsAuthority",
    "FromRecord",
    "INFINITY",
    "MaintenanceStats",
    "Mismatch",
    "PartitionCompactionResult",
    "PartitionExecutor",
    "Partitioner",
    "QueryEngine",
    "QueryResult",
    "QuerySpec",
    "QueryStats",
    "ReadStoreReader",
    "ReadStoreWriter",
    "RecordBlock",
    "ReferenceKey",
    "RetryPolicy",
    "RunManager",
    "ScrubReport",
    "SnapshotManagerAuthority",
    "ToRecord",
    "VerificationReport",
    "VersionAuthority",
    "WriteStore",
    "combine_for_query",
    "decode_resume_token",
    "encode_resume_token",
    "expand_clones",
    "iter_mask_records",
    "join_tables",
    "mask_records",
    "materialized_expand",
    "materialized_join",
    "merge_join_for_query",
    "merge_sorted_runs",
    "stream_join_tables",
    "parse_run_name",
    "rebuild_run_manager",
    "recover_backlog",
    "run_name",
    "scrub_backend",
    "verify_backlog",
]
