"""Configuration of the Backlog back-reference manager."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.bloom import COMBINED_FILTER_BITS, DEFAULT_FILTER_BITS

__all__ = ["BacklogConfig"]


def _workers_from_env(*variables: str) -> int:
    """Worker-count default: the first set environment variable, else 1.

    ``REPRO_FLUSH_WORKERS`` / ``REPRO_MAINTENANCE_WORKERS`` /
    ``REPRO_QUERY_WORKERS`` let the whole test suite (and any embedding
    process) run with parallel flush, maintenance and query fan-out
    without touching a single ``BacklogConfig(...)`` call site --
    CI's parallel matrix leg sets ``REPRO_FLUSH_WORKERS=4`` and every config
    that does not *explicitly* pin its worker counts picks it up.  The
    maintenance default falls back to the flush variable so one variable
    exercises both pools.
    """
    for variable in variables:
        value = os.environ.get(variable)
        if value:
            try:
                workers = int(value)
            except ValueError:
                raise ValueError(f"{variable} must be an integer, got {value!r}")
            if workers < 1:
                raise ValueError(f"{variable} must be >= 1, got {workers}")
            return workers
    return 1


@dataclass(frozen=True)
class BacklogConfig:
    """Tunable parameters of :class:`repro.core.backlog.Backlog`.

    The defaults correspond to the configuration evaluated in the paper:
    32 KB Bloom filters per Level-0 run (sized for up to 32 000 operations
    per consistency point), a 1 MB filter cap for the Combined read store, a
    32 MB page cache for queries, and proactive pruning enabled.

    Attributes
    ----------
    partition_size_blocks:
        Width of each horizontal partition in physical blocks.
    run_bloom_bits / combined_bloom_bits:
        Bloom filter sizes (in bits) for Level-0 and compacted Combined runs.
    cache_bytes:
        Page-cache capacity used by the query path.
    proactive_pruning:
        When True (the default and the paper's behaviour), a reference added
        and removed within the same consistency point never reaches disk.
    maintenance_interval_cps:
        If set, :meth:`Backlog.on_consistency_point` automatically runs
        database maintenance every N consistency points; if None (default),
        maintenance runs only when the caller invokes :meth:`Backlog.maintain`.
    use_bloom_filters:
        Ablation switch: when False, queries probe every run.
    narrow_dispatch_max_runs:
        Size dispatch for the query read path: when the Bloom prefilter
        leaves at most this many candidate runs, the query engine answers
        through the retained materialising pipeline (gather lists,
        ``materialized_join``, ``materialized_expand``, dict grouping)
        instead of the streaming generator chain, whose fixed per-query cost
        is not worth paying for one or two tiny run slices.  The fast path
        additionally applies only to ranges of at most
        :data:`repro.core.query.NARROW_QUERY_MAX_BLOCKS` blocks, so wide
        queries keep the streaming pipeline's flat-memory guarantee even
        over a freshly compacted (few-run) database.  ``0`` disables the
        fast path and forces every query through the streaming pipeline
        (both return identical answers; the differential suite enforces it).
    streaming_compaction:
        When True (the default), database maintenance runs the streaming
        generator-chain compactor that holds at most one output page per
        table in memory; when False, the retained materialising compactor is
        used.  Both produce byte-identical runs (the differential tests in
        ``tests/test_streaming_equivalence.py`` enforce this).
    columnar_pipeline:
        When True (the default), the streaming query pipeline runs on
        big-endian row slabs (:mod:`repro.core.columnar`): leaf pages decode
        in one batched pass into 40/48-byte row strings, and merge, join,
        clone expansion, masking and the owner fold all operate on those
        rows, materialising :class:`~repro.core.records.BackReference`
        objects only at the public API boundary.  When False, the retained
        tuple pipeline (one NamedTuple per record per stage) runs instead.
        Dispatch, emission order, resume tokens, answers and per-query page
        accounting are identical in both modes
        (``tests/test_columnar_equivalence.py`` enforces it); the flag
        exists as the differential-testing ablation, not as tuning.
    flush_workers / maintenance_workers:
        Sizes of the partition-sharded worker pools
        (:class:`~repro.core.executor.PartitionExecutor`): ``flush_workers``
        fans the per-``(table, partition)`` Level-0 run writes of each
        consistency point out across threads, ``maintenance_workers`` runs
        ``maintain()``'s per-partition compactions concurrently.  The
        default of 1 is byte-for-byte today's serial behaviour (no pool is
        even created); any value produces an identical database -- run
        sequence numbers are allocated before dispatch and results are
        registered in allocation order, enforced by
        ``tests/test_parallel_equivalence.py``.  The defaults honour the
        ``REPRO_FLUSH_WORKERS`` / ``REPRO_MAINTENANCE_WORKERS`` environment
        variables (maintenance falls back to the flush variable), which is
        how CI's parallel matrix leg drives the whole suite through the
        parallel paths.
    query_workers:
        Size of the read-side pool: when greater than 1, a streaming
        multi-partition query drains the gathers of *later* partitions on
        worker threads while the caller consumes earlier ones, merging
        strictly at the partition boundary so cursor emission order, resume
        tokens, answers and per-query page accounting are byte-identical to
        serial (``tests/test_parallel_equivalence.py`` read-side leg).  The
        lazy-gather guarantee is preserved: prefetch only starts once the
        first partition's stream is exhausted, so ``.first()`` on partition
        0 never pays for partition N.  Default 1 (serial, no pool); honours
        ``REPRO_QUERY_WORKERS``.
    cluster_shards:
        Default shard count for the multi-process cluster
        (:class:`repro.cluster.ShardedBacklog`): how many worker processes
        the coordinator spawns, each owning the partitions the
        :class:`repro.cluster.ShardMap` stripes onto it.  A plain
        :class:`~repro.core.backlog.Backlog` ignores this field -- it only
        parameterises the cluster entry points (``ShardedBacklog`` with no
        explicit ``num_shards``, ``repro serve --shards`` with no value,
        the ``shard_factory`` test fixture).  Default 1 (a one-shard
        cluster, behaviourally a single process behind an RPC hop); honours
        ``REPRO_CLUSTER_SHARDS`` like the worker-count knobs honour theirs.
    resume_cache_size:
        Capacity (in parked cursors) of the session-scoped resume cache:
        when a ``limit``-bounded cursor page fills, its suspended pipeline is
        parked keyed by the resume token, and resuming with that token
        continues the parked pipeline instead of re-running the Bloom
        prefilter and re-seeking every run in the active partition.  Parked
        cursors are invalidated by data-flushing checkpoints (idle ones
        leave them intact), maintenance, relocation, clone registration and
        snapshot deletion, and are discarded if the
        write stores changed since parking.  ``0`` disables parking
        entirely (every resumed page rebuilds the pipeline from the token).
    verify_checksums:
        When True (the default), every leaf/index page decoded by the query
        and compaction paths is verified against its stored CRC32 (v2 run
        files only -- v1 files carry no checksums); a mismatch raises
        :class:`~repro.core.read_store.CorruptPageError`, which those paths
        convert into quarantine + degraded operation.  ``False`` skips the
        per-decode check (the ``checksum`` benchmark section measures the
        difference); ``repro scrub`` and run-open header verification are
        unaffected by this flag.
    io_retries:
        How many times a transient storage fault (``TransientIOError``,
        ``EINTR``/``EAGAIN``/``EIO``) inside a flush or compaction job is
        retried before the batch fails; ``0`` disables retrying.  Torn
        writes, ``ENOSPC`` and crashes are never retried -- they fail the
        batch atomically (nothing is registered in the catalogue and the
        write stores keep their data, so the caller can retry the whole
        checkpoint or recover to the last complete CP).
    io_retry_backoff_s / io_retry_backoff_multiplier:
        Delay before the first retry, and the factor it grows by after each
        subsequent failure of the same job.
    track_timing:
        When True, the manager records wall-clock time spent in reference
        updates and flushes (used for the µs-per-operation figures).
    """

    partition_size_blocks: int = 1 << 20
    run_bloom_bits: int = DEFAULT_FILTER_BITS
    combined_bloom_bits: int = COMBINED_FILTER_BITS
    cache_bytes: int = 32 * 1024 * 1024
    proactive_pruning: bool = True
    maintenance_interval_cps: Optional[int] = None
    use_bloom_filters: bool = True
    narrow_dispatch_max_runs: int = 2
    streaming_compaction: bool = True
    columnar_pipeline: bool = True
    flush_workers: int = field(
        default_factory=lambda: _workers_from_env("REPRO_FLUSH_WORKERS"))
    maintenance_workers: int = field(
        default_factory=lambda: _workers_from_env(
            "REPRO_MAINTENANCE_WORKERS", "REPRO_FLUSH_WORKERS"))
    query_workers: int = field(
        default_factory=lambda: _workers_from_env("REPRO_QUERY_WORKERS"))
    cluster_shards: int = field(
        default_factory=lambda: _workers_from_env("REPRO_CLUSTER_SHARDS"))
    resume_cache_size: int = 4
    verify_checksums: bool = True
    io_retries: int = 2
    io_retry_backoff_s: float = 0.002
    io_retry_backoff_multiplier: float = 2.0
    track_timing: bool = True

    def __post_init__(self) -> None:
        if self.partition_size_blocks <= 0:
            raise ValueError("partition_size_blocks must be positive")
        if self.run_bloom_bits <= 0 or self.combined_bloom_bits <= 0:
            raise ValueError("Bloom filter sizes must be positive")
        if self.cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        if self.maintenance_interval_cps is not None and self.maintenance_interval_cps <= 0:
            raise ValueError("maintenance_interval_cps must be positive when set")
        if self.narrow_dispatch_max_runs < 0:
            raise ValueError("narrow_dispatch_max_runs must be non-negative")
        if (self.flush_workers < 1 or self.maintenance_workers < 1
                or self.query_workers < 1):
            raise ValueError("worker counts must be >= 1")
        if self.cluster_shards < 1:
            raise ValueError("cluster_shards must be >= 1")
        if self.resume_cache_size < 0:
            raise ValueError("resume_cache_size must be non-negative")
        if self.io_retries < 0:
            raise ValueError("io_retries must be non-negative")
        if self.io_retry_backoff_s < 0:
            raise ValueError("io_retry_backoff_s must be non-negative")
        if self.io_retry_backoff_multiplier < 1.0:
            raise ValueError("io_retry_backoff_multiplier must be >= 1.0")
