"""Horizontal partitioning of the back-reference database.

Read-store runs are partitioned by physical block number (§5.3) so that each
file stays a manageable size, compaction can process partitions selectively,
and partitions could in principle be spread over devices or CPU cores.  The
current scheme matches the paper's implementation: each partition covers a
fixed, contiguous range of physical block numbers.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["Partitioner"]


@dataclass(frozen=True)
class Partitioner:
    """Maps physical block numbers to partition ids.

    Parameters
    ----------
    partition_size_blocks:
        Number of consecutive physical blocks per partition.  With the 4 KB
        block size used throughout, the default of 2^20 blocks corresponds to
        4 GB of physical storage per partition.
    """

    partition_size_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        if self.partition_size_blocks <= 0:
            raise ValueError("partition_size_blocks must be positive")

    def partition_of(self, block: int) -> int:
        """Partition id that owns ``block``."""
        if block < 0:
            raise ValueError("block numbers are non-negative")
        return block // self.partition_size_blocks

    def block_range(self, partition: int) -> Tuple[int, int]:
        """Half-open ``[first_block, last_block)`` range covered by ``partition``."""
        first = partition * self.partition_size_blocks
        return first, first + self.partition_size_blocks

    def partitions_for_range(self, first_block: int, num_blocks: int) -> List[int]:
        """Partition ids overlapping ``[first_block, first_block + num_blocks)``."""
        if num_blocks <= 0:
            return []
        first = self.partition_of(first_block)
        last = self.partition_of(first_block + num_blocks - 1)
        return list(range(first, last + 1))

    def split_sorted_records(self, records: Iterable) -> Iterator[Tuple[int, List]]:
        """Group block-sorted records into per-partition lists.

        The input must be sorted by block number (the write store guarantees
        this).  Yields ``(partition_id, records)`` pairs in ascending
        partition order; empty partitions -- including gaps of more than one
        partition between consecutive records -- are never yielded, so every
        emitted bucket is non-empty.

        A sequence input (the flush path hands over the write store's sorted
        snapshot list) is split by bisecting on the partition boundary keys:
        O(partitions-touched x log n) comparisons instead of one
        ``partition_of`` call per record.  Other iterables fall back to a
        single-pass scan that buffers at most one partition at a time.
        """
        if isinstance(records, Sequence):
            yield from self._split_sequence(records)
        else:
            yield from self._split_scan(records)

    def _split_sequence(self, records: Sequence) -> Iterator[Tuple[int, List]]:
        size = self.partition_size_blocks
        index = 0
        total = len(records)
        while index < total:
            partition = self.partition_of(records[index].block)
            # Records are NamedTuples ordered by block first, so the plain
            # 1-tuple of the next partition boundary is a valid bisect key.
            boundary = ((partition + 1) * size,)
            next_index = bisect_left(records, boundary, index, total)
            yield partition, records[index:next_index]
            index = next_index

    def _split_scan(self, records: Iterable) -> Iterator[Tuple[int, List]]:
        current_partition = None
        bucket: List = []
        for record in records:
            partition = self.partition_of(record.block)
            if current_partition is None:
                current_partition = partition
            if partition != current_partition:
                yield current_partition, bucket
                bucket = []
                current_partition = partition
            bucket.append(record)
        if bucket:
            yield current_partition, bucket
