"""Horizontal partitioning of the back-reference database.

Read-store runs are partitioned by physical block number (§5.3) so that each
file stays a manageable size, compaction can process partitions selectively,
and partitions could in principle be spread over devices or CPU cores.  The
current scheme matches the paper's implementation: each partition covers a
fixed, contiguous range of physical block numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

__all__ = ["Partitioner"]


@dataclass(frozen=True)
class Partitioner:
    """Maps physical block numbers to partition ids.

    Parameters
    ----------
    partition_size_blocks:
        Number of consecutive physical blocks per partition.  With the 4 KB
        block size used throughout, the default of 2^20 blocks corresponds to
        4 GB of physical storage per partition.
    """

    partition_size_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        if self.partition_size_blocks <= 0:
            raise ValueError("partition_size_blocks must be positive")

    def partition_of(self, block: int) -> int:
        """Partition id that owns ``block``."""
        if block < 0:
            raise ValueError("block numbers are non-negative")
        return block // self.partition_size_blocks

    def block_range(self, partition: int) -> Tuple[int, int]:
        """Half-open ``[first_block, last_block)`` range covered by ``partition``."""
        first = partition * self.partition_size_blocks
        return first, first + self.partition_size_blocks

    def partitions_for_range(self, first_block: int, num_blocks: int) -> List[int]:
        """Partition ids overlapping ``[first_block, first_block + num_blocks)``."""
        if num_blocks <= 0:
            return []
        first = self.partition_of(first_block)
        last = self.partition_of(first_block + num_blocks - 1)
        return list(range(first, last + 1))

    def split_sorted_records(self, records: Iterable) -> Iterator[Tuple[int, List]]:
        """Group block-sorted records into per-partition lists.

        The input must be sorted by block number (the write store guarantees
        this); the generator yields ``(partition_id, records)`` pairs in
        partition order without buffering more than one partition at a time.
        """
        current_partition = None
        bucket: List = []
        for record in records:
            partition = self.partition_of(record.block)
            if current_partition is None:
                current_partition = partition
            if partition != current_partition:
                yield current_partition, bucket
                bucket = []
                current_partition = partition
            bucket.append(record)
        if bucket:
            yield current_partition, bucket
