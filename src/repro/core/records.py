"""Back-reference record types and their on-disk encodings.

Backlog keeps three logical tables (§4):

* **From** -- one record per reference *allocation*: ``(block, inode, offset,
  line, from)`` where ``from`` is the global CP number at which the reference
  came into existence.
* **To** -- one record per reference *removal*: ``(block, inode, offset,
  line, to)`` where ``to`` is the CP number at which the reference was
  dropped (exclusive).
* **Combined** -- the outer join of the two: ``(block, inode, offset, line,
  from, to)``, with ``to == INFINITY`` for references that are still live.

All fields are 64-bit, so a From/To tuple is 40 bytes and a Combined tuple is
48 bytes on disk, exactly as in the paper's btrfs port.  Records are ordered
by ``(block, inode, offset, line, boundary)`` so that records describing the
same physical block are adjacent in the read stores and range queries over
physically adjacent blocks touch consecutive pages.
"""

from __future__ import annotations

import struct
import sys
from array import array
from itertools import chain
from typing import Iterable, List, NamedTuple, Sequence, Tuple, Union

from repro.util.intervals import INFINITY

__all__ = [
    "INFINITY",
    "FROM_STRUCT",
    "TO_STRUCT",
    "COMBINED_STRUCT",
    "FROM_RECORD_SIZE",
    "TO_RECORD_SIZE",
    "COMBINED_RECORD_SIZE",
    "ReferenceKey",
    "FromRecord",
    "ToRecord",
    "CombinedRecord",
    "BackReference",
    "RecordBlock",
    "pack_key_prefix",
    "pack_row",
    "unpack_row",
    "rows_from_le_payload",
    "rows_to_le_bytes",
    "rows_to_records",
    "records_to_rows",
]

FROM_STRUCT = struct.Struct("<5Q")
TO_STRUCT = struct.Struct("<5Q")
COMBINED_STRUCT = struct.Struct("<6Q")

FROM_RECORD_SIZE = FROM_STRUCT.size       # 40 bytes
TO_RECORD_SIZE = TO_STRUCT.size           # 40 bytes
COMBINED_RECORD_SIZE = COMBINED_STRUCT.size  # 48 bytes


class ReferenceKey(NamedTuple):
    """The identity of a back reference, shared by all three tables."""

    block: int
    inode: int
    offset: int
    line: int


class FromRecord(NamedTuple):
    """A reference allocation event: valid from CP ``from_cp`` onwards."""

    block: int
    inode: int
    offset: int
    line: int
    from_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.from_cp)

    def pack(self) -> bytes:
        return FROM_STRUCT.pack(self.block, self.inode, self.offset, self.line, self.from_cp)

    @classmethod
    def unpack(cls, data: bytes) -> "FromRecord":
        return cls(*FROM_STRUCT.unpack(data))


class ToRecord(NamedTuple):
    """A reference removal event: the reference is invalid from CP ``to_cp``."""

    block: int
    inode: int
    offset: int
    line: int
    to_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.to_cp)

    def pack(self) -> bytes:
        return TO_STRUCT.pack(self.block, self.inode, self.offset, self.line, self.to_cp)

    @classmethod
    def unpack(cls, data: bytes) -> "ToRecord":
        return cls(*TO_STRUCT.unpack(data))


class CombinedRecord(NamedTuple):
    """A joined record: the reference existed during ``[from_cp, to_cp)``."""

    block: int
    inode: int
    offset: int
    line: int
    from_cp: int
    to_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    @property
    def is_live(self) -> bool:
        """True when the reference is still part of the live file system."""
        return self.to_cp == INFINITY

    @property
    def is_override(self) -> bool:
        """True for structural-inheritance override records (``from == 0``)."""
        return self.from_cp == 0

    def sort_key(self) -> Tuple[int, int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.from_cp, self.to_cp)

    def pack(self) -> bytes:
        return COMBINED_STRUCT.pack(
            self.block, self.inode, self.offset, self.line, self.from_cp, self.to_cp
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CombinedRecord":
        return cls(*COMBINED_STRUCT.unpack(data))

    def covers_version(self, version: int) -> bool:
        """True when the reference exists at CP number ``version``."""
        return self.from_cp <= version < self.to_cp


#: Any record type stored in a read store.
AnyRecord = Union[FromRecord, ToRecord, CombinedRecord]


class BackReference(NamedTuple):
    """A fully resolved query result: one owner of one physical block.

    ``ranges`` is a tuple of half-open ``(from, to)`` CP ranges during which
    the owner referenced the block, after clone expansion and masking of
    deleted snapshots.
    """

    block: int
    inode: int
    offset: int
    line: int
    ranges: Tuple[Tuple[int, int], ...]

    @property
    def is_live(self) -> bool:
        """True when any range extends to the live file system."""
        return any(stop == INFINITY for _, stop in self.ranges)

    def covers_version(self, version: int) -> bool:
        return any(start <= version < stop for start, stop in self.ranges)


# --------------------------------------------------------------- row slabs
#
# The columnar query pipeline does not shuttle NamedTuples between its
# stages.  A decoded leaf page becomes a *slab*: the page's record payload
# byte-swapped to big-endian in one C pass (``array('Q').byteswap``) and
# split into fixed-width per-record ``bytes`` *rows*.  Because every field
# is an unsigned 64-bit integer, big-endian fixed-width rows compare with
# ``memcmp`` in exactly the numeric order the NamedTuples compare in -- so
# heap merges, sort-merge joins, bisects and group folds all run on plain
# byte strings, and a record only becomes a Python object at the public API
# boundary (``BackReference`` emission, the legacy differential paths).
#
# A key *prefix* packed with :func:`pack_key_prefix` sorts strictly before
# every row that extends it, mirroring how a short tuple like
# ``(first_block,)`` bisects against full 5/6-field record tuples.

#: Big-endian row codecs by field count (4 = identity, 5 = From/To,
#: 6 = Combined).
ROW_STRUCTS = {
    1: struct.Struct(">Q"),
    2: struct.Struct(">2Q"),
    3: struct.Struct(">3Q"),
    4: struct.Struct(">4Q"),
    5: struct.Struct(">5Q"),
    6: struct.Struct(">6Q"),
}

#: Fixed-width row splitters: one C ``iter_unpack`` pass cuts a whole slab
#: into per-record ``bytes`` rows.
_ROW_SPLITTERS = {fields: struct.Struct(f"{fields * 8}s") for fields in (5, 6)}

_NEEDS_BYTESWAP = sys.byteorder == "little"

#: ``to = INFINITY`` as big-endian row bytes: appending it to a 40-byte
#: From row yields the 48-byte Combined row of a live reference.
INFINITY_BE = b"\xff" * 8


def pack_key_prefix(*fields: int) -> bytes:
    """Pack a sort-key prefix for bisecting against big-endian rows.

    ``pack_key_prefix(b)`` compares against full rows exactly like the
    tuple ``(b,)`` compares against full record tuples: before every row
    whose first field is ``>= b`` begins.
    """
    return ROW_STRUCTS[len(fields)].pack(*fields)


def pack_row(record: Sequence[int]) -> bytes:
    """One record tuple -> its big-endian row bytes."""
    return ROW_STRUCTS[len(record)].pack(*record)


def unpack_row(row: bytes) -> Tuple[int, ...]:
    """Big-endian row bytes -> the plain integer field tuple."""
    return ROW_STRUCTS[len(row) // 8].unpack(row)


def _swapped(payload) -> bytes:
    """A little-endian record payload as big-endian bytes (one C pass)."""
    arr = array("Q")
    arr.frombytes(payload)
    if _NEEDS_BYTESWAP:
        arr.byteswap()
    return arr.tobytes()


def rows_from_le_payload(payload, fields: int) -> List[bytes]:
    """Split a little-endian leaf payload into big-endian rows.

    ``payload`` is the page's record region (``count * fields * 8`` bytes,
    bytes or memoryview).  The whole conversion is three C calls: one
    byteswap pass and one fixed-width ``iter_unpack`` split, flattened with
    ``chain.from_iterable``.
    """
    return list(chain.from_iterable(
        _ROW_SPLITTERS[fields].iter_unpack(_swapped(payload))))


def rows_to_le_bytes(rows: Iterable[bytes]) -> bytes:
    """Concatenate big-endian rows back into a little-endian payload."""
    arr = array("Q")
    arr.frombytes(b"".join(rows))
    if _NEEDS_BYTESWAP:
        arr.byteswap()
    return arr.tobytes()


def rows_to_records(rows: Sequence[bytes], record_class) -> List:
    """Materialise rows as NamedTuples in one bulk unpack pass."""
    if not rows:
        return []
    fields = len(rows[0]) // 8
    return list(map(record_class._make,
                    ROW_STRUCTS[fields].iter_unpack(b"".join(rows))))


def records_to_rows(records: Iterable[Sequence[int]], fields: int) -> List[bytes]:
    """Pack record tuples as big-endian rows (write stores, tests)."""
    pack = ROW_STRUCTS[fields].pack
    return [pack(*record) for record in records]


class RecordBlock:
    """A zero-copy view over one decoded leaf page's records.

    Wraps the big-endian slab of a whole page; :meth:`slice` narrows the
    view without copying (memoryview slicing), :meth:`rows` splits it into
    per-record byte rows for the streaming pipeline, and :meth:`records`
    materialises NamedTuples for the legacy boundary.  Batch ``sort_key``
    extraction is :meth:`key_prefixes`; :meth:`bisect_left` seeks a packed
    key prefix (:func:`pack_key_prefix`) with 5-u64-wide ``memcmp``
    comparisons instead of per-record tuple construction.
    """

    __slots__ = ("data", "fields", "width")

    def __init__(self, data, fields: int) -> None:
        self.data = memoryview(data)
        self.fields = fields
        self.width = fields * 8

    @classmethod
    def from_le_payload(cls, payload, fields: int) -> "RecordBlock":
        """Decode a little-endian page payload into a block (one byteswap)."""
        return cls(_swapped(payload), fields)

    def __len__(self) -> int:
        return len(self.data) // self.width

    def slice(self, start: int, stop: int) -> "RecordBlock":
        """A narrowed view sharing this block's buffer (no copy)."""
        return RecordBlock(self.data[start * self.width:stop * self.width],
                           self.fields)

    def row(self, index: int) -> bytes:
        return bytes(self.data[index * self.width:(index + 1) * self.width])

    def rows(self) -> List[bytes]:
        """Per-record big-endian rows (one C split pass)."""
        return list(chain.from_iterable(
            _ROW_SPLITTERS[self.fields].iter_unpack(self.data)))

    def key_prefixes(self) -> List[bytes]:
        """Batch sort-key extraction: every record's identity as row bytes."""
        width = self.width
        data = self.data
        return [bytes(data[start:start + 32]) for start in range(0, len(data), width)]

    def records(self, record_class) -> List:
        """Materialise the block as NamedTuples (legacy boundary only)."""
        return list(map(record_class._make,
                        ROW_STRUCTS[self.fields].iter_unpack(self.data)))

    def bisect_left(self, key_prefix: bytes) -> int:
        """First index whose row sorts at or after ``key_prefix``.

        Packed 5-u64 (or shorter) key-prefix comparison: a prefix sorts
        before any row extending it, matching tuple-bisect semantics.
        """
        lo, hi = 0, len(self)
        data, width = self.data, self.width
        prefix_len = len(key_prefix)
        while lo < hi:
            mid = (lo + hi) // 2
            start = mid * width
            head = bytes(data[start:start + prefix_len])
            # bytes compare is memcmp; pad-free prefix ordering matches the
            # short-tuple ordering because equal-prefix rows are longer.
            if head < key_prefix:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def le_bytes(self) -> bytes:
        """The view's records as little-endian payload bytes (one byteswap)."""
        return _swapped(self.data)
