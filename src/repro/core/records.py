"""Back-reference record types and their on-disk encodings.

Backlog keeps three logical tables (§4):

* **From** -- one record per reference *allocation*: ``(block, inode, offset,
  line, from)`` where ``from`` is the global CP number at which the reference
  came into existence.
* **To** -- one record per reference *removal*: ``(block, inode, offset,
  line, to)`` where ``to`` is the CP number at which the reference was
  dropped (exclusive).
* **Combined** -- the outer join of the two: ``(block, inode, offset, line,
  from, to)``, with ``to == INFINITY`` for references that are still live.

All fields are 64-bit, so a From/To tuple is 40 bytes and a Combined tuple is
48 bytes on disk, exactly as in the paper's btrfs port.  Records are ordered
by ``(block, inode, offset, line, boundary)`` so that records describing the
same physical block are adjacent in the read stores and range queries over
physically adjacent blocks touch consecutive pages.
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Tuple, Union

from repro.util.intervals import INFINITY

__all__ = [
    "INFINITY",
    "FROM_STRUCT",
    "TO_STRUCT",
    "COMBINED_STRUCT",
    "FROM_RECORD_SIZE",
    "TO_RECORD_SIZE",
    "COMBINED_RECORD_SIZE",
    "ReferenceKey",
    "FromRecord",
    "ToRecord",
    "CombinedRecord",
    "BackReference",
]

FROM_STRUCT = struct.Struct("<5Q")
TO_STRUCT = struct.Struct("<5Q")
COMBINED_STRUCT = struct.Struct("<6Q")

FROM_RECORD_SIZE = FROM_STRUCT.size       # 40 bytes
TO_RECORD_SIZE = TO_STRUCT.size           # 40 bytes
COMBINED_RECORD_SIZE = COMBINED_STRUCT.size  # 48 bytes


class ReferenceKey(NamedTuple):
    """The identity of a back reference, shared by all three tables."""

    block: int
    inode: int
    offset: int
    line: int


class FromRecord(NamedTuple):
    """A reference allocation event: valid from CP ``from_cp`` onwards."""

    block: int
    inode: int
    offset: int
    line: int
    from_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.from_cp)

    def pack(self) -> bytes:
        return FROM_STRUCT.pack(self.block, self.inode, self.offset, self.line, self.from_cp)

    @classmethod
    def unpack(cls, data: bytes) -> "FromRecord":
        return cls(*FROM_STRUCT.unpack(data))


class ToRecord(NamedTuple):
    """A reference removal event: the reference is invalid from CP ``to_cp``."""

    block: int
    inode: int
    offset: int
    line: int
    to_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.to_cp)

    def pack(self) -> bytes:
        return TO_STRUCT.pack(self.block, self.inode, self.offset, self.line, self.to_cp)

    @classmethod
    def unpack(cls, data: bytes) -> "ToRecord":
        return cls(*TO_STRUCT.unpack(data))


class CombinedRecord(NamedTuple):
    """A joined record: the reference existed during ``[from_cp, to_cp)``."""

    block: int
    inode: int
    offset: int
    line: int
    from_cp: int
    to_cp: int

    @property
    def key(self) -> ReferenceKey:
        return ReferenceKey(self.block, self.inode, self.offset, self.line)

    @property
    def is_live(self) -> bool:
        """True when the reference is still part of the live file system."""
        return self.to_cp == INFINITY

    @property
    def is_override(self) -> bool:
        """True for structural-inheritance override records (``from == 0``)."""
        return self.from_cp == 0

    def sort_key(self) -> Tuple[int, int, int, int, int, int]:
        return (self.block, self.inode, self.offset, self.line, self.from_cp, self.to_cp)

    def pack(self) -> bytes:
        return COMBINED_STRUCT.pack(
            self.block, self.inode, self.offset, self.line, self.from_cp, self.to_cp
        )

    @classmethod
    def unpack(cls, data: bytes) -> "CombinedRecord":
        return cls(*COMBINED_STRUCT.unpack(data))

    def covers_version(self, version: int) -> bool:
        """True when the reference exists at CP number ``version``."""
        return self.from_cp <= version < self.to_cp


#: Any record type stored in a read store.
AnyRecord = Union[FromRecord, ToRecord, CombinedRecord]


class BackReference(NamedTuple):
    """A fully resolved query result: one owner of one physical block.

    ``ranges`` is a tuple of half-open ``(from, to)`` CP ranges during which
    the owner referenced the block, after clone expansion and masking of
    deleted snapshots.
    """

    block: int
    inode: int
    offset: int
    line: int
    ranges: Tuple[Tuple[int, int], ...]

    @property
    def is_live(self) -> bool:
        """True when any range extends to the live file system."""
        return any(stop == INFINITY for _, stop in self.ranges)

    def covers_version(self, version: int) -> bool:
        return any(start <= version < stop for start, stop in self.ranges)
