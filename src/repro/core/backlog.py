"""The Backlog back-reference manager: the library's main entry point.

:class:`Backlog` implements the paper's contribution end to end.  It can be
used in two ways:

* **Attached to the simulator** -- pass a :class:`Backlog` instance to
  :class:`repro.fsim.FileSystem` as a listener; the file system then drives
  it through the :class:`~repro.fsim.filesystem.ReferenceListener` callbacks
  on every block allocation, deallocation, consistency point, clone creation
  and snapshot deletion.

* **Standalone** -- call :meth:`add_reference`, :meth:`remove_reference` and
  :meth:`checkpoint` directly; this is how a host file system other than the
  simulator would integrate it.

During normal operation Backlog never reads from disk: updates are buffered
in the in-memory write stores and flushed at each consistency point as new
Level-0 read-store runs.  Disk reads happen only during queries and during
database maintenance (:meth:`maintain`).  Queries run as a streaming
pipeline -- lazily merged run iterators, sort-merge join, incremental clone
expansion, single-pass grouping -- with a size-dispatched materialised fast
path for narrow queries (see :mod:`repro.core.query` and
``docs/ARCHITECTURE.md`` for the full walk of the record lifecycle).

The primary query entry point is :meth:`select`: a declarative
:class:`~repro.core.cursor.QuerySpec` in, a lazy
:class:`~repro.core.cursor.QueryResult` cursor out, with filters and limits
pushed into the pipeline and resumable pagination via opaque tokens.  The
four legacy list methods (:meth:`query`, :meth:`query_range`,
:meth:`owners_at_version`, :meth:`live_owners`) are thin shims over it.

Example
-------
>>> from repro import Backlog
>>> backlog = Backlog()
>>> backlog.add_reference(block=100, inode=2, offset=0)
>>> backlog.add_reference(block=101, inode=2, offset=1)
>>> backlog.checkpoint()
1
>>> backlog.remove_reference(block=101, inode=2, offset=1)
>>> backlog.checkpoint()
2
>>> [ref.inode for ref in backlog.query(100)]
[2]
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.catalogue import Catalogue
from repro.core.compaction import Compactor
from repro.core.config import BacklogConfig
from repro.core.cursor import QueryResult, QuerySpec
from repro.core.deletion_vector import DeletionVector
from repro.core.executor import PartitionExecutor, RetryPolicy
from repro.core.inheritance import CloneGraph
from repro.core.lsm import RunManager, run_name
from repro.core.masking import AllVersionsAuthority, VersionAuthority
from repro.core.partitioning import Partitioner
from repro.core.query import QueryEngine
from repro.core.records import BackReference, FromRecord, ToRecord
from repro.core.stats import BacklogStats, CheckpointStats, MaintenanceStats
from repro.core.write_store import WriteStore
from repro.fsim.blockdev import MemoryBackend, StorageBackend
from repro.fsim.cache import PageCache
from repro.fsim.filesystem import ReferenceListener

__all__ = ["Backlog"]


class Backlog(ReferenceListener):
    """Log-structured back references for write-anywhere file systems."""

    def __init__(
        self,
        backend: Optional[StorageBackend] = None,
        config: Optional[BacklogConfig] = None,
        version_authority: Optional[VersionAuthority] = None,
    ) -> None:
        self.config = config or BacklogConfig()
        self.backend = backend if backend is not None else MemoryBackend()
        self.cache = PageCache(self.config.cache_bytes)
        self.partitioner = Partitioner(self.config.partition_size_blocks)
        self.run_manager = RunManager(self.backend, cache=self.cache,
                                      verify_checksums=self.config.verify_checksums)
        self.ws_from = WriteStore("from")
        self.ws_to = WriteStore("to")
        self.clone_graph = CloneGraph()
        self.deletion_vector = DeletionVector()
        self.version_authority = version_authority or AllVersionsAuthority()
        self.stats = BacklogStats()
        self.zombies: Set[Tuple[int, int]] = set()
        self.current_cp = 1
        self._ops_this_cp = 0
        self._pruned_this_cp = 0
        self._flush_executor = PartitionExecutor(
            self.config.flush_workers, name="flush",
            retry=self._retry_policy(self.stats.flush_pool))
        self._maintenance_executor = PartitionExecutor(
            self.config.maintenance_workers, name="maintenance",
            retry=self._retry_policy(self.stats.maintenance_pool))
        # The read-side fan-out pool.  No retry policy on purpose: a
        # partition gather is not idempotent mid-drain (re-running one would
        # double-read pages into the query's tally), and the serial read
        # path never retried transient faults either -- corruption handling
        # goes through quarantine, not retry.
        self._query_executor = PartitionExecutor(
            self.config.query_workers, name="query")
        self._compactor = Compactor(
            self.run_manager, self.config, self.version_authority,
            self.clone_graph, self.deletion_vector,
            streaming=self.config.streaming_compaction,
            executor=self._maintenance_executor,
            executor_stats=self.stats.maintenance_pool,
        )
        # The versioned snapshot source every reader pins its view from
        # (see core/catalogue.py): run catalogue + frozen write stores +
        # frozen deletion vector.  Flush publishes consistency points
        # through it so snapshots are atomic.
        self.catalogue = Catalogue(self.run_manager, self.ws_from,
                                   self.ws_to, self.deletion_vector)
        self._query_engine = QueryEngine(
            self.backend, self.run_manager, self.partitioner,
            self.ws_from, self.ws_to, self.clone_graph,
            self.version_authority, self.deletion_vector,
            self.config, self.stats.query,
            # Change detector for the cursor resume cache: the reference
            # counters move on every write-store mutation, so a parked page
            # pipeline is never resumed over a changed in-memory state.
            mutation_stamp=lambda: (self.stats.references_added,
                                    self.stats.references_removed),
            catalogue=self.catalogue,
            executor=self._query_executor,
            executor_stats=self.stats.query_pool,
        )

    def _retry_policy(self, pool_stats) -> Optional[RetryPolicy]:
        """The bounded retry-with-backoff applied around every executor job."""
        if self.config.io_retries == 0:
            return None
        return RetryPolicy(
            attempts=1 + self.config.io_retries,
            backoff_s=self.config.io_retry_backoff_s,
            multiplier=self.config.io_retry_backoff_multiplier,
            on_retry=lambda _error: pool_stats.count_retry(),
        )

    # ------------------------------------------------------- authority setup

    def set_version_authority(self, authority: VersionAuthority) -> None:
        """Install the source of truth for which snapshot versions exist."""
        self.version_authority = authority
        self._compactor.authority = authority
        self._query_engine.authority = authority
        self._query_engine.invalidate_parked_cursors()

    # ------------------------------------------------- ReferenceListener API

    def on_reference_added(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Record a new reference; prunes a same-CP removal if one is buffered.

        If the same reference was removed earlier within the same consistency
        point, the two events cancel: removing the buffered To entry restores
        the reference's original lifetime as a single record (§5.1).
        """
        start = time.perf_counter() if self.config.track_timing else 0.0
        self.stats.references_added += 1
        self._ops_this_cp += 1
        if self.config.proactive_pruning and self.ws_to.remove_key(block, inode, offset, line, cp):
            self.stats.pruned_pairs += 1
            self._pruned_this_cp += 1
        else:
            self.ws_from.insert(FromRecord(block, inode, offset, line, cp))
        if self.config.track_timing:
            self.stats.update_seconds += time.perf_counter() - start

    def on_reference_removed(self, block: int, inode: int, offset: int, line: int, cp: int) -> None:
        """Record a removed reference; prunes a same-CP allocation if buffered.

        A reference that was both created and removed between two consistency
        points never survives to disk: the buffered From entry is deleted
        instead of a To entry being added.
        """
        start = time.perf_counter() if self.config.track_timing else 0.0
        self.stats.references_removed += 1
        self._ops_this_cp += 1
        if self.config.proactive_pruning and self.ws_from.remove_key(block, inode, offset, line, cp):
            self.stats.pruned_pairs += 1
            self._pruned_this_cp += 1
        else:
            self.ws_to.insert(ToRecord(block, inode, offset, line, cp))
        if self.config.track_timing:
            self.stats.update_seconds += time.perf_counter() - start

    def on_consistency_point(self, cp: int) -> None:
        """Flush both write stores to new Level-0 read-store runs.

        The per-``(table, partition)`` run writes are independent -- disjoint
        files, job-local writer state -- and fan out across
        ``BacklogConfig.flush_workers`` threads.  Determinism is preserved by
        construction: every run name is allocated *before* dispatch, in the
        exact order the serial loop consumed sequence numbers, and the
        finished runs are registered *after* the workers join, in that same
        allocation order -- so a parallel flush writes byte-identical files
        and builds an identical catalogue (``tests/test_parallel_equivalence
        .py`` enforces both).  With the default ``flush_workers=1`` the jobs
        run inline, in order, in this thread.
        """
        start = time.perf_counter() if self.config.track_timing else 0.0
        pages_before = self.backend.stats.pages_written
        flushed = len(self.ws_from) + len(self.ws_to)

        plan: List[Tuple[int, str, str, Sequence]] = []
        for table, store in (("from", self.ws_from), ("to", self.ws_to)):
            if not store:
                continue
            # The memtable sorts once here (sort-on-demand) and hands the
            # partitioner the snapshot list directly.
            for partition, records in self.partitioner.split_sorted_records(
                    store.sorted_records()):
                name = run_name(partition, table, "L0",
                                self.run_manager.next_sequence())
                plan.append((partition, table, name, records))
        if plan:
            # The flush changes which runs exist, so no parked page pipeline
            # from before it may be resumed.  An *empty* checkpoint changes
            # nothing (no runs, no store contents) and deliberately leaves
            # the resume cache intact: periodic idle consistency points must
            # not defeat a hot paginated scan.  The mutation stamp cannot
            # stand in here -- the flushed records may all have been
            # buffered *before* the page was parked.
            self._query_engine.invalidate_parked_cursors()
            self.stats.flush_pool.dispatches += 1
            bloom_bits = self.config.run_bloom_bits
            jobs = [
                (lambda name=name, table=table, records=records:
                    self.run_manager.build_run(name, table, records, bloom_bits))
                for _, table, name, records in plan
            ]
            try:
                readers = self._flush_executor.map(jobs, self.stats.flush_pool)
            except OSError:
                # A job exhausted its retries (or hit a non-retryable fault
                # like ENOSPC or a torn write) but the process survived.
                # Nothing was registered, so the failed batch is invisible to
                # queries; discard the partial output files and -- when the
                # failure happened under parallel fan-out -- fall back to
                # running this CP's jobs serially, the smallest execution
                # mode that can still make progress.  A crash-style failure
                # (non-OSError) propagates untouched: its partial files are
                # the recovery path's responsibility.
                self._discard_planned_runs(plan)
                if self._flush_executor.workers > 1 and len(jobs) > 1:
                    self.stats.flush_pool.serial_fallbacks += 1
                    try:
                        readers = self._flush_executor.run_serial(
                            jobs, self.stats.flush_pool)
                    except OSError:
                        self._discard_planned_runs(plan)
                        raise
                else:
                    raise
        else:
            readers = []
        # Reached only on a fully successful flush: a failed CP re-raises
        # above with the write stores intact, so the buffered updates are
        # either durably in the new runs or still queryable in memory.
        # Registration and the write-store clears form one critical section
        # under the catalogue's publish lock, so a concurrently pinned
        # snapshot observes the consistency point atomically -- the flushed
        # records are visible either only in the new Level-0 runs or only in
        # the (frozen) write stores, never in both and never in neither.
        with self.catalogue.publishing():
            for (partition, table, _, _), reader in zip(plan, readers):
                if reader is not None:
                    self.run_manager.add_run(partition, table, reader)
            self.ws_from.clear()
            self.ws_to.clear()

        elapsed = (time.perf_counter() - start) if self.config.track_timing else 0.0
        self.stats.flush_seconds += elapsed
        self.stats.consistency_points += 1
        self.stats.checkpoints.append(
            CheckpointStats(
                cp=cp,
                block_ops=self._ops_this_cp,
                persistent_ops=flushed,
                pages_written=self.backend.stats.pages_written - pages_before,
                flush_seconds=elapsed,
                ws_records_flushed=flushed,
                pruned_pairs=self._pruned_this_cp,
                cumulative_update_seconds=self.stats.update_seconds,
            )
        )
        self._ops_this_cp = 0
        self._pruned_this_cp = 0
        self.current_cp = cp + 1

        interval = self.config.maintenance_interval_cps
        if interval is not None and cp % interval == 0:
            self.maintain()

    def _discard_planned_runs(self, plan: List[Tuple[int, str, str, Sequence]]) -> None:
        """Delete the output files of a failed flush batch.

        None of the planned runs were registered, so deleting whatever
        subset reached the backend (complete runs from jobs that succeeded,
        partial files from the one that failed) restores the exact pre-CP
        on-disk state.  The jobs will recreate them deterministically --
        same names, same bytes -- if the CP is retried.
        """
        for _partition, _table, name, _records in plan:
            if self.backend.exists(name):
                self.backend.delete(name)
            self.cache.invalidate_file(name)

    def on_clone_created(self, new_line: int, parent_line: int, parent_version: int, cp: int) -> None:
        """Track a writable clone.  No back-reference records are written."""
        self.clone_graph.add_clone(new_line, parent_line, parent_version)
        # Clone expansion happens inside parked pipelines; a new clone must
        # not be missing from a resumed page.
        self._query_engine.invalidate_parked_cursors()

    def on_snapshot_deleted(self, line: int, version: int, is_zombie: bool, cp: int) -> None:
        """Track snapshot deletion; zombies keep their back references alive."""
        if is_zombie:
            self.zombies.add((line, version))
        else:
            self.zombies.discard((line, version))
        self._query_engine.invalidate_parked_cursors()

    # ---------------------------------------------------------- standalone API

    def add_reference(self, block: int, inode: int, offset: int, line: int = 0,
                      cp: Optional[int] = None) -> None:
        """Record that ``(inode, offset)`` in ``line`` now references ``block``."""
        self.on_reference_added(block, inode, offset, line, cp if cp is not None else self.current_cp)

    def remove_reference(self, block: int, inode: int, offset: int, line: int = 0,
                         cp: Optional[int] = None) -> None:
        """Record that ``(inode, offset)`` in ``line`` no longer references ``block``."""
        self.on_reference_removed(block, inode, offset, line, cp if cp is not None else self.current_cp)

    def checkpoint(self) -> int:
        """Take a consistency point (standalone use) and return its CP number."""
        cp = self.current_cp
        self.on_consistency_point(cp)
        return cp

    def register_clone(self, new_line: int, parent_line: int, parent_version: int) -> None:
        """Standalone equivalent of the clone-created callback."""
        self.on_clone_created(new_line, parent_line, parent_version, self.current_cp)

    # ------------------------------------------------------------- queries

    def select(self, spec: Optional[QuerySpec] = None, /, **kwargs) -> QueryResult:
        """Open a lazy cursor over the owners described by ``spec``.

        The primary query entry point: pass a prebuilt
        :class:`~repro.core.cursor.QuerySpec`, or its fields as keyword
        arguments (``backlog.select(first_block=0, num_blocks=64,
        live_only=True)``).  Nothing is read until the returned
        :class:`~repro.core.cursor.QueryResult` is driven; see
        :mod:`repro.core.cursor` for iteration, the terminal helpers and the
        resume-token pagination contract.  The four legacy list methods below
        are thin shims over this.
        """
        if spec is None:
            spec = QuerySpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a QuerySpec or keyword fields, not both")
        return QueryResult(self._query_engine, spec)

    def query(self, block: int) -> List[BackReference]:
        """All owners of one physical block (across snapshots and clones)."""
        return self.select(QuerySpec(block)).all()

    def query_range(self, first_block: int, num_blocks: int) -> List[BackReference]:
        """All owners of a contiguous range of physical blocks."""
        return self.select(QuerySpec(first_block, num_blocks)).all()

    def owners_at_version(self, block: int, version: int) -> List[BackReference]:
        """Owners of ``block`` at a specific consistency point."""
        return self.select(QuerySpec(block).at_version(version)).all()

    def live_owners(self, block: int) -> List[BackReference]:
        """Owners of ``block`` in the live file system."""
        return self.select(QuerySpec(block).live()).all()

    @property
    def query_stats(self):
        return self.stats.query

    def clear_caches(self) -> None:
        """Drop the page cache (the paper does this before query benchmarks)."""
        self.cache.clear()

    def close(self) -> None:
        """Release the worker pools and any parked cursor pipelines.

        Optional: idle pools are reclaimed when the instance is garbage
        collected, so this exists for callers (tests, benchmarks) that
        create many short-lived instances and want deterministic teardown.
        """
        self._query_engine.invalidate_parked_cursors()
        self._flush_executor.close()
        self._maintenance_executor.close()
        self._query_executor.close()

    # -------------------------------------------------------- maintenance

    def maintain(self) -> MaintenanceStats:
        """Run database maintenance (merge runs, precompute Combined, purge).

        Per-partition compactions run concurrently across
        ``BacklogConfig.maintenance_workers`` threads (partitions share no
        run files); the result -- and every on-disk byte -- is identical to
        the serial pass, because the compactor allocates all output run
        names before dispatching any work.
        """
        # Maintenance replaces runs out from under any parked page pipeline.
        self._query_engine.invalidate_parked_cursors()
        result = self._compactor.compact_all()
        self.stats.maintenance_runs.append(result)
        return result

    def relocate_block(self, old_block: int, new_block: Optional[int] = None) -> int:
        """Suppress stale back references of a block that has been moved.

        Returns the number of reference identities suppressed.  The caller is
        responsible for issuing the corresponding ``remove_reference`` /
        ``add_reference`` updates for the new location (a file system does
        this naturally when it rewrites the pointers); ``new_block`` is
        accepted for symmetry and documentation purposes only.

        Suppression streams through the cursor surface: each owner identity
        is suppressed as the pipeline yields it, so no result list is ever
        materialised.  (Mutating the deletion vector mid-iteration is safe:
        the pipeline only consults it for records it has not yet gathered,
        and every identity is suppressed strictly *after* all of its records
        have been consumed and folded.)
        """
        # Suppression changes what other in-flight scans should see; parked
        # page pipelines have already gathered past the deletion vector.
        self._query_engine.invalidate_parked_cursors()
        suppressed = 0
        for ref in self.select(QuerySpec(old_block)):
            self.deletion_vector.suppress(ref.block, ref.inode, ref.offset, ref.line)
            suppressed += 1
        return suppressed

    # ------------------------------------------------------------ accounting

    def database_size_bytes(self) -> int:
        """On-disk size of the live back-reference database.

        Counts exactly the catalogued runs -- the bytes a fresh query can
        read.  Quarantined files (damaged, kept for post-mortem until
        ``scrub --reclaim``) and deferred-delete files (retired behind a
        pinned reader, reclaimed at its release) sit on the backend too but
        are *not* database size; they are surfaced separately by
        :meth:`quarantined_bytes` and :meth:`deferred_bytes` so space
        accounting (Figures 6/8) is not inflated by maintenance transients
        or damage.
        """
        return self.run_manager.total_size_bytes()

    def quarantined_bytes(self) -> int:
        """Bytes held by quarantined run files still on the backend."""
        return self.run_manager.quarantined_bytes()

    def deferred_bytes(self) -> int:
        """Bytes held by retired files awaiting epoch reclamation."""
        return self.run_manager.deferred_bytes()

    def memory_footprint_bytes(self) -> int:
        """Approximate memory held by write stores, Bloom filters and caches."""
        return (
            self.ws_from.memory_estimate_bytes()
            + self.ws_to.memory_estimate_bytes()
            + self.run_manager.bloom_memory_bytes()
            + self.cache.used_bytes
            + self.deletion_vector.memory_estimate_bytes()
        )

    def space_overhead(self, physical_data_bytes: int) -> float:
        """Database size as a fraction of the physical data size (Figures 6/8).

        Uses :meth:`database_size_bytes`, so quarantined and deferred-delete
        files are excluded -- overhead measures the database, not backend
        residue awaiting scrub or reclamation.
        """
        if physical_data_bytes <= 0:
            return 0.0
        return self.database_size_bytes() / physical_data_bytes

    def pending_updates(self) -> int:
        """Number of records currently buffered in the write stores."""
        return len(self.ws_from) + len(self.ws_to)

    def pinned_snapshots(self) -> int:
        """Catalogue snapshots currently pinned by in-flight readers."""
        return self.catalogue.pinned_snapshots()

    def service_stats(self) -> Dict[str, object]:
        """JSON-ready engine counters for the served-system surface.

        Everything ``GET /stats`` and ``repro query --stats`` report about
        the engine comes through here -- including the flush, maintenance
        and query pool timings (:class:`~repro.core.stats.ExecutorStats`),
        which were previously collected but never surfaced over the wire.
        :class:`repro.cluster.ShardedBacklog` duck-types this method (adding
        a per-shard breakdown), which is what lets the HTTP service front a
        cluster transparently.
        """
        query = self.stats.query
        return {
            "queries": query.queries,
            "cursors_opened": query.cursors_opened,
            "resume_cache_hits": query.resume_cache_hits,
            "pages_read": query.pages_read,
            "query": query.to_dict(),
            "flush_pool": self.stats.flush_pool.to_dict(),
            "maintenance_pool": self.stats.maintenance_pool.to_dict(),
            "query_pool": self.stats.query_pool.to_dict(),
            "pinned_snapshots": self.pinned_snapshots(),
            "database_size_bytes": self.database_size_bytes(),
            "quarantined_bytes": self.quarantined_bytes(),
            "deferred_bytes": self.deferred_bytes(),
        }
