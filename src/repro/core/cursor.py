"""The cursor-based query surface: :class:`QuerySpec` and :class:`QueryResult`.

Backlog assembles the back-reference table *at query time* as a streaming
merge-join precisely so queries stay cheap at any database size; this module
exposes that laziness to callers instead of materialising every answer into
a list.  The surface is a single descriptor + cursor pair:

* :class:`QuerySpec` describes a query declaratively -- block range, version
  window, line/inode filters, live-only flag, limit, and an optional resume
  token -- and is immutable (the ``with_*`` helpers derive new specs).
* :class:`QueryResult` is the lazy cursor :meth:`repro.core.backlog.Backlog.
  select` returns.  Nothing is read until the caller iterates; terminal
  helpers (:meth:`QueryResult.first`, :meth:`~QueryResult.one_or_none`,
  :meth:`~QueryResult.count`, :meth:`~QueryResult.all`) drive the underlying
  pipeline exactly as far as they need.  ``.first()`` on a whole-device range
  reads one reference group and abandons the generator chain; ``.count()``
  never holds more than one :class:`~repro.core.records.BackReference`.

Resume-token contract
---------------------

Pagination is resumable because the query pipeline is key-ordered: results
are emitted in ascending ``(block, inode, offset, line)`` owner order, so the
identity of the last-emitted owner is a complete description of where a scan
stopped.  :attr:`QueryResult.resume_token` packs that identity into an opaque
URL-safe string; feeding it back via :meth:`QuerySpec.after` (or the
``resume_token`` field) re-enters the pipeline *after* that owner:

* The token restarts the gather step at the owner's reference group, not at
  the start of the block range -- partitions and runs wholly before it are
  never probed again.
* Tokens are positional, not snapshots: a resumed page reflects the database
  at resume time.  Checkpoints and maintenance between pages are safe --
  owners that still exist and sort after the token are returned exactly once;
  results the pipeline already emitted are never revisited.
* A token is only meaningful for the block range that produced it; resuming
  outside that range raises :class:`ValueError`, as does a malformed token.
* :attr:`QueryResult.resume_token` is ``None`` once the cursor is exhausted
  (the page ended because the data did, not because the limit was reached).

Equivalence with the legacy surface
-----------------------------------

The four legacy query methods are thin shims over ``select``: filters are
*owner-level* predicates, so ``select(QuerySpec(b, at_version=v))`` returns
the same full-range :class:`~repro.core.records.BackReference` tuples the
post-filtering ``owners_at_version`` always did (``tools/check_api.py`` and
``tests/test_cursor.py`` lock the equivalence down).
"""

from __future__ import annotations

import base64
import struct
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.records import BackReference, ReferenceKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.query import QueryEngine

__all__ = [
    "QuerySpec",
    "QueryResult",
    "encode_resume_token",
    "decode_resume_token",
    "resume_token_shard",
]

#: Resume tokens pack the last-emitted owner identity as four unsigned
#: 64-bit fields -- the same width the on-disk record fields use.
_TOKEN_STRUCT = struct.Struct("<4Q")

#: Token format tag; bumped if the payload layout ever changes so stale
#: tokens fail loudly instead of resuming at a garbage key.
_TOKEN_PREFIX = "bkq1."

#: Shard-extended tokens (minted by the cluster's scatter-gather cursor)
#: append the owning shard index as a fifth field.  The shard component is
#: *advisory*: the owner identity alone fully determines where the scan
#: resumes (blocks map to partitions map to shards deterministically), so a
#: v2 token remains valid on a single-process Backlog -- and on a cluster
#: with a different shard count -- which decode simply routes by block.
_TOKEN_STRUCT_V2 = struct.Struct("<5Q")
_TOKEN_PREFIX_V2 = "bkq2."


def encode_resume_token(key, shard: Optional[int] = None) -> str:
    """Pack an owner identity into an opaque, URL-safe resume token.

    ``key`` is anything carrying ``block`` / ``inode`` / ``offset`` /
    ``line`` attributes -- a :class:`~repro.core.records.ReferenceKey` or a
    :class:`~repro.core.records.BackReference` result itself.  With
    ``shard`` set (the cluster's scatter-gather cursor records which worker
    emitted the owner), a v2 token carrying the shard index is minted;
    both formats decode everywhere.
    """
    if shard is None:
        payload = _TOKEN_STRUCT.pack(key.block, key.inode, key.offset, key.line)
        prefix = _TOKEN_PREFIX
    else:
        payload = _TOKEN_STRUCT_V2.pack(key.block, key.inode, key.offset,
                                        key.line, shard)
        prefix = _TOKEN_PREFIX_V2
    return prefix + base64.urlsafe_b64encode(payload).decode("ascii").rstrip("=")


def _decode_token_payload(token: str):
    """Shared strict decode; returns the unpacked integer fields."""
    if not isinstance(token, str):
        raise ValueError(f"malformed resume token: {token!r}")
    if token.startswith(_TOKEN_PREFIX):
        codec = _TOKEN_STRUCT
        body = token[len(_TOKEN_PREFIX):]
    elif token.startswith(_TOKEN_PREFIX_V2):
        codec = _TOKEN_STRUCT_V2
        body = token[len(_TOKEN_PREFIX_V2):]
    else:
        raise ValueError(f"malformed resume token: {token!r}")
    try:
        payload = base64.b64decode(body + "=" * (-len(body) % 4),
                                   altchars=b"-_", validate=True)
        return codec.unpack(payload)
    except (ValueError, struct.error) as exc:
        # binascii.Error subclasses ValueError, so strict-alphabet failures
        # land here too.
        raise ValueError(f"malformed resume token: {token!r}") from exc


def decode_resume_token(token: str) -> ReferenceKey:
    """Unpack a resume token; raises :class:`ValueError` on malformed input.

    Validation is strict: the body must be exactly the url-safe base64 of a
    four-field (v1) or five-field (v2, shard-extended) payload.
    ``validate=True`` matters -- the default decoder silently *discards*
    characters outside the alphabet, which would let a corrupted or
    hand-mangled token decode to a garbage-but-plausible key and silently
    resume the scan at the wrong owner instead of failing.
    """
    fields = _decode_token_payload(token)
    return ReferenceKey(*fields[:4])


def resume_token_shard(token: str) -> Optional[int]:
    """The shard component of a v2 token, or ``None`` for a v1 token.

    Diagnostic companion to :func:`decode_resume_token`: the cluster stamps
    the emitting shard into its tokens, but resume routing is always by the
    owner's block, so the component is never *required* to continue a scan.
    """
    fields = _decode_token_payload(token)
    return fields[4] if len(fields) == 5 else None


def _frozen(values: Optional[Iterable[int]]) -> Optional[FrozenSet[int]]:
    if values is None:
        return None
    return values if isinstance(values, frozenset) else frozenset(values)


@dataclass(frozen=True)
class QuerySpec:
    """A declarative description of one back-reference query.

    Attributes
    ----------
    first_block / num_blocks:
        The physical block range ``[first_block, first_block + num_blocks)``
        to query.  ``QuerySpec(b)`` is the single-block point query.
    version_window:
        Optional half-open ``(lo, hi)`` window of global CP numbers.  An
        owner is returned when at least one of its version ranges overlaps
        the window; the returned :class:`~repro.core.records.BackReference`
        keeps its *full* range set (the legacy ``owners_at_version``
        semantics).  :meth:`at_version` builds the one-version window.
    live_only:
        Return only owners that still reference the block in the live file
        system (some range extends to ``INFINITY``).
    lines / inodes:
        Optional owner filters.  The inode filter is pushed below the
        merge-join (whole reference groups are skipped before any joining or
        clone expansion happens); the line filter is pushed into clone
        expansion (filtered lines never reach masking or grouping, while
        still participating in inheritance resolution).
    limit:
        Stop after this many owners.  Combined with the pipeline's laziness
        this is an early exit, not a truncation: once the limit is reached no
        further run pages are read.
    resume_token:
        Opaque token from a previous :attr:`QueryResult.resume_token`;
        re-enters the key-ordered pipeline after the owner that produced it
        (see the module docstring for the contract).
    """

    first_block: int
    num_blocks: int = 1
    version_window: Optional[Tuple[int, int]] = None
    live_only: bool = False
    lines: Optional[FrozenSet[int]] = None
    inodes: Optional[FrozenSet[int]] = None
    limit: Optional[int] = None
    resume_token: Optional[str] = None

    def __post_init__(self) -> None:
        if self.first_block < 0:
            raise ValueError("first_block must be non-negative")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.limit is not None and self.limit <= 0:
            raise ValueError("limit must be positive when set")
        if self.version_window is not None:
            lo, hi = self.version_window
            if lo >= hi:
                raise ValueError(f"empty or inverted version window [{lo}, {hi})")
            object.__setattr__(self, "version_window", (lo, hi))
        object.__setattr__(self, "lines", _frozen(self.lines))
        object.__setattr__(self, "inodes", _frozen(self.inodes))
        if self.resume_token is not None:
            # Validate eagerly so a stale or foreign token fails at spec
            # construction, not deep inside the pipeline.
            key = decode_resume_token(self.resume_token)
            if not self.first_block <= key.block < self.first_block + self.num_blocks:
                raise ValueError(
                    f"resume token points at block {key.block}, outside the "
                    f"spec's range [{self.first_block}, "
                    f"{self.first_block + self.num_blocks})"
                )

    # ------------------------------------------------------------- deriving

    def at_version(self, version: int) -> "QuerySpec":
        """Owners whose reference existed at CP ``version`` (legacy
        ``owners_at_version`` semantics: full ranges are returned)."""
        return replace(self, version_window=(version, version + 1))

    def live(self) -> "QuerySpec":
        """Owners still referencing the block in the live file system."""
        return replace(self, live_only=True)

    def with_limit(self, limit: int) -> "QuerySpec":
        """Stop after ``limit`` owners (early exit, not truncation)."""
        return replace(self, limit=limit)

    def after(self, resume_token: Optional[str]) -> "QuerySpec":
        """Resume the scan after the owner a previous page stopped at."""
        return replace(self, resume_token=resume_token)

    # ------------------------------------------------------------ interface

    @property
    def resume_key(self) -> Optional[ReferenceKey]:
        """The decoded resume identity, or ``None`` for a fresh scan."""
        if self.resume_token is None:
            return None
        return decode_resume_token(self.resume_token)

    @property
    def is_unfiltered(self) -> bool:
        """True when the spec is a plain range query with no cursor state.

        ``QueryResult.all()`` answers such specs through the engine's
        size-dispatched list path -- the exact code the legacy methods always
        ran -- so the shims keep their byte-identical answers and their
        narrow-query constant factor.
        """
        return (
            self.version_window is None
            and not self.live_only
            and self.lines is None
            and self.inodes is None
            and self.limit is None
            and self.resume_token is None
        )


class QueryResult:
    """A lazy, single-use cursor over one query's back references.

    Created by :meth:`repro.core.backlog.Backlog.select`; nothing is read
    from disk until the cursor is driven.  The cursor is an iterator --
    ``for ref in result`` streams owners in ``(block, inode, offset, line)``
    order -- and the terminal helpers pull exactly as much as they need.

    A cursor is *single use*: iteration state is shared between ``__iter__``,
    the terminal helpers and :attr:`resume_token`, exactly like a file
    object.  Derive a fresh spec (cheap) to re-run a query.
    """

    def __init__(self, engine: "QueryEngine", spec: QuerySpec) -> None:
        self._engine = engine
        self.spec = spec
        self._iterator: Optional[Iterator[Tuple]] = None
        self._emitted = 0
        # The last-emitted owner doubles as the resume identity: its first
        # four elements are exactly the block/inode/offset/line fields a
        # ReferenceKey packs, whichever pipeline (columnar raw tuple or
        # materialised BackReference) produced it.
        self._last: Optional[Tuple] = None
        self._exhausted = False
        self._page_full = False

    # ------------------------------------------------------------ iteration

    def __iter__(self) -> "QueryResult":
        return self

    def _next_raw(self) -> Tuple:
        """Advance the cursor one owner *without* materialising it.

        The engine emits raw owners -- plain ``(block, inode, offset, line,
        ranges)`` tuples from the columnar pipeline, BackReferences from the
        other paths -- and everything cursor-state related (resume identity,
        limits, parking, stats finalisation) only needs their shape.
        :meth:`__next__` materialises for the public surface; wire paths
        (:meth:`all_rows`) skip that entirely.
        """
        if self._exhausted or self._page_full:
            raise StopIteration
        if self._iterator is None:
            # First pull, or a pull after the pipeline was released early
            # (``first()`` / ``close()``): (re)open the engine cursor.  A
            # reopen resumes after the last-emitted owner via the same token
            # machinery pagination uses, so results are never replayed.
            spec = self.spec
            reopened = self._last is not None
            if reopened:
                spec = spec.after(
                    encode_resume_token(ReferenceKey(*self._last[:4])))
                if spec.limit is not None:
                    spec = replace(spec, limit=spec.limit - self._emitted)
            self._iterator = self._engine.open_cursor(spec, reopened=reopened)
        try:
            ref = next(self._iterator)
        except StopIteration:
            self._finish()
            raise
        self._emitted += 1
        self._last = ref
        if self.spec.limit is not None and self._emitted >= self.spec.limit:
            # The page is full; close the pipeline now so its stats are
            # finalised even if the caller never pulls the StopIteration.
            self._page_full = True
            self._close_pipeline()
        return ref

    def __next__(self) -> BackReference:
        ref = self._next_raw()
        if type(ref) is not BackReference:
            # The public materialisation boundary: the columnar pipeline's
            # raw owner tuple becomes a BackReference here and nowhere
            # earlier.
            ref = BackReference._make(ref)
        return ref

    def _finish(self) -> None:
        limit = self.spec.limit
        if limit is None or self._emitted < limit:
            # The pipeline ran out of data before any limit: there is no
            # next page and the token must say so.
            self._exhausted = True
        self._close_pipeline()

    def _close_pipeline(self) -> None:
        if self._iterator is not None:
            self._iterator.close()  # type: ignore[attr-defined]
            self._iterator = None

    def close(self) -> None:
        """Abandon the cursor early, releasing the underlying pipeline."""
        self._close_pipeline()

    # ------------------------------------------------------------ terminals

    def all(self) -> List[BackReference]:
        """Materialise every remaining result as a list.

        For a plain unfiltered spec this delegates to the engine's
        size-dispatched list query (the exact legacy code path), which is
        what makes the legacy methods byte-identical, stats-identical thin
        shims.  Filtered, limited or resumed specs drain the cursor.
        """
        if self._iterator is None and self._emitted == 0 and self.spec.is_unfiltered:
            results = self._engine.query_range(self.spec.first_block, self.spec.num_blocks)
            self._emitted = len(results)
            if results:
                self._last = results[-1]
            self._exhausted = True
            return results
        return list(self)

    def all_rows(self) -> List[Tuple]:
        """Every remaining owner as *raw* tuples, skipping materialisation.

        The wire path's terminal: the cluster worker drains a page with this
        and packs the plain ``(block, inode, offset, line, ranges)`` tuples
        straight into a v2 ``QUERY_PAGE`` frame, so a record that travelled
        the columnar pipeline never becomes a BackReference on the worker at
        all.  Identical drive of the underlying pipeline as :meth:`all` --
        same dispatch (including the unfiltered list-path delegation, whose
        BackReferences are themselves shape-compatible tuples), same stats,
        same resume/exhausted state afterwards.
        """
        if self._iterator is None and self._emitted == 0 and self.spec.is_unfiltered:
            return self.all()
        results: List[Tuple] = []
        append = results.append
        while True:
            try:
                append(self._next_raw())
            except StopIteration:
                return results

    def first(self) -> Optional[BackReference]:
        """The next result, or ``None``; stops reading immediately after it.

        On a wide range this is the early-exit path: the streaming pipeline
        is abandoned after one reference group, leaving the remaining run
        pages unread (the ``cursor.first`` benchmark section quantifies it).
        """
        ref = next(self, None)
        self._close_pipeline()
        return ref

    def one_or_none(self) -> Optional[BackReference]:
        """The single result, ``None`` if empty; raises if more than one."""
        first = next(self, None)
        if first is None:
            return None
        second = next(self, None)
        self._close_pipeline()
        if second is not None:
            raise ValueError(
                f"expected at most one back reference, got several starting "
                f"with {first} and {second}"
            )
        return first

    def count(self) -> int:
        """Number of remaining results, counted without materialising them."""
        return sum(1 for _ in self)

    def limit(self, limit: int) -> "QueryResult":
        """A fresh cursor over the same query capped at ``limit`` owners."""
        if self._iterator is not None or self._emitted:
            raise RuntimeError("limit() must be applied before iteration starts")
        return QueryResult(self._engine, self.spec.with_limit(limit))

    # ------------------------------------------------------------ cursor state

    @property
    def emitted(self) -> int:
        """How many owners this cursor has yielded so far."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        """True once the underlying data ran out (no next page exists)."""
        return self._exhausted

    @property
    def resume_token(self) -> Optional[str]:
        """Opaque token resuming after the last-emitted owner.

        ``None`` when there is nothing to resume: either the cursor is
        exhausted, or nothing has been emitted yet and the spec carried no
        token of its own (re-issue the original spec instead).
        """
        if self._exhausted:
            return None
        if self._last is None:
            return self.spec.resume_token
        return encode_resume_token(ReferenceKey(*self._last[:4]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "exhausted" if self._exhausted else f"emitted={self._emitted}"
        return f"<QueryResult {self.spec!r} {state}>"
