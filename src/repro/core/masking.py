"""Masking query results against the set of valid snapshot versions.

A Combined record's ``[from, to)`` range may include consistency points or
snapshots that have since been deleted; before returning query results, the
range must be checked against the versions that still exist (§4.2.1).  The
set of *valid* versions for a line is:

* the retained snapshot versions of that line,
* zombie versions (deleted snapshots that still have cloned descendants), and
* the current CP number (representing the live file system), when the line
  still has a writable volume.

Knowledge of which snapshots are retained lives outside Backlog (in the file
system), so the query engine consults a :class:`VersionAuthority`.  Three
implementations are provided: an adapter over the simulator's snapshot
manager, an explicit table for standalone use, and a permissive authority
that treats every version as valid (useful when the caller does not manage
snapshots at all).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.core.records import CombinedRecord
from repro.util.intervals import any_version_in

__all__ = [
    "VersionAuthority",
    "AllVersionsAuthority",
    "ExplicitVersionAuthority",
    "SnapshotManagerAuthority",
    "iter_mask_records",
    "mask_records",
]


class VersionAuthority:
    """Answers "which versions of line ``l`` still exist?"."""

    def valid_versions(self, line: int) -> Optional[Sequence[int]]:
        """Sorted valid versions of ``line``, or ``None`` meaning "all valid"."""
        raise NotImplementedError


class AllVersionsAuthority(VersionAuthority):
    """Treats every version of every line as valid (masking is a no-op)."""

    def valid_versions(self, line: int) -> Optional[Sequence[int]]:
        return None


class ExplicitVersionAuthority(VersionAuthority):
    """A hand-maintained table of valid versions, for standalone callers.

    The live file system is represented by calling :meth:`set_current_cp`;
    snapshots are added and removed explicitly.
    """

    def __init__(self) -> None:
        self._versions: Dict[int, Set[int]] = {}
        self._live_lines: Set[int] = {0}
        self._current_cp = 1

    def set_current_cp(self, cp: int) -> None:
        self._current_cp = cp

    def add_line(self, line: int) -> None:
        self._live_lines.add(line)

    def remove_line(self, line: int) -> None:
        self._live_lines.discard(line)

    def add_snapshot(self, line: int, version: int) -> None:
        self._versions.setdefault(line, set()).add(version)

    def remove_snapshot(self, line: int, version: int) -> None:
        self._versions.get(line, set()).discard(version)

    def valid_versions(self, line: int) -> Optional[Sequence[int]]:
        versions = set(self._versions.get(line, set()))
        if line in self._live_lines:
            versions.add(self._current_cp)
        return sorted(versions)


class SnapshotManagerAuthority(VersionAuthority):
    """Adapter over the simulator's file system / snapshot manager."""

    def __init__(self, filesystem) -> None:
        self._fs = filesystem

    def valid_versions(self, line: int) -> Optional[Sequence[int]]:
        current_cp = self._fs.global_cp if line in self._fs.volumes else None
        return self._fs.snapshots.retained_versions(line, current_cp)


def iter_mask_records(
    records: Iterable[CombinedRecord],
    authority: VersionAuthority,
) -> Iterator[CombinedRecord]:
    """Lazily drop records whose entire lifetime refers to deleted versions.

    Records keep their original ``[from, to)`` boundaries (callers may care
    about the true allocation lifetime); a record survives if at least one
    valid version of its line falls inside the range.

    A pure filter: the relative order of surviving records is the input
    order, so a sorted stream (as the streaming query pipeline produces)
    stays sorted.  The authority is consulted once per distinct line, not
    once per record; the generator reads exactly one record ahead of what it
    has yielded.  The per-record survival test is a direct bisect over the
    line's valid versions (:func:`repro.util.intervals.any_version_in`) --
    no per-record list allocation on the query hot path.
    """
    cache: Dict[int, Optional[Sequence[int]]] = {}
    for record in records:
        line = record[3]
        if line not in cache:
            cache[line] = authority.valid_versions(line)
        valid = cache[line]
        if valid is None or any_version_in(valid, record[4], record[5]):
            yield record


def mask_records(
    records: Iterable[CombinedRecord],
    authority: VersionAuthority,
) -> List[CombinedRecord]:
    """Materialised form of :func:`iter_mask_records` (same filtering rule)."""
    return list(iter_mask_records(records, authority))
