"""Bloom filters over physical block numbers.

Queries specify a block or a range of blocks, and those blocks may be present
in only some of the Level-0 read-store runs that accumulate between
compactions.  To avoid opening every run, the query engine keeps one Bloom
filter per run, built over the physical block numbers the run contains
(§5.1).  The paper's configuration uses four hash functions and a default
filter size of 32 KB for runs of up to 32 000 operations (expected false
positive rate about 2.4 %), expandable to 1 MB for the Combined read store.

Filters built for small runs are shrunk by repeated halving -- a Bloom filter
whose size is a power of two can be halved by OR-ing its two halves together
without rehashing the underlying keys.

Hashing
-------
Filters hash 64-bit block numbers with a splitmix64-style multiplicative
mixer (two multiply/xor-shift rounds producing the ``h1 + i * h2`` double
hashing pair).  This replaced an MD5-based scheme: an integer mixer costs a
handful of arithmetic operations per key instead of a full cryptographic
digest, which matters because the filter is probed on every query and fed on
every flush.

Serialization format versions
-----------------------------
Two on-disk layouts exist, distinguished by :meth:`BloomFilter.from_bytes`:

* **Version 1 (legacy)** -- header ``<QQQ`` = ``(num_bits, num_hashes,
  num_items)`` followed by the bit array.  Filters serialized in this layout
  were built with MD5-based double hashing, so a deserialized version-1
  filter keeps probing with MD5 (``hash_version == 1``): existing serialized
  runs stay queryable with no false negatives.
* **Version 2 (current)** -- header ``<QQQQ`` = ``(magic | version,
  num_bits, num_hashes, num_items)`` followed by the bit array.  The first
  field carries ``_FORMAT_MAGIC_BASE`` in its upper bytes and the format
  version in its low byte; a legacy header can never collide with it because
  its first field (``num_bits``) is always a power of two.

Range probes
------------
Version-2 filters additionally insert one *stride key* per
``2**STRIDE_SHIFT``-block aligned group a block falls into.  A range query
over hundreds of blocks then probes the filter once per aligned stride
overlapping the range instead of once per block (``num_hashes`` bit tests
per probe either way), at the cost of up to a stride's worth of slack at the
range edges.  Version-1 filters have no stride keys and fall back to
per-block probing.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Tuple

__all__ = [
    "BloomFilter",
    "BloomBulkAdder",
    "DEFAULT_FILTER_BITS",
    "COMBINED_FILTER_BITS",
    "FORMAT_V1",
    "FORMAT_V2",
    "STRIDE_SHIFT",
]

#: Default filter size for a From/To run covering one CP (32 KB of bits).
DEFAULT_FILTER_BITS = 32 * 1024 * 8
#: Maximum filter size used for the Combined read store (1 MB of bits).
COMBINED_FILTER_BITS = 1024 * 1024 * 8

#: Legacy serialization layout (MD5 double hashing, no stride keys).
FORMAT_V1 = 1
#: Current serialization layout (splitmix64 double hashing + stride keys).
FORMAT_V2 = 2

#: Range probes test one key per 2**STRIDE_SHIFT-block aligned stride.
STRIDE_SHIFT = 6

#: Ranges wider than this short-circuit to True (the cost of a false
#: negative-free answer would exceed just reading the run).  Kept at the
#: paper-era value so run-probing behaviour is unchanged across versions.
_MAX_RANGE_BLOCKS = 256

#: Below this width a range query probes per block: a stride probe carries up
#: to ``2**STRIDE_SHIFT - 1`` blocks of slack on each edge, which would
#: dominate the false-positive rate of a narrow range.
_PER_BLOCK_RANGE_LIMIT = 16

_HEADER_V1 = struct.Struct("<QQQ")   # num_bits, num_hashes, num_items
_HEADER_V2 = struct.Struct("<QQQQ")  # magic|version, num_bits, num_hashes, num_items
_U64 = struct.Struct("<Q")

#: Upper seven bytes of the version-2 header's first field ("BLOOMV\0").
_FORMAT_MAGIC_BASE = 0x424C4F4F4D560000

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: XORed into stride identifiers so stride keys and block keys cannot alias.
_STRIDE_SEED = 0x8C95B8C1F0F2D3E5


def _hash_pair(key: int) -> Tuple[int, int]:
    """Splitmix64 double-hashing pair ``(h1, h2)`` for a 64-bit key.

    One full splitmix64 finalizer round; ``h1`` is the mixed value and
    ``h2`` its upper half (made odd), so the ``h1 + i * h2`` probe sequence
    draws both legs from independent, well-mixed bits.
    """
    z = (key + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    z ^= z >> 31
    return z, (z >> 32) | 1


def _md5_pair(key: int) -> Tuple[int, int]:
    """Legacy double-hashing pair derived from one MD5 digest."""
    digest = hashlib.md5(key.to_bytes(8, "little", signed=False)).digest()
    return int.from_bytes(digest[:8], "little"), int.from_bytes(digest[8:16], "little") | 1


class BloomFilter:
    """A standard Bloom filter with ``k`` independent hash functions.

    The filter hashes 64-bit block numbers.  Membership tests never produce
    false negatives; the false-positive rate depends on the bit size and the
    number of inserted items.

    ``hash_version`` selects the hashing scheme: 2 (default) is the cheap
    splitmix64 mixer with stride keys for range probes, 1 is the legacy MD5
    scheme kept so deserialized version-1 filters -- and benchmark baselines
    -- keep their original behaviour.
    """

    def __init__(self, num_bits: int = DEFAULT_FILTER_BITS, num_hashes: int = 4,
                 hash_version: int = FORMAT_V2) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        if hash_version not in (FORMAT_V1, FORMAT_V2):
            raise ValueError(f"unknown hash_version {hash_version}")
        # Round the size up to a power of two so the filter can be halved.
        self.num_bits = 1 << (num_bits - 1).bit_length()
        self.num_hashes = num_hashes
        self.hash_version = hash_version
        self._bits = bytearray(self.num_bits // 8)
        self.num_items = 0
        # Distinct keys actually hashed into the filter (block keys plus, on
        # v2, stride keys).  Drives shrink_to_fit sizing: a v2 filter over
        # scattered blocks inserts up to two keys per item and must not be
        # shrunk as if it held one.
        self._keys_inserted = 0

    # ------------------------------------------------------------ interface

    def add(self, block: int) -> None:
        """Insert a block number."""
        self._insert_key(block)
        self.num_items += 1

    def add_many(self, blocks: Iterable[int]) -> None:
        """Bulk insert.  Consecutive duplicate blocks are hashed only once.

        The read-store builder feeds this the (block-sorted) record stream of
        a run, where long runs of records share one physical block; skipping
        the repeat hashing makes the flush cheaper without changing the bit
        array.  ``num_items`` still counts every supplied item so filter
        sizing matches the legacy per-record behaviour.
        """
        count = 0
        last: object = None
        if self.hash_version == FORMAT_V1:
            insert = self._insert_key
            for block in blocks:
                count += 1
                if block == last:
                    continue
                last = block
                insert(block)
            self.num_items += count
            return
        # v2 bulk path: block-sorted input means long runs of blocks share an
        # aligned stride, so the stride key is re-inserted only when the
        # stride changes.
        bits = self._bits
        mask = self.num_bits - 1
        num_hashes = self.num_hashes
        last_stride: object = None
        keys = 0
        for block in blocks:
            count += 1
            if block == last:
                continue
            last = block
            keys += 1
            h1, h2 = _hash_pair(block)
            for _ in range(num_hashes):
                position = h1 & mask
                bits[position >> 3] |= 1 << (position & 7)
                h1 += h2
            stride = block >> STRIDE_SHIFT
            if stride != last_stride:
                last_stride = stride
                keys += 1
                h1, h2 = _hash_pair(stride ^ _STRIDE_SEED)
                for _ in range(num_hashes):
                    position = h1 & mask
                    bits[position >> 3] |= 1 << (position & 7)
                    h1 += h2
        self.num_items += count
        self._keys_inserted += keys

    # Backwards-compatible alias.
    add_all = add_many

    def bulk_adder(self) -> "BloomBulkAdder":
        """A stateful bulk inserter that deduplicates *across* chunks.

        :meth:`add_many` forgets its last-block/last-stride dedup state when
        it returns, so feeding it one leaf at a time re-hashes every block
        that spans a leaf boundary (idempotent for the bit array, but wasted
        hashing and an inflated ``_keys_inserted``).  The read-store writer
        obtains one adder per run and feeds it every leaf's key slice; the
        bulk ``build`` path feeds the same adder the whole sorted record
        array in one chunk.  Both routes are the *same* code, so the filter
        bits and key counts are chunk-invariant -- the two writer interfaces
        stay byte-identical (``bloom_bulk_build`` benchmarks the win).
        """
        return BloomBulkAdder(self)

    def might_contain(self, block: int) -> bool:
        """True if ``block`` may have been inserted (no false negatives)."""
        h1, h2 = _hash_pair(block) if self.hash_version == FORMAT_V2 else _md5_pair(block)
        bits = self._bits
        mask = self.num_bits - 1
        for _ in range(self.num_hashes):
            position = h1 & mask
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
            h1 += h2
        return True

    def might_contain_range(self, first_block: int, num_blocks: int) -> bool:
        """True if any block in ``[first_block, first_block + num_blocks)`` may be present.

        Version-2 filters answer wide ranges with one probe per aligned
        ``2**STRIDE_SHIFT``-block stride (see the module docstring); narrow
        ranges and legacy filters probe per block.  Ranges wider than
        ``_MAX_RANGE_BLOCKS`` short-circuit to ``True``.
        """
        if num_blocks <= 0:
            return False
        if num_blocks > _MAX_RANGE_BLOCKS:
            return True
        if self.hash_version == FORMAT_V2 and num_blocks > _PER_BLOCK_RANGE_LIMIT:
            first_stride = first_block >> STRIDE_SHIFT
            last_stride = (first_block + num_blocks - 1) >> STRIDE_SHIFT
            return any(
                self._might_contain_stride(stride)
                for stride in range(first_stride, last_stride + 1)
            )
        return any(self.might_contain(first_block + i) for i in range(num_blocks))

    # ------------------------------------------------------------- resizing

    def shrink_to(self, target_bits: int) -> None:
        """Halve the filter repeatedly until it is no larger than ``target_bits``.

        Halving ORs the upper half of the bit array onto the lower half; all
        previously inserted keys (including stride keys) remain members
        because the position masks are consistent power-of-two moduli.
        """
        if target_bits <= 0:
            raise ValueError("target_bits must be positive")
        while self.num_bits > target_bits and self.num_bits > 8:
            half_bytes = len(self._bits) // 2
            lower = self._bits[:half_bytes]
            upper = self._bits[half_bytes:]
            self._bits = bytearray(a | b for a, b in zip(lower, upper))
            self.num_bits //= 2

    def shrink_to_fit(self, bits_per_item: int = 10, min_bits: int = 1024) -> None:
        """Shrink the filter to roughly ``bits_per_item`` bits per inserted item.

        Runs flushed during quiet periods contain far fewer than 32 000
        records; shrinking their filters saves memory without a meaningful
        increase in false positives.  Sizing honours whichever is larger of
        the item count and the keys actually hashed, so a version-2 filter
        over scattered blocks (whose stride keys nearly double the inserted
        keys) is not shrunk below its real load.
        """
        target = max(min_bits, max(self.num_items, self._keys_inserted) * bits_per_item)
        self.shrink_to(1 << (max(target, 8) - 1).bit_length())

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize the filter (stored alongside its read-store run).

        A version-1 filter serializes in the legacy layout so a round trip
        through ``from_bytes`` is lossless in both directions.
        """
        if self.hash_version == FORMAT_V1:
            header = _HEADER_V1.pack(self.num_bits, self.num_hashes, self.num_items)
        else:
            header = _HEADER_V2.pack(
                _FORMAT_MAGIC_BASE | FORMAT_V2, self.num_bits, self.num_hashes, self.num_items
            )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Deserialize either format version, validating the header.

        Raises :class:`ValueError` on corrupt input: short or truncated
        blobs, a non-power-of-two bit count, an implausible hash count, or an
        unknown format version.  Trailing padding after the bit array is
        tolerated (run files store the filter in whole pages).
        """
        if len(data) < _HEADER_V1.size:
            raise ValueError("Bloom filter blob shorter than any known header")
        (first_field,) = _U64.unpack_from(data, 0)
        if first_field & ~0xFF == _FORMAT_MAGIC_BASE:
            version = first_field & 0xFF
            if version != FORMAT_V2:
                raise ValueError(f"unsupported Bloom filter format version {version}")
            if len(data) < _HEADER_V2.size:
                raise ValueError("truncated version-2 Bloom filter header")
            _, num_bits, num_hashes, num_items = _HEADER_V2.unpack_from(data, 0)
            header_size = _HEADER_V2.size
        else:
            version = FORMAT_V1
            num_bits, num_hashes, num_items = _HEADER_V1.unpack_from(data, 0)
            header_size = _HEADER_V1.size
        if num_bits < 8 or num_bits & (num_bits - 1):
            raise ValueError(f"corrupt Bloom filter: num_bits={num_bits} is not a power of two >= 8")
        if not 1 <= num_hashes <= 64:
            raise ValueError(f"corrupt Bloom filter: implausible num_hashes={num_hashes}")
        payload_size = num_bits // 8
        if len(data) - header_size < payload_size:
            raise ValueError(
                f"truncated Bloom filter: need {payload_size} payload bytes, "
                f"have {len(data) - header_size}"
            )
        instance = cls.__new__(cls)
        instance.num_bits = num_bits
        instance.num_hashes = num_hashes
        instance.num_items = num_items
        instance.hash_version = version
        # Not serialized; a conservative reconstruction for any later shrink.
        instance._keys_inserted = num_items * (2 if version == FORMAT_V2 else 1)
        instance._bits = bytearray(data[header_size:header_size + payload_size])
        return instance

    # ----------------------------------------------------------- statistics

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set (a rough proxy for false-positive pressure)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits if self.num_bits else 0.0

    def expected_false_positive_rate(self) -> float:
        """False-positive probability estimated from the observed fill.

        Computed as ``fill_ratio() ** num_hashes`` rather than from the
        analytic ``num_items`` formula, so it stays accurate for version-2
        filters whose stride keys set bits beyond the per-item accounting
        (and for filters that have been halved).
        """
        if self.num_items == 0:
            return 0.0
        return self.fill_ratio() ** self.num_hashes

    # ------------------------------------------------------------ internals

    def _insert_key(self, block: int) -> None:
        """Set the bit positions for one block (and, on v2, its stride key)."""
        bits = self._bits
        mask = self.num_bits - 1
        if self.hash_version == FORMAT_V1:
            self._keys_inserted += 1
            h1, h2 = _md5_pair(block)
            for _ in range(self.num_hashes):
                position = h1 & mask
                bits[position >> 3] |= 1 << (position & 7)
                h1 += h2
            return
        self._keys_inserted += 2
        h1, h2 = _hash_pair(block)
        for _ in range(self.num_hashes):
            position = h1 & mask
            bits[position >> 3] |= 1 << (position & 7)
            h1 += h2
        h1, h2 = _hash_pair((block >> STRIDE_SHIFT) ^ _STRIDE_SEED)
        for _ in range(self.num_hashes):
            position = h1 & mask
            bits[position >> 3] |= 1 << (position & 7)
            h1 += h2

    def _might_contain_stride(self, stride: int) -> bool:
        """Probe the stride key of one aligned ``2**STRIDE_SHIFT`` group."""
        h1, h2 = _hash_pair(stride ^ _STRIDE_SEED)
        bits = self._bits
        mask = self.num_bits - 1
        for _ in range(self.num_hashes):
            position = h1 & mask
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
            h1 += h2
        return True


class BloomBulkAdder:
    """:meth:`BloomFilter.add_many` with dedup state that survives chunks.

    Created through :meth:`BloomFilter.bulk_adder`.  Feeding N chunks
    produces exactly the bits and key counts of feeding their concatenation
    in one call -- the chunk-invariance the read-store writer relies on to
    keep its streaming (leaf-at-a-time) and bulk (whole sorted array)
    interfaces byte-identical.  Not thread safe; each flush job owns its
    adder exclusively, like the filter under construction itself.
    """

    __slots__ = ("_filter", "_last", "_last_stride")

    def __init__(self, bloom_filter: BloomFilter) -> None:
        self._filter = bloom_filter
        self._last: object = None
        self._last_stride: object = None

    def add_chunk(self, blocks: Iterable[int]) -> None:
        """Insert one block-sorted chunk, skipping carried-over duplicates."""
        target = self._filter
        count = 0
        last = self._last
        if target.hash_version == FORMAT_V1:
            insert = target._insert_key
            for block in blocks:
                count += 1
                if block == last:
                    continue
                last = block
                insert(block)
            self._last = last
            target.num_items += count
            return
        bits = target._bits
        mask = target.num_bits - 1
        num_hashes = target.num_hashes
        last_stride = self._last_stride
        keys = 0
        for block in blocks:
            count += 1
            if block == last:
                continue
            last = block
            keys += 1
            h1, h2 = _hash_pair(block)
            for _ in range(num_hashes):
                position = h1 & mask
                bits[position >> 3] |= 1 << (position & 7)
                h1 += h2
            stride = block >> STRIDE_SHIFT
            if stride != last_stride:
                last_stride = stride
                keys += 1
                h1, h2 = _hash_pair(stride ^ _STRIDE_SEED)
                for _ in range(num_hashes):
                    position = h1 & mask
                    bits[position >> 3] |= 1 << (position & 7)
                    h1 += h2
        self._last = last
        self._last_stride = last_stride
        target.num_items += count
        target._keys_inserted += keys
