"""Bloom filters over physical block numbers.

Queries specify a block or a range of blocks, and those blocks may be present
in only some of the Level-0 read-store runs that accumulate between
compactions.  To avoid opening every run, the query engine keeps one Bloom
filter per run, built over the physical block numbers the run contains
(§5.1).  The paper's configuration uses four hash functions and a default
filter size of 32 KB for runs of up to 32 000 operations (expected false
positive rate about 2.4 %), expandable to 1 MB for the Combined read store.

Filters built for small runs are shrunk by repeated halving -- a Bloom filter
whose size is a power of two can be halved by OR-ing its two halves together
without rehashing the underlying keys.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Optional

__all__ = ["BloomFilter", "DEFAULT_FILTER_BITS", "COMBINED_FILTER_BITS"]

#: Default filter size for a From/To run covering one CP (32 KB of bits).
DEFAULT_FILTER_BITS = 32 * 1024 * 8
#: Maximum filter size used for the Combined read store (1 MB of bits).
COMBINED_FILTER_BITS = 1024 * 1024 * 8

_HEADER = struct.Struct("<QQQ")  # num_bits, num_hashes, num_items


class BloomFilter:
    """A standard Bloom filter with ``k`` independent hash functions.

    The filter hashes 64-bit block numbers.  Membership tests never produce
    false negatives; the false-positive rate depends on the bit size and the
    number of inserted items.
    """

    def __init__(self, num_bits: int = DEFAULT_FILTER_BITS, num_hashes: int = 4) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        # Round the size up to a power of two so the filter can be halved.
        self.num_bits = 1 << (num_bits - 1).bit_length()
        self.num_hashes = num_hashes
        self._bits = bytearray(self.num_bits // 8)
        self.num_items = 0

    # ------------------------------------------------------------- hashing

    def _positions(self, block: int) -> Iterable[int]:
        """Bit positions for ``block`` (double hashing from one MD5 digest)."""
        digest = hashlib.md5(block.to_bytes(8, "little", signed=False)).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1
        mask = self.num_bits - 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) & mask

    # ------------------------------------------------------------ interface

    def add(self, block: int) -> None:
        """Insert a block number."""
        for position in self._positions(block):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.num_items += 1

    def add_all(self, blocks: Iterable[int]) -> None:
        for block in blocks:
            self.add(block)

    def might_contain(self, block: int) -> bool:
        """True if ``block`` may have been inserted (no false negatives)."""
        for position in self._positions(block):
            if not self._bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def might_contain_range(self, first_block: int, num_blocks: int) -> bool:
        """True if any block in ``[first_block, first_block + num_blocks)`` may be present.

        For wide ranges the per-block test cost would exceed the cost of just
        reading the run, so ranges wider than 256 blocks short-circuit to
        ``True``.
        """
        if num_blocks <= 0:
            return False
        if num_blocks > 256:
            return True
        return any(self.might_contain(first_block + i) for i in range(num_blocks))

    # ------------------------------------------------------------- resizing

    def shrink_to(self, target_bits: int) -> None:
        """Halve the filter repeatedly until it is no larger than ``target_bits``.

        Halving ORs the upper half of the bit array onto the lower half; all
        previously inserted keys remain members because the position masks
        are consistent power-of-two moduli.
        """
        if target_bits <= 0:
            raise ValueError("target_bits must be positive")
        while self.num_bits > target_bits and self.num_bits > 8:
            half_bytes = len(self._bits) // 2
            lower = self._bits[:half_bytes]
            upper = self._bits[half_bytes:]
            self._bits = bytearray(a | b for a, b in zip(lower, upper))
            self.num_bits //= 2

    def shrink_to_fit(self, bits_per_item: int = 10, min_bits: int = 1024) -> None:
        """Shrink the filter to roughly ``bits_per_item`` bits per inserted item.

        Runs flushed during quiet periods contain far fewer than 32 000
        records; shrinking their filters saves memory without a meaningful
        increase in false positives.
        """
        target = max(min_bits, self.num_items * bits_per_item)
        self.shrink_to(1 << (max(target, 8) - 1).bit_length())

    # -------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize the filter (stored alongside its read-store run)."""
        return _HEADER.pack(self.num_bits, self.num_hashes, self.num_items) + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        num_bits, num_hashes, num_items = _HEADER.unpack_from(data, 0)
        instance = cls.__new__(cls)
        instance.num_bits = num_bits
        instance.num_hashes = num_hashes
        instance.num_items = num_items
        instance._bits = bytearray(data[_HEADER.size:_HEADER.size + num_bits // 8])
        return instance

    # ----------------------------------------------------------- statistics

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set (a rough proxy for false-positive pressure)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits if self.num_bits else 0.0

    def expected_false_positive_rate(self) -> float:
        """Theoretical false-positive probability for the current load."""
        if self.num_items == 0:
            return 0.0
        fraction_set = 1.0 - (1.0 - 1.0 / self.num_bits) ** (self.num_hashes * self.num_items)
        return fraction_set ** self.num_hashes
