"""Statistics collected by the Backlog manager.

The paper's evaluation reports three families of numbers, all of which are
derived from these counters:

* *maintenance overhead during normal operation* -- I/O page writes and CPU
  microseconds per block operation (Figures 5 and 7),
* *space overhead* -- size of the back-reference database as a percentage of
  the physical data size (Figures 6 and 8), and
* *query performance* -- queries per second and I/O reads per query
  (Figures 9 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["BacklogStats", "CheckpointStats", "QueryStats", "MaintenanceStats"]


@dataclass
class CheckpointStats:
    """Per-consistency-point accounting, appended at every flush."""

    cp: int
    block_ops: int
    persistent_ops: int
    pages_written: int
    flush_seconds: float
    ws_records_flushed: int
    pruned_pairs: int
    #: Cumulative time spent in reference updates up to and including this CP
    #: (differences between consecutive checkpoints give the per-CP figure).
    cumulative_update_seconds: float = 0.0

    @property
    def writes_per_block_op(self) -> float:
        """I/O page writes per block operation in this CP (Figure 5, left)."""
        if self.block_ops == 0:
            return 0.0
        return self.pages_written / self.block_ops

    @property
    def writes_per_persistent_op(self) -> float:
        """I/O writes per operation whose effects survived the CP."""
        if self.persistent_ops == 0:
            return 0.0
        return self.pages_written / self.persistent_ops

    def microseconds_per_block_op(self, previous_cumulative_update_seconds: float) -> float:
        """CPU µs per block op in this CP, given the previous CP's cumulative time."""
        if self.block_ops == 0:
            return 0.0
        update = self.cumulative_update_seconds - previous_cumulative_update_seconds
        return (update + self.flush_seconds) * 1e6 / self.block_ops


@dataclass
class QueryStats:
    """Aggregated over one query batch (reset explicitly by the caller)."""

    queries: int = 0
    back_references_returned: int = 0
    pages_read: int = 0
    runs_probed: int = 0
    runs_skipped_by_bloom: int = 0
    #: Queries answered through the materialising narrow-query fast path
    #: (candidate run count <= BacklogConfig.narrow_dispatch_max_runs).
    narrow_fast_path_queries: int = 0
    #: Queries answered through the cursor surface (``Backlog.select`` /
    #: ``QueryEngine.open_cursor``); each cursor counts as one query.
    cursors_opened: int = 0
    seconds: float = 0.0

    @property
    def reads_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.pages_read / self.queries

    @property
    def queries_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.queries / self.seconds

    def reset(self) -> None:
        self.queries = 0
        self.back_references_returned = 0
        self.pages_read = 0
        self.runs_probed = 0
        self.runs_skipped_by_bloom = 0
        self.narrow_fast_path_queries = 0
        self.cursors_opened = 0
        self.seconds = 0.0


@dataclass
class MaintenanceStats:
    """One database-maintenance (compaction) pass."""

    sequence: int
    partitions_processed: int
    records_in: int
    records_out: int
    records_purged: int
    bytes_before: int
    bytes_after: int
    seconds: float

    @property
    def reduction_ratio(self) -> float:
        """Fractional size reduction achieved by this maintenance pass."""
        if self.bytes_before == 0:
            return 0.0
        return 1.0 - (self.bytes_after / self.bytes_before)


@dataclass
class BacklogStats:
    """Top-level counters for one Backlog instance."""

    references_added: int = 0
    references_removed: int = 0
    pruned_pairs: int = 0
    consistency_points: int = 0
    update_seconds: float = 0.0
    flush_seconds: float = 0.0
    checkpoints: List[CheckpointStats] = field(default_factory=list)
    maintenance_runs: List[MaintenanceStats] = field(default_factory=list)
    query: QueryStats = field(default_factory=QueryStats)

    @property
    def block_ops(self) -> int:
        """Total reference additions + removals observed."""
        return self.references_added + self.references_removed

    @property
    def total_pages_written(self) -> int:
        return sum(cp.pages_written for cp in self.checkpoints)

    @property
    def writes_per_block_op(self) -> float:
        """Average I/O writes per block operation over the whole run."""
        if self.block_ops == 0:
            return 0.0
        return self.total_pages_written / self.block_ops

    @property
    def microseconds_per_block_op(self) -> float:
        """Average CPU time (µs) per block operation, including flush time."""
        if self.block_ops == 0:
            return 0.0
        return (self.update_seconds + self.flush_seconds) * 1e6 / self.block_ops

    def overhead_series(self) -> Dict[str, List[float]]:
        """Per-CP series used to plot Figures 5 and 7."""
        return {
            "cp": [cp.cp for cp in self.checkpoints],
            "writes_per_block_op": [cp.writes_per_block_op for cp in self.checkpoints],
            "writes_per_persistent_op": [cp.writes_per_persistent_op for cp in self.checkpoints],
        }
