"""Statistics collected by the Backlog manager.

The paper's evaluation reports three families of numbers, all of which are
derived from these counters:

* *maintenance overhead during normal operation* -- I/O page writes and CPU
  microseconds per block operation (Figures 5 and 7),
* *space overhead* -- size of the back-reference database as a percentage of
  the physical data size (Figures 6 and 8), and
* *query performance* -- queries per second and I/O reads per query
  (Figures 9 and 10).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "BacklogStats",
    "CheckpointStats",
    "ExecutorStats",
    "QueryStats",
    "MaintenanceStats",
    "WorkerStats",
]


@dataclass
class CheckpointStats:
    """Per-consistency-point accounting, appended at every flush."""

    cp: int
    block_ops: int
    persistent_ops: int
    pages_written: int
    flush_seconds: float
    ws_records_flushed: int
    pruned_pairs: int
    #: Cumulative time spent in reference updates up to and including this CP
    #: (differences between consecutive checkpoints give the per-CP figure).
    cumulative_update_seconds: float = 0.0

    @property
    def writes_per_block_op(self) -> float:
        """I/O page writes per block operation in this CP (Figure 5, left)."""
        if self.block_ops == 0:
            return 0.0
        return self.pages_written / self.block_ops

    @property
    def writes_per_persistent_op(self) -> float:
        """I/O writes per operation whose effects survived the CP."""
        if self.persistent_ops == 0:
            return 0.0
        return self.pages_written / self.persistent_ops

    def microseconds_per_block_op(self, previous_cumulative_update_seconds: float) -> float:
        """CPU µs per block op in this CP, given the previous CP's cumulative time."""
        if self.block_ops == 0:
            return 0.0
        update = self.cumulative_update_seconds - previous_cumulative_update_seconds
        return (update + self.flush_seconds) * 1e6 / self.block_ops


@dataclass
class WorkerStats:
    """Work done by one executor worker thread (or the calling thread)."""

    jobs: int = 0
    seconds: float = 0.0


@dataclass
class ExecutorStats:
    """Per-worker accounting for one :class:`~repro.core.executor.PartitionExecutor`.

    One instance each for the flush pool and the maintenance pool
    (:attr:`BacklogStats.flush_pool` / :attr:`BacklogStats.maintenance_pool`).
    ``workers`` maps a worker thread's name -- or the calling thread's, for
    inline serial execution -- to its cumulative job count and busy seconds,
    so a benchmark can read off both the fan-out achieved and the imbalance
    across workers.  ``record`` is called from worker threads and takes the
    stats lock; everything else is read single-threaded.
    """

    dispatches: int = 0
    jobs: int = 0
    #: Transient faults absorbed by the executor's retry policy.
    retries: int = 0
    #: Parallel batches that failed gracefully and were re-run serially.
    serial_fallbacks: int = 0
    workers: Dict[str, WorkerStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, worker: str, seconds: float) -> None:
        """Account one finished job to ``worker`` (thread-safe)."""
        with self._lock:
            self.jobs += 1
            entry = self.workers.get(worker)
            if entry is None:
                entry = self.workers[worker] = WorkerStats()
            entry.jobs += 1
            entry.seconds += seconds

    def count_retry(self) -> None:
        """Account one absorbed transient fault (thread-safe)."""
        with self._lock:
            self.retries += 1

    def count_dispatch(self) -> None:
        """Account one fanned-out batch (thread-safe).

        The flush/maintenance paths bump ``dispatches`` single-threaded, but
        the query pool is driven from arbitrarily many concurrent sessions,
        so the read side counts through here.
        """
        with self._lock:
            self.dispatches += 1

    @property
    def busy_seconds(self) -> float:
        """Total worker-busy time across all workers (sum, not wall time)."""
        return sum(worker.seconds for worker in self.workers.values())

    @property
    def max_worker_seconds(self) -> float:
        """Busy time of the most loaded worker (the parallel critical path)."""
        if not self.workers:
            return 0.0
        return max(worker.seconds for worker in self.workers.values())

    def reset(self) -> None:
        with self._lock:
            self.dispatches = 0
            self.jobs = 0
            self.retries = 0
            self.serial_fallbacks = 0
            self.workers.clear()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot, taken under the stats lock.

        This is how pool timings reach the wire (``GET /stats``, the CLI's
        ``--stats`` footer, the cluster's per-shard STATS opcode): collected
        per worker thread in-process, folded into plain dicts here.
        """
        with self._lock:
            return {
                "dispatches": self.dispatches,
                "jobs": self.jobs,
                "retries": self.retries,
                "serial_fallbacks": self.serial_fallbacks,
                "busy_seconds": round(self.busy_seconds, 6),
                "max_worker_seconds": round(self.max_worker_seconds, 6),
                "workers": {
                    name: {"jobs": worker.jobs,
                           "seconds": round(worker.seconds, 6)}
                    for name, worker in self.workers.items()
                },
            }


@dataclass
class QueryStats:
    """Aggregated over one query batch (reset explicitly by the caller)."""

    queries: int = 0
    back_references_returned: int = 0
    pages_read: int = 0
    runs_probed: int = 0
    runs_skipped_by_bloom: int = 0
    #: Queries answered through the materialising narrow-query fast path
    #: (candidate run count <= BacklogConfig.narrow_dispatch_max_runs).
    narrow_fast_path_queries: int = 0
    #: Queries answered through the cursor surface (``Backlog.select`` /
    #: ``QueryEngine.open_cursor``); each cursor counts as one query.
    cursors_opened: int = 0
    #: Resumed pages answered from a parked pipeline (the session-scoped
    #: cursor resume cache) instead of re-running the Bloom prefilter and
    #: re-seeking every run in the active partition.
    resume_cache_hits: int = 0
    #: Checksum mismatches the query path detected while decoding pages.
    corrupt_pages_detected: int = 0
    #: Damaged runs dropped from the catalogue so the query could be
    #: re-answered from the surviving runs (degraded but correct answers
    #: with respect to the remaining data).
    runs_quarantined: int = 0
    seconds: float = 0.0

    @property
    def reads_per_query(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.pages_read / self.queries

    @property
    def queries_per_second(self) -> float:
        if self.seconds <= 0.0:
            return 0.0
        return self.queries / self.seconds

    def reset(self) -> None:
        self.queries = 0
        self.back_references_returned = 0
        self.pages_read = 0
        self.runs_probed = 0
        self.runs_skipped_by_bloom = 0
        self.narrow_fast_path_queries = 0
        self.cursors_opened = 0
        self.resume_cache_hits = 0
        self.corrupt_pages_detected = 0
        self.runs_quarantined = 0
        self.seconds = 0.0

    _COUNTER_FIELDS = (
        "queries", "back_references_returned", "pages_read", "runs_probed",
        "runs_skipped_by_bloom", "narrow_fast_path_queries", "cursors_opened",
        "resume_cache_hits", "corrupt_pages_detected", "runs_quarantined",
    )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot of the counters (plus ``seconds``)."""
        snapshot: Dict[str, object] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS}
        snapshot["seconds"] = round(self.seconds, 6)
        return snapshot

    def snapshot_counters(self) -> Dict[str, int]:
        """The integer counters alone (the cluster's per-page delta basis)."""
        return {name: getattr(self, name) for name in self._COUNTER_FIELDS}

    def add_counters(self, delta: Dict[str, int]) -> None:
        """Fold a per-shard counter delta into this instance.

        The cluster coordinator folds each worker reply's page tally into
        its own :class:`QueryStats` through here, so the exact-page-
        accounting contract (`pages_read` et al.) holds across the process
        boundary.  Unknown keys are ignored so a newer worker can ship a
        counter an older coordinator does not track.
        """
        for name in self._COUNTER_FIELDS:
            value = delta.get(name)
            if value:
                setattr(self, name, getattr(self, name) + value)


@dataclass
class MaintenanceStats:
    """One database-maintenance (compaction) pass."""

    sequence: int
    partitions_processed: int
    records_in: int
    records_out: int
    records_purged: int
    bytes_before: int
    bytes_after: int
    seconds: float

    @property
    def reduction_ratio(self) -> float:
        """Fractional size reduction achieved by this maintenance pass."""
        if self.bytes_before == 0:
            return 0.0
        return 1.0 - (self.bytes_after / self.bytes_before)


@dataclass
class BacklogStats:
    """Top-level counters for one Backlog instance."""

    references_added: int = 0
    references_removed: int = 0
    pruned_pairs: int = 0
    consistency_points: int = 0
    update_seconds: float = 0.0
    flush_seconds: float = 0.0
    checkpoints: List[CheckpointStats] = field(default_factory=list)
    maintenance_runs: List[MaintenanceStats] = field(default_factory=list)
    query: QueryStats = field(default_factory=QueryStats)
    #: Per-worker timing of the flush fan-out and the parallel compactions
    #: (serial execution accounts to the calling thread).
    flush_pool: ExecutorStats = field(default_factory=ExecutorStats)
    maintenance_pool: ExecutorStats = field(default_factory=ExecutorStats)
    #: Per-worker timing of the read-side partition fan-out (empty unless
    #: ``BacklogConfig.query_workers > 1`` and a multi-partition query ran).
    query_pool: ExecutorStats = field(default_factory=ExecutorStats)

    @property
    def block_ops(self) -> int:
        """Total reference additions + removals observed."""
        return self.references_added + self.references_removed

    @property
    def total_pages_written(self) -> int:
        return sum(cp.pages_written for cp in self.checkpoints)

    @property
    def writes_per_block_op(self) -> float:
        """Average I/O writes per block operation over the whole run."""
        if self.block_ops == 0:
            return 0.0
        return self.total_pages_written / self.block_ops

    @property
    def microseconds_per_block_op(self) -> float:
        """Average CPU time (µs) per block operation, including flush time."""
        if self.block_ops == 0:
            return 0.0
        return (self.update_seconds + self.flush_seconds) * 1e6 / self.block_ops

    def overhead_series(self) -> Dict[str, List[float]]:
        """Per-CP series used to plot Figures 5 and 7."""
        return {
            "cp": [cp.cp for cp in self.checkpoints],
            "writes_per_block_op": [cp.writes_per_block_op for cp in self.checkpoints],
            "writes_per_persistent_op": [cp.writes_per_persistent_op for cp in self.checkpoints],
        }
