"""Partition-sharded execution of flush and compaction work.

The back-reference database is horizontally partitioned (§5.3) precisely so
that maintenance work is independent per partition: the Level-0 runs written
at a consistency point and the per-partition compactions of database
maintenance never share a run file, a Bloom filter or an output page.  This
module supplies the worker pool that exploits that independence --
:class:`PartitionExecutor` fans a list of per-partition jobs out across a
configurable number of threads (``BacklogConfig.flush_workers`` /
``maintenance_workers``) and hands the results back in submission order.

Determinism contract
--------------------

Parallel and serial execution must produce **byte-identical** databases (the
differential suite in ``tests/test_parallel_equivalence.py`` enforces it).
The executor's part of that contract is simple: it never reorders results --
``map`` returns job results in submission order regardless of completion
order -- and with ``workers=1`` (the default) it degenerates to a plain loop
in the calling thread, making the serial path literally the same code that
ran before this subsystem existed.  The callers supply the other half:

* run **names are allocated before dispatch** (``RunManager.next_sequence``
  is consumed in the exact order the serial loop would have consumed it), so
  a job's output file is fully determined before any worker starts;
* catalogue **registration happens after the jobs finish**, in allocation
  order, so the run lists per ``(partition, table)`` are identical however
  the workers interleaved.

Everything a worker touches concurrently is either job-local (record slices,
``ReadStoreWriter`` state, Bloom filters under construction) or explicitly
locked (``IOStats`` counters, the :class:`~repro.fsim.cache.PageCache`,
``RunManager`` catalogue mutation); ``docs/ARCHITECTURE.md`` ("Concurrency
model") lists the locked structures and why each lock exists.

A note on the GIL: pure-Python CPU work does not speed up under threads, but
the flush and compaction hot loops spend their time in page-granular backend
I/O -- which is exactly what a real device overlaps across independent
partitions.  The ``flush_parallel`` benchmark section therefore measures the
pool over a :class:`~repro.fsim.blockdev.ThrottledBackend`, whose simulated
per-page device time (like real file I/O) is released-GIL time.

The **read side** reuses the same pool type (``BacklogConfig.query_workers``)
with the same contract, via :meth:`PartitionExecutor.submit` rather than
``map``: the query engine drains later partitions' gathers on workers while
the caller consumes earlier partitions, but *merges strictly at the
partition boundary in submission order*, so cursor emission order, resume
tokens and answers are byte-identical to serial.  Each prefetch job tallies
its own page reads thread-locally (``IOStats.push_read_tally``) and the
consumer folds the count into its ``QueryStats`` when it takes the job's
records, keeping per-query accounting exact instead of racing on shared
counters; ``docs/ARCHITECTURE.md`` ("Concurrency model") spells out the
full ordering/accounting/snapshot-custody contract.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.stats import ExecutorStats
from repro.fsim.faults import is_transient_fault

__all__ = ["PartitionExecutor", "RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Bounded retry-with-backoff for transient storage faults.

    ``attempts`` is the total number of tries *including* the first --
    ``attempts=1`` disables retrying.  Between tries the policy sleeps
    ``backoff_s`` seconds, multiplied by ``multiplier`` after each failure;
    the ``sleep`` callable is injectable so tests substitute a recording
    stub and never really sleep.  Only exceptions the ``retryable``
    classifier accepts are retried (by default transient I/O faults --
    ``ENOSPC``, torn writes and crashes always propagate immediately).
    ``on_retry`` is invoked once per absorbed failure, before the backoff;
    the executors use it to count retries into their stats.
    """

    attempts: int = 3
    backoff_s: float = 0.002
    multiplier: float = 2.0
    sleep: Callable[[float], None] = time.sleep
    retryable: Callable[[BaseException], bool] = is_transient_fault
    on_retry: Optional[Callable[[BaseException], None]] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def run(self, job: Callable[[], T]) -> T:
        """Run ``job``, absorbing up to ``attempts - 1`` retryable failures."""
        delay = self.backoff_s
        attempt = 1
        while True:
            try:
                return job()
            except Exception as error:  # noqa: BLE001 - classified below
                if attempt >= self.attempts or not self.retryable(error):
                    raise
                if self.on_retry is not None:
                    self.on_retry(error)
                if delay > 0:
                    self.sleep(delay)
                    delay *= self.multiplier
                attempt += 1


class PartitionExecutor:
    """A reusable worker pool for independent per-partition jobs.

    Parameters
    ----------
    workers:
        Maximum number of worker threads.  ``1`` (the default) runs every
        job inline in the calling thread -- no pool is ever created, no lock
        is taken, and the execution order is exactly the pre-executor serial
        loop.
    name:
        Thread-name prefix, visible in tracebacks and in the per-worker
        timing stats (``ExecutorStats.workers``).
    retry:
        Optional :class:`RetryPolicy` applied around every job, serial or
        pooled, so a transient backend fault inside one partition's work is
        absorbed without failing the whole batch.

    The pool is created lazily on the first ``map`` call that has more than
    one job to run, and reused for the executor's lifetime; :meth:`close`
    shuts it down (idle pools are also reclaimed when the executor is
    garbage collected, so calling it is optional).
    """

    def __init__(self, workers: int = 1, name: str = "backlog",
                 retry: Optional[RetryPolicy] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.name = name
        self.retry = retry
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ API

    def map(self, jobs: Sequence[Callable[[], T]],
            stats: Optional[ExecutorStats] = None) -> List[T]:
        """Run every job and return their results in submission order.

        With ``workers == 1`` or at most one job, the jobs run inline in the
        calling thread.  Otherwise they are dispatched to the thread pool;
        the call still blocks until **all** jobs have settled, and the first
        job (in submission order) that raised re-raises here -- after every
        other job has finished, so a failure never leaves a worker still
        writing behind the caller's back (the crash-injection tests rely on
        this to reason about the on-disk state after a mid-compaction
        failure).

        ``stats``, when given, accumulates per-worker wall time and job
        counts (:class:`~repro.core.stats.ExecutorStats`).
        """
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            return self.run_serial(jobs, stats)
        pool = self._ensure_pool()
        futures = [pool.submit(self._run_job, job, stats) for job in jobs]
        results: List[T] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)  # type: ignore[arg-type]
        if first_error is not None:
            raise first_error
        return results

    def submit(self, job: Callable[[], T],
               stats: Optional[ExecutorStats] = None) -> "Future[T]":
        """Dispatch one job to the pool and return its future immediately.

        This is the read side's entry point: the query fan-out keeps a
        bounded window of per-partition prefetch jobs in flight and consumes
        their futures strictly in submission order, so it needs fire-and-
        collect rather than ``map``'s all-or-nothing barrier.  Requires
        ``workers > 1`` -- a serial executor has no pool, and callers decide
        *before* submitting whether to fan out at all (the serial query path
        must stay literally the pre-fan-out code).
        """
        if self.workers == 1:
            raise ValueError("submit() requires workers > 1; "
                             "use run_serial for the serial path")
        return self._ensure_pool().submit(self._run_job, job, stats)

    def run_serial(self, jobs: Sequence[Callable[[], T]],
                   stats: Optional[ExecutorStats] = None) -> List[T]:
        """Run every job inline in the calling thread, in order.

        This is the degenerate path ``map`` takes with one worker, exposed
        so callers can force it -- the flush path falls back to it for a
        whole consistency point when a parallel batch fails gracefully.
        The retry policy still applies per job.
        """
        return [self._run_job(job, stats) for job in jobs]

    def close(self) -> None:
        """Shut the pool down (no-op if it was never created)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------ internals

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"{self.name}-worker",
                )
            return self._pool

    def _run_job(self, job: Callable[[], T], stats: Optional[ExecutorStats]) -> T:
        if self.retry is not None:
            run: Callable[[], T] = lambda: self.retry.run(job)
        else:
            run = job
        if stats is None:
            return run()
        start = time.perf_counter()
        try:
            return run()
        finally:
            stats.record(threading.current_thread().name,
                         time.perf_counter() - start)
